"""Performance counters for the core model.

Mirrors the event set a RI5CY-style perf-counter unit exposes: total
cycles, retired instructions, per-timing-class instruction counts, and the
stall breakdown the timing model produces.  All figures in the paper's
evaluation (Figs 6 and 8) are cycle counts read from these counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PerfCounters:
    """Cycle / instruction / stall accounting for one simulation run."""

    cycles: int = 0
    instructions: int = 0
    by_class: Counter = field(default_factory=Counter)
    by_mnemonic: Counter = field(default_factory=Counter)
    stall_load_use: int = 0
    stall_branch: int = 0
    stall_jump: int = 0
    stall_misaligned: int = 0
    #: Cycles lost arbitrating for a busy TCDM bank (cluster cores only;
    #: a standalone core never conflicts).
    stall_tcdm_contention: int = 0
    #: Cycles spent parked at an event-unit barrier waiting for the other
    #: cores.  Included in ``cycles`` (wall-clock per core) but burning no
    #: datapath activity — the energy model discounts them.
    idle_cycles: int = 0
    hwloop_backedges: int = 0

    #: Integer fields summed by :meth:`merge` / emitted by :meth:`snapshot`.
    _SCALARS = (
        "cycles", "instructions", "stall_load_use", "stall_branch",
        "stall_jump", "stall_misaligned", "stall_tcdm_contention",
        "idle_cycles", "hwloop_backedges",
    )

    def reset(self) -> None:
        for name in self._SCALARS:
            setattr(self, name, 0)
        self.by_class.clear()
        self.by_mnemonic.clear()

    @property
    def total_stalls(self) -> int:
        return (
            self.stall_load_use
            + self.stall_branch
            + self.stall_jump
            + self.stall_misaligned
            + self.stall_tcdm_contention
        )

    @property
    def active_cycles(self) -> int:
        """Cycles the core actually clocked the datapath (not parked)."""
        return self.cycles - self.idle_cycles

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view (stable keys) for reports and tests."""
        data = {name: getattr(self, name) for name in self._SCALARS}
        for cls, count in sorted(self.by_class.items()):
            data[f"class_{cls}"] = count
        return data

    def to_dict(self) -> Dict:
        """Full machine-readable view (JSON-friendly nested dicts)."""
        data: Dict = {name: getattr(self, name) for name in self._SCALARS}
        data["by_class"] = dict(sorted(self.by_class.items()))
        data["by_mnemonic"] = dict(sorted(self.by_mnemonic.items()))
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfCounters":
        """Rebuild counters from :meth:`to_dict` output.

        Used by the batch-simulation service to reconstruct counters from
        cached / worker-transported JSON payloads; ``from_dict(to_dict())``
        is exact (all fields are integers).
        """
        perf = cls(**{name: int(data.get(name, 0)) for name in cls._SCALARS})
        perf.by_class = Counter({
            str(k): int(v) for k, v in data.get("by_class", {}).items()})
        perf.by_mnemonic = Counter({
            str(k): int(v) for k, v in data.get("by_mnemonic", {}).items()})
        return perf

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate *other* into self (in place) and return self.

        Used to aggregate per-core counters of a cluster run: every field
        sums, so the merged ``cycles`` is total core-cycles (activity, for
        the energy model), **not** wall-clock — wall-clock is the max over
        cores, which barriers make equal anyway.
        """
        for name in self._SCALARS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.by_class.update(other.by_class)
        self.by_mnemonic.update(other.by_mnemonic)
        return self

    def delta_since(self, other: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since *other* was snapshotted."""
        delta = PerfCounters(**{
            name: getattr(self, name) - getattr(other, name)
            for name in self._SCALARS
        })
        delta.by_class = self.by_class - other.by_class
        delta.by_mnemonic = self.by_mnemonic - other.by_mnemonic
        return delta

    def copy(self) -> "PerfCounters":
        clone = PerfCounters(**{
            name: getattr(self, name) for name in self._SCALARS
        })
        clone.by_class = Counter(self.by_class)
        clone.by_mnemonic = Counter(self.by_mnemonic)
        return clone

    def __repr__(self) -> str:
        return (
            f"PerfCounters(cycles={self.cycles}, instructions={self.instructions}, "
            f"ipc={self.ipc:.3f}, stalls={self.total_stalls})"
        )
