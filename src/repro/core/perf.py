"""Performance counters for the core model.

Mirrors the event set a RI5CY-style perf-counter unit exposes: total
cycles, retired instructions, per-timing-class instruction counts, and the
stall breakdown the timing model produces.  All figures in the paper's
evaluation (Figs 6 and 8) are cycle counts read from these counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PerfCounters:
    """Cycle / instruction / stall accounting for one simulation run."""

    cycles: int = 0
    instructions: int = 0
    by_class: Counter = field(default_factory=Counter)
    by_mnemonic: Counter = field(default_factory=Counter)
    stall_load_use: int = 0
    stall_branch: int = 0
    stall_jump: int = 0
    stall_misaligned: int = 0
    hwloop_backedges: int = 0

    def reset(self) -> None:
        self.cycles = 0
        self.instructions = 0
        self.by_class.clear()
        self.by_mnemonic.clear()
        self.stall_load_use = 0
        self.stall_branch = 0
        self.stall_jump = 0
        self.stall_misaligned = 0
        self.hwloop_backedges = 0

    @property
    def total_stalls(self) -> int:
        return (
            self.stall_load_use
            + self.stall_branch
            + self.stall_jump
            + self.stall_misaligned
        )

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view (stable keys) for reports and tests."""
        data = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_load_use": self.stall_load_use,
            "stall_branch": self.stall_branch,
            "stall_jump": self.stall_jump,
            "stall_misaligned": self.stall_misaligned,
            "hwloop_backedges": self.hwloop_backedges,
        }
        for cls, count in sorted(self.by_class.items()):
            data[f"class_{cls}"] = count
        return data

    def delta_since(self, other: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since *other* was snapshotted."""
        delta = PerfCounters(
            cycles=self.cycles - other.cycles,
            instructions=self.instructions - other.instructions,
            stall_load_use=self.stall_load_use - other.stall_load_use,
            stall_branch=self.stall_branch - other.stall_branch,
            stall_jump=self.stall_jump - other.stall_jump,
            stall_misaligned=self.stall_misaligned - other.stall_misaligned,
            hwloop_backedges=self.hwloop_backedges - other.hwloop_backedges,
        )
        delta.by_class = self.by_class - other.by_class
        delta.by_mnemonic = self.by_mnemonic - other.by_mnemonic
        return delta

    def copy(self) -> "PerfCounters":
        clone = PerfCounters(
            cycles=self.cycles,
            instructions=self.instructions,
            stall_load_use=self.stall_load_use,
            stall_branch=self.stall_branch,
            stall_jump=self.stall_jump,
            stall_misaligned=self.stall_misaligned,
            hwloop_backedges=self.hwloop_backedges,
        )
        clone.by_class = Counter(self.by_class)
        clone.by_mnemonic = Counter(self.by_mnemonic)
        return clone

    def __repr__(self) -> str:
        return (
            f"PerfCounters(cycles={self.cycles}, instructions={self.instructions}, "
            f"ipc={self.ipc:.3f}, stalls={self.total_stalls})"
        )
