"""Cluster-level silicon model for design-space exploration.

The paper measures one design (Table III: core area/power in 22 nm at
0.75 V); ``repro explore`` asks *counterfactual* questions — what does
the 2-core cluster with half the TCDM cost? — so this module extends the
calibrated per-core models to whole-cluster area and the memory's
leakage contribution:

* **cores** — N x the Table III core area (extended core when the spec
  carries the XpulpNN extensions, baseline RI5CY otherwise);
* **SRAM** — TCDM and L2 priced per byte.  The densities are nominal
  22 nm macro figures (bit cell + periphery), not silicon measurements;
  they only need to be *monotone* in bytes for the explorer's dominance
  arguments, and every report labels them modeled;
* **uncore** — DMA + event unit + cluster peripherals, plus a
  log-interconnect slice per TCDM bank (banks = 2 x cores, the paper's
  banking factor).

:func:`power_bounds_mw` gives certain lower/upper bounds on the
cluster's per-cycle power — any instruction mix on this silicon lands
inside them — which the static pruning stage multiplies with cycle
bounds to get sound energy intervals *before* any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..target.names import XPULPNN
from ..target.spec import TargetSpec
from .area import AreaModel
from .power import SOC_BASE_MW, SOC_MEM_MW_PER_ACCESS, model_for

#: Banked TCDM macro area per byte (um^2): nominal 22 nm high-density
#: 6T cell plus array periphery, amortized over small per-bank macros.
TCDM_UM2_PER_BYTE = 2.0
#: L2 macro area per byte (um^2): larger macros amortize periphery.
L2_UM2_PER_BYTE = 1.55
#: SRAM leakage per kilobyte (mW) at the nominal operating point.
SRAM_LEAK_MW_PER_KB = 0.0004
#: DMA engine + event unit + cluster peripherals (um^2).
UNCORE_BASE_UM2 = 24000.0
#: One log-interconnect slice (routing + mux) per TCDM bank (um^2).
BANK_MUX_UM2 = 1200.0
#: The paper's banking factor: banks = factor x cores.
BANKING_FACTOR = 2

#: Worst-case data-memory transactions per core-cycle: the quantization
#: FSM reads 8 thresholds per ``pv.qnt.n`` (see
#: :func:`repro.physical.power.memory_accesses_per_cycle`).
_MAX_ACCESSES_PER_CYCLE = 8.0


@dataclass(frozen=True)
class SiliconSummary:
    """Area/leakage breakdown of one cluster design (the spec's silicon)."""

    spec_name: str
    cores: int
    core_area_um2: float
    cores_mm2: float
    tcdm_mm2: float
    l2_mm2: float
    uncore_mm2: float
    sram_leak_mw: float

    @property
    def total_mm2(self) -> float:
        return self.cores_mm2 + self.tcdm_mm2 + self.l2_mm2 + self.uncore_mm2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "cores": self.cores,
            "core_area_um2": round(self.core_area_um2, 1),
            "cores_mm2": round(self.cores_mm2, 6),
            "tcdm_mm2": round(self.tcdm_mm2, 6),
            "l2_mm2": round(self.l2_mm2, 6),
            "uncore_mm2": round(self.uncore_mm2, 6),
            "sram_leak_mw": round(self.sram_leak_mw, 6),
            "total_mm2": round(self.total_mm2, 6),
        }


def core_area_um2(spec: TargetSpec) -> float:
    """Table III area of one core of *spec*'s silicon."""
    model = AreaModel()
    if spec.riscv and XPULPNN in spec.extensions:
        return model.extended(power_mgmt=True).total
    return model.baseline().total


def sram_leakage_mw(spec: TargetSpec) -> float:
    """Leakage of the spec's TCDM + L2 (strictly monotone in bytes)."""
    kb = (spec.tcdm_bytes + spec.l2_bytes) / 1024.0
    return kb * SRAM_LEAK_MW_PER_KB


def cluster_silicon(spec: TargetSpec) -> SiliconSummary:
    """Full area/leakage breakdown for *spec* (see module docstring)."""
    banks = spec.cores * BANKING_FACTOR
    return SiliconSummary(
        spec_name=spec.name,
        cores=spec.cores,
        core_area_um2=core_area_um2(spec),
        cores_mm2=spec.cores * core_area_um2(spec) / 1e6,
        tcdm_mm2=spec.tcdm_bytes * TCDM_UM2_PER_BYTE / 1e6,
        l2_mm2=spec.l2_bytes * L2_UM2_PER_BYTE / 1e6,
        uncore_mm2=(UNCORE_BASE_UM2 + banks * BANK_MUX_UM2) / 1e6,
        sram_leak_mw=sram_leakage_mw(spec),
    )


def cluster_area_mm2(spec: TargetSpec) -> float:
    """Total silicon area of the cluster design (mm^2)."""
    return cluster_silicon(spec).total_mm2


def power_bounds_mw(spec: TargetSpec) -> Tuple[float, float]:
    """Certain (lo, hi) bounds on cluster power (mW) for *spec*.

    *lo*: every core parked (clock-gated to leakage) plus the always-on
    SoC rest and SRAM leakage.  *hi*: every core burning its base clock
    power plus the single most expensive per-cycle coefficient, with the
    memory system saturated at the quantization FSM's worst-case 8
    accesses/cycle/core.  Both hold for any instruction mix the silicon
    can execute, so ``cycles x power`` intervals built from them are
    sound energy bounds.
    """
    params = model_for(spec.power_model).params
    leak = sram_leakage_mw(spec)
    lo = spec.cores * params.leakage_mw + SOC_BASE_MW + leak
    max_coeff = max(params.alu, params.load, params.store, params.ctrl,
                    params.mul8, params.muln, params.mulc, params.qnt)
    hi = (spec.cores * (params.base + max_coeff + params.leakage_mw)
          + SOC_BASE_MW
          + SOC_MEM_MW_PER_ACCESS * _MAX_ACCESSES_PER_CYCLE * spec.cores
          + leak)
    return lo, hi


def energy_per_inference_uj(cycles: float, power_mw: float,
                            freq_hz: float) -> float:
    """Energy (uJ) of *cycles* at *power_mw* on a *freq_hz* clock."""
    return cycles / freq_hz * power_mw * 1000.0
