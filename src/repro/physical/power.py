"""Power model (paper Table III, lower half) and its calibration.

Post-layout power cannot be derived in Python, so this is an
**activity-based linear model**: the core's dynamic power is a base
(fetch/decode/clock) term plus per-timing-class contributions weighted by
each class's share of execution cycles; the SoC adds a constant rest-of-
chip term and a memory-traffic term.  The class coefficients are
calibrated so the model, evaluated on the instruction mixes our kernels
actually produce, reproduces the paper's measured operating points:

* extended core, 8-bit MatMul, PM: 1.19 mW dynamic (+0.031 leak);
* baseline core: 1.13 mW (+0.023 leak) — the smaller dot-product unit;
* SoC totals 6.04 / 5.71 / 5.87 mW for 8/4/2-bit MatMul and ~5.85 mW for
  the general-purpose mix.

The nibble region's coefficient is far below the byte region's (its
multipliers are 5-bit versus 9-bit — switching capacitance scales roughly
quadratically with operand width), while the crumb region's is higher
again (16 multipliers plus a deeper adder tree), which is exactly why the
paper measures 4-bit MatMul *below* and 2-bit *above* the 4-bit point.

Without power management (operand isolation + clock gating), operands
reach every bitwidth region each cycle.  The resulting extra power
depends on which regions are redundantly toggled: tiny when the 8-bit
region is the active one (only the small sub-byte regions toggle, +0.24
mW at the SoC), large when a sub-byte region is active or the unit is
idle (the wide 16/8-bit regions toggle, +2.4..3.1 mW).  Those four
measured deltas enter as the :data:`NOPM_EXTRA_SOC_MW` table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.perf import PerfCounters
from ..errors import ModelError
from .technology import NOMINAL, OperatingPoint
from ..target.names import RI5CY, XPULPNN

#: Cycle weight of each timing class (multicycle classes occupy the
#: pipeline for several cycles at their class's activity level).
_CLASS_CYCLES = {
    "alu": 1, "mul": 1, "div": 35, "load": 1, "store": 1,
    "branch": 1, "jump": 1, "hwloop": 1, "qnt_n": 9, "qnt_c": 5,
    "system": 1, "csr": 1,
}

#: Which power coefficient each timing class draws from.
_CLASS_TO_COEFF = {
    "alu": "alu", "div": "alu", "system": "alu", "csr": "alu",
    "load": "load", "store": "store",
    "branch": "ctrl", "jump": "ctrl", "hwloop": "ctrl",
    "qnt_n": "qnt", "qnt_c": "qnt",
}


@dataclass(frozen=True)
class CorePowerParams:
    """Per-cycle power coefficients in mW at 0.75 V / 250 MHz."""

    name: str
    leakage_mw: float
    base: float = 0.52      # IF/ID + clocking, every cycle
    alu: float = 0.42
    load: float = 0.52
    store: float = 0.48
    ctrl: float = 0.45
    mul8: float = 0.905     # 16/8-bit dot-product regions (extended unit)
    muln: float = 0.093     # 4-bit (nibble) region: 5-bit multipliers
    mulc: float = 0.555     # 2-bit (crumb) region: 16 multipliers + tree
    qnt: float = 0.65       # quantization FSM + threshold comparators


#: Extended core with power management (the shipped design).
EXTENDED_PM = CorePowerParams(name="ext-pm", leakage_mw=0.031)

#: Baseline RI5CY: smaller dot-product unit, no sub-byte regions.
BASELINE = CorePowerParams(
    name=RI5CY, leakage_mw=0.023, mul8=0.768, muln=0.0, mulc=0.0, qnt=0.0
)

#: Extended core without power management: same datapath, higher leak.
EXTENDED_NOPM = CorePowerParams(name="ext-nopm", leakage_mw=0.032)

#: No-PM extra power (mW) per workload class — the redundant-region
#: toggling described in the module docstring — split into the part
#: dissipated inside the core (datapath toggling) and the additional
#: system-level part (memory/interconnect operand buses).  The 8-bit
#: MatMul core split (+0.19 of +0.24 total) is the paper's measurement;
#: the other rows scale by the same core share.
NOPM_EXTRA_CORE_MW: Dict[str, float] = {
    "matmul8": 0.19,
    "matmul4": 1.92,
    "matmul2": 2.47,
    "gp": 1.86,
}
NOPM_EXTRA_SOC_MW: Dict[str, float] = {
    "matmul8": 0.24,
    "matmul4": 2.43,
    "matmul2": 3.12,
    "gp": 2.35,
}

#: Rest-of-SoC power: clock tree, interconnect, always-on domain (mW).
SOC_BASE_MW = 4.62
#: Memory-traffic coefficient: mW per (access/cycle) of TCDM traffic.
SOC_MEM_MW_PER_ACCESS = 0.40


def cycle_fractions(perf: PerfCounters) -> Dict[str, float]:
    """Cycle-weighted share of each timing class, plus stall share."""
    if perf.cycles <= 0:
        raise ModelError("perf counters hold no cycles")
    fractions: Dict[str, float] = {}
    for cls, count in perf.by_class.items():
        fractions[cls] = count * _CLASS_CYCLES[cls] / perf.cycles
    fractions["stall"] = perf.total_stalls / perf.cycles
    return fractions


def memory_accesses_per_cycle(perf: PerfCounters) -> float:
    """Data-memory transactions per cycle (the quantization FSM performs
    2 reads per tree level: 8 per ``pv.qnt.n``, 4 per ``pv.qnt.c``)."""
    accesses = (
        perf.by_class.get("load", 0)
        + perf.by_class.get("store", 0)
        + 8 * perf.by_class.get("qnt_n", 0)
        + 4 * perf.by_class.get("qnt_c", 0)
    )
    return accesses / perf.cycles


@dataclass
class PowerBreakdown:
    """One workload's power at an operating point (mW)."""

    core_dynamic_mw: float
    core_leakage_mw: float
    soc_rest_mw: float
    nopm_core_extra_mw: float = 0.0
    nopm_soc_extra_mw: float = 0.0

    @property
    def core_total_mw(self) -> float:
        return self.core_dynamic_mw + self.core_leakage_mw + self.nopm_core_extra_mw

    @property
    def soc_total_mw(self) -> float:
        return self.core_total_mw + self.soc_rest_mw + self.nopm_soc_extra_mw

    @property
    def soc_total_w(self) -> float:
        return self.soc_total_mw * 1e-3


class PowerModel:
    """Evaluate core/SoC power for a measured instruction mix."""

    def __init__(self, params: CorePowerParams,
                 point: OperatingPoint = NOMINAL) -> None:
        self.params = params
        self.point = point

    def _mul_coeff(self, fractions: Mapping[str, float],
                   sub_byte_bits: int) -> float:
        if sub_byte_bits == 4:
            return self.params.muln
        if sub_byte_bits == 2:
            return self.params.mulc
        return self.params.mul8

    def core_dynamic_mw(self, fractions: Mapping[str, float],
                        sub_byte_bits: int = 8) -> float:
        """Dynamic core power from cycle fractions.

        *sub_byte_bits* states which dot-product region the workload's
        ``mul``-class instructions exercise (8 also covers 16-bit).
        """
        p = self.params
        power = p.base
        for cls, frac in fractions.items():
            if cls == "stall":
                continue
            if cls == "mul":
                power += frac * self._mul_coeff(fractions, sub_byte_bits)
            else:
                power += frac * getattr(p, _CLASS_TO_COEFF[cls])
        return power

    def evaluate(
        self,
        perf: PerfCounters,
        sub_byte_bits: int = 8,
        workload_class: str = "matmul8",
    ) -> PowerBreakdown:
        """Full breakdown for one measured run."""
        fractions = cycle_fractions(perf)
        dynamic = self.core_dynamic_mw(fractions, sub_byte_bits)
        rest = SOC_BASE_MW + SOC_MEM_MW_PER_ACCESS * memory_accesses_per_cycle(perf)
        core_extra = soc_extra = 0.0
        if self.params.name == "ext-nopm":
            if workload_class not in NOPM_EXTRA_SOC_MW:
                raise ModelError(f"unknown workload class {workload_class!r}")
            core_extra = NOPM_EXTRA_CORE_MW[workload_class]
            soc_extra = NOPM_EXTRA_SOC_MW[workload_class] - core_extra
        return PowerBreakdown(
            core_dynamic_mw=dynamic,
            core_leakage_mw=self.params.leakage_mw,
            soc_rest_mw=rest,
            nopm_core_extra_mw=core_extra,
            nopm_soc_extra_mw=soc_extra,
        )


def model_for(core: str, power_mgmt: bool = True) -> PowerModel:
    """Power model for a named core (RI5CY or XPULPNN)."""
    if core == RI5CY:
        return PowerModel(BASELINE)
    if core == XPULPNN:
        return PowerModel(EXTENDED_PM if power_mgmt else EXTENDED_NOPM)
    raise ModelError(f"unknown core {core!r}")
