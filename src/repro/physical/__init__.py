"""Physical models: area, power, energy efficiency, technology points."""

from .area import AreaModel, AreaReport, BASELINE_TOTAL_UM2, EXTENSIONS, ExtensionAreas
from .cluster import ClusterPowerBreakdown, ClusterPowerModel, cluster_model_for
from .design import (
    SiliconSummary,
    cluster_area_mm2,
    cluster_silicon,
    energy_per_inference_uj,
    power_bounds_mw,
    sram_leakage_mw,
)
from .energy import OPS_PER_MAC, EfficiencyPoint, efficiency
from .power import (
    BASELINE,
    EXTENDED_NOPM,
    EXTENDED_PM,
    NOPM_EXTRA_CORE_MW,
    NOPM_EXTRA_SOC_MW,
    SOC_BASE_MW,
    SOC_MEM_MW_PER_ACCESS,
    CorePowerParams,
    PowerBreakdown,
    PowerModel,
    cycle_fractions,
    memory_accesses_per_cycle,
    model_for,
)
from .technology import NOMINAL, TECHNOLOGY, TYPICAL, WORST_CASE, Corner, OperatingPoint

__all__ = [
    "AreaModel",
    "AreaReport",
    "BASELINE",
    "BASELINE_TOTAL_UM2",
    "ClusterPowerBreakdown",
    "ClusterPowerModel",
    "Corner",
    "CorePowerParams",
    "EXTENDED_NOPM",
    "EXTENDED_PM",
    "EXTENSIONS",
    "EfficiencyPoint",
    "ExtensionAreas",
    "NOMINAL",
    "NOPM_EXTRA_CORE_MW",
    "NOPM_EXTRA_SOC_MW",
    "OPS_PER_MAC",
    "OperatingPoint",
    "PowerBreakdown",
    "PowerModel",
    "SOC_BASE_MW",
    "SOC_MEM_MW_PER_ACCESS",
    "SiliconSummary",
    "TECHNOLOGY",
    "TYPICAL",
    "WORST_CASE",
    "cluster_area_mm2",
    "cluster_model_for",
    "cluster_silicon",
    "cycle_fractions",
    "efficiency",
    "energy_per_inference_uj",
    "memory_accesses_per_cycle",
    "model_for",
    "power_bounds_mw",
    "sram_leakage_mw",
]
