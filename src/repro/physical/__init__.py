"""Physical models: area, power, energy efficiency, technology points."""

from .area import AreaModel, AreaReport, BASELINE_TOTAL_UM2, EXTENSIONS, ExtensionAreas
from .cluster import ClusterPowerBreakdown, ClusterPowerModel, cluster_model_for
from .energy import OPS_PER_MAC, EfficiencyPoint, efficiency
from .power import (
    BASELINE,
    EXTENDED_NOPM,
    EXTENDED_PM,
    NOPM_EXTRA_CORE_MW,
    NOPM_EXTRA_SOC_MW,
    SOC_BASE_MW,
    SOC_MEM_MW_PER_ACCESS,
    CorePowerParams,
    PowerBreakdown,
    PowerModel,
    cycle_fractions,
    memory_accesses_per_cycle,
    model_for,
)
from .technology import NOMINAL, TECHNOLOGY, TYPICAL, WORST_CASE, Corner, OperatingPoint

__all__ = [
    "AreaModel",
    "AreaReport",
    "BASELINE",
    "BASELINE_TOTAL_UM2",
    "ClusterPowerBreakdown",
    "ClusterPowerModel",
    "Corner",
    "CorePowerParams",
    "EXTENDED_NOPM",
    "EXTENDED_PM",
    "EXTENSIONS",
    "EfficiencyPoint",
    "ExtensionAreas",
    "NOMINAL",
    "NOPM_EXTRA_CORE_MW",
    "NOPM_EXTRA_SOC_MW",
    "OPS_PER_MAC",
    "OperatingPoint",
    "PowerBreakdown",
    "PowerModel",
    "SOC_BASE_MW",
    "SOC_MEM_MW_PER_ACCESS",
    "TECHNOLOGY",
    "TYPICAL",
    "WORST_CASE",
    "cluster_model_for",
    "cycle_fractions",
    "efficiency",
    "memory_accesses_per_cycle",
    "model_for",
]
