"""Technology and operating-point definitions (22nm FDX, paper §IV).

The paper implements both PULPissimo variants in GlobalFoundries 22FDX:
synthesis at the worst-case corner (SS, 0.59 V, -40/125 C), power analysis
at the typical corner (TT, 0.65 V, 25 C), with the core characterized at
0.75 V / 250 MHz.  These dataclasses carry those operating points so every
derived number states its conditions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Corner:
    name: str
    voltage_v: float
    temperature_c: float


WORST_CASE = Corner(name="SS", voltage_v=0.59, temperature_c=125.0)
TYPICAL = Corner(name="TT", voltage_v=0.65, temperature_c=25.0)


@dataclass(frozen=True)
class OperatingPoint:
    """Frequency/voltage point used for the power numbers."""

    name: str
    freq_hz: float
    voltage_v: float
    corner: Corner = TYPICAL


#: The operating point of all Table III power figures.
NOMINAL = OperatingPoint(name="nominal", freq_hz=250e6, voltage_v=0.75)

#: Technology node descriptor (for reports).
TECHNOLOGY = "22nm FD-SOI (22FDX)"
