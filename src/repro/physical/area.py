"""Area model (paper Table III, upper half).

Absolute block areas are silicon measurements we cannot re-derive in
Python; they enter the model as the baseline RI5CY block areas plus the
*increments* each XpulpNN addition contributes (extra dot-product regions,
the quantization unit in the EX stage, decoder growth in ID, LSU port
changes, and the power-management registers).  Everything the paper
*reports* — per-block extended areas and overhead percentages, including
the headline 11.1 % — is recomputed from that composition, so the
accounting itself is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: RI5CY baseline block areas in um^2 (Table III column 1).  Blocks are
#: not disjoint: the dotp unit is part of the EX stage; "other" covers
#: IF stage, register file, CSRs, etc.
BASELINE_BLOCKS_UM2: Dict[str, float] = {
    "dotp_unit": 5708.9,
    "id_stage": 6363.1,
    "ex_stage": 9500.9,
    "lsu": 518.0,
}
BASELINE_TOTAL_UM2 = 19729.9

#: Area increments of the XpulpNN extensions in um^2, attributed per
#: block.  Derived from the paper's extended-core measurements: the new
#: nibble/crumb multiplier regions and their adder trees grow the dotp
#: unit; the quantization unit (plus datapath muxing) grows the EX stage;
#: the new encodings grow the ID stage; the quantization unit's memory
#: port grows the LSU.
@dataclass(frozen=True)
class ExtensionAreas:
    dotp_regions: float = 1046.9        # nibble + crumb multiplier regions
    dotp_power_mgmt: float = 88.6       # operand-isolation input registers
    quant_unit: float = 581.3           # quantization FSM + comparators
    quant_unit_pm: float = 33.9         # its operand-isolation registers
    id_decoder: float = 167.1           # XpulpNN decode logic
    id_power_mgmt: float = 147.6        # clock-gating control
    lsu_port: float = 92.8              # threshold-fetch path (no PM)
    lsu_port_pm: float = 73.2           # with operand isolation
    #: Net area change outside the four listed blocks (IF stage, register
    #: file, CSRs) after resynthesis: the no-PM netlist recovers some area
    #: elsewhere, the PM netlist grows slightly.
    other_no_pm: float = -193.1
    other_pm: float = 44.3


EXTENSIONS = ExtensionAreas()


@dataclass
class AreaReport:
    """Per-block areas of one core configuration."""

    name: str
    blocks: Dict[str, float]
    total: float

    def overhead_vs(self, other: "AreaReport") -> Dict[str, float]:
        """Percent overhead per block (and total) against *other*."""
        out = {
            block: 100.0 * (self.blocks[block] - other.blocks[block]) / other.blocks[block]
            for block in self.blocks
        }
        out["total"] = 100.0 * (self.total - other.total) / other.total
        return out


class AreaModel:
    """Compose per-configuration areas from baseline + extension deltas."""

    #: PULPissimo SoC area with the extended core (paper §IV-A).
    SOC_AREA_MM2 = 0.998

    def __init__(self, extensions: ExtensionAreas = EXTENSIONS) -> None:
        self.ext = extensions

    def baseline(self) -> AreaReport:
        return AreaReport(
            name="RI5CY",
            blocks=dict(BASELINE_BLOCKS_UM2),
            total=BASELINE_TOTAL_UM2,
        )

    def extended(self, power_mgmt: bool = True) -> AreaReport:
        """Extended RI5CY, with or without the power-management logic."""
        ext = self.ext
        dotp = BASELINE_BLOCKS_UM2["dotp_unit"] + ext.dotp_regions
        id_stage = BASELINE_BLOCKS_UM2["id_stage"] + ext.id_decoder
        ex_extra = ext.dotp_regions + ext.quant_unit
        lsu = BASELINE_BLOCKS_UM2["lsu"] + ext.lsu_port
        other = ext.other_no_pm
        if power_mgmt:
            dotp += ext.dotp_power_mgmt
            id_stage += ext.id_power_mgmt
            ex_extra += ext.dotp_power_mgmt + ext.quant_unit_pm
            lsu = BASELINE_BLOCKS_UM2["lsu"] + ext.lsu_port_pm
            other = ext.other_pm
        ex_stage = BASELINE_BLOCKS_UM2["ex_stage"] + ex_extra
        # The total grows by everything added anywhere in the core (the
        # dotp unit is inside the EX stage, so it is not double counted).
        total = BASELINE_TOTAL_UM2 + (ex_stage - BASELINE_BLOCKS_UM2["ex_stage"]) + (
            id_stage - BASELINE_BLOCKS_UM2["id_stage"]
        ) + (lsu - BASELINE_BLOCKS_UM2["lsu"]) + other
        name = "Ext. RI5CY" + (" (PM)" if power_mgmt else " (no PM)")
        return AreaReport(
            name=name,
            blocks={
                "dotp_unit": dotp,
                "id_stage": id_stage,
                "ex_stage": ex_stage,
                "lsu": lsu,
            },
            total=total,
        )

    def table3_area(self) -> Dict[str, Dict[str, float]]:
        """The full upper half of Table III, as nested dicts."""
        base = self.baseline()
        no_pm = self.extended(power_mgmt=False)
        pm = self.extended(power_mgmt=True)
        rows: Dict[str, Dict[str, float]] = {}
        for block in ("total", "dotp_unit", "id_stage", "ex_stage", "lsu"):
            def value(rep: AreaReport) -> float:
                return rep.total if block == "total" else rep.blocks[block]

            rows[block] = {
                "RI5CY": value(base),
                "Ext_noPM": value(no_pm),
                "Ext_noPM_overhead_%": 100.0 * (value(no_pm) - value(base)) / value(base),
                "Ext_PM": value(pm),
                "Ext_PM_overhead_%": 100.0 * (value(pm) - value(base)) / value(base),
            }
        return rows

    def core_area_mm2(self, power_mgmt: bool = True) -> float:
        return self.extended(power_mgmt).total / 1e6
