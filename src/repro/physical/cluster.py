"""Cluster-level power and energy aggregation.

Extends the single-core activity model to N cores sharing one L1: each
core contributes its own dynamic power weighted by how busy it actually
was (barrier-parked cycles clock-gate the core down to leakage), the
rest-of-SoC term is paid once, and the memory-traffic term sees the
*combined* TCDM request stream.  This is the standard PULP cluster
energy argument: parallelism leaves dynamic energy per op roughly flat
while the fixed SoC power amortizes over N times the throughput — which
is why cluster efficiency in Gop/s/W climbs with cores until TCDM
contention erodes the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.perf import PerfCounters
from ..errors import ModelError
from ..target.names import XPULPNN
from .power import (
    SOC_BASE_MW,
    SOC_MEM_MW_PER_ACCESS,
    PowerModel,
    cycle_fractions,
    memory_accesses_per_cycle,
    model_for,
)


@dataclass
class ClusterPowerBreakdown:
    """Power of one parallel workload on an N-core cluster (mW)."""

    per_core_dynamic_mw: List[float]
    per_core_leakage_mw: float
    soc_rest_mw: float

    @property
    def num_cores(self) -> int:
        return len(self.per_core_dynamic_mw)

    @property
    def cores_dynamic_mw(self) -> float:
        return sum(self.per_core_dynamic_mw)

    @property
    def cores_leakage_mw(self) -> float:
        return self.per_core_leakage_mw * self.num_cores

    @property
    def cluster_total_mw(self) -> float:
        return self.cores_dynamic_mw + self.cores_leakage_mw + self.soc_rest_mw

    @property
    def cluster_total_w(self) -> float:
        return self.cluster_total_mw * 1e-3


class ClusterPowerModel:
    """Activity-based power for a cluster run.

    Wraps a per-core :class:`~repro.physical.power.PowerModel`; idle
    (barrier-parked) cycles scale each core's dynamic contribution by its
    active fraction — a parked core is clock-gated, so it burns leakage
    only.  TCDM traffic from all cores (and their contention level) feeds
    one shared memory term referenced to the cluster wall-clock.
    """

    def __init__(self, core_model: PowerModel) -> None:
        self.core = core_model

    def evaluate(
        self,
        per_core: Sequence[PerfCounters],
        sub_byte_bits: int = 8,
    ) -> ClusterPowerBreakdown:
        if not per_core:
            raise ModelError("cluster power needs at least one core's counters")
        wall = max(p.cycles for p in per_core)
        if wall <= 0:
            raise ModelError("perf counters hold no cycles")
        dynamics: List[float] = []
        accesses_per_wall_cycle = 0.0
        for perf in per_core:
            fractions = cycle_fractions(perf)
            busy = self.core.core_dynamic_mw(fractions, sub_byte_bits)
            dynamics.append(busy * perf.active_cycles / wall)
            accesses_per_wall_cycle += (
                memory_accesses_per_cycle(perf) * perf.cycles / wall
            )
        rest = SOC_BASE_MW + SOC_MEM_MW_PER_ACCESS * accesses_per_wall_cycle
        return ClusterPowerBreakdown(
            per_core_dynamic_mw=dynamics,
            per_core_leakage_mw=self.core.params.leakage_mw,
            soc_rest_mw=rest,
        )


def cluster_model_for(core: str = XPULPNN,
                      power_mgmt: bool = True) -> ClusterPowerModel:
    """Cluster power model built on the named core's coefficients."""
    return ClusterPowerModel(model_for(core, power_mgmt))
