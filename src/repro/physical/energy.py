"""Energy and efficiency metrics derived from cycles x power.

Every efficiency figure in the paper (Figs 7 and 9, the 279 GMAC/s/W
peak, Table I's Gop/s/W band) is throughput divided by power; this module
keeps those conversions in one place.  Note the paper counts 1 MAC = 2
ops, so Gop/s/W = 2 x GMAC/s/W.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import NOMINAL, OperatingPoint

#: Multiply-accumulate counted as two operations (multiply + add).
OPS_PER_MAC = 2


@dataclass(frozen=True)
class EfficiencyPoint:
    """Throughput and efficiency of one kernel on one platform."""

    name: str
    macs: int
    cycles: int
    freq_hz: float
    power_w: float

    @property
    def runtime_s(self) -> float:
        return self.cycles / self.freq_hz

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles

    @property
    def gmacs_per_s(self) -> float:
        return self.macs / self.runtime_s / 1e9

    @property
    def gops_per_s(self) -> float:
        return self.gmacs_per_s * OPS_PER_MAC

    @property
    def gmacs_per_s_per_w(self) -> float:
        return self.gmacs_per_s / self.power_w

    @property
    def gops_per_s_per_w(self) -> float:
        return self.gmacs_per_s_per_w * OPS_PER_MAC

    @property
    def energy_per_inference_uj(self) -> float:
        return self.runtime_s * self.power_w * 1e6

    def efficiency_ratio(self, other: "EfficiencyPoint") -> float:
        """How many times more efficient this point is than *other*."""
        return self.gmacs_per_s_per_w / other.gmacs_per_s_per_w

    def speedup_over(self, other: "EfficiencyPoint") -> float:
        """Cycle-count speedup (frequency-independent, as in Fig 8)."""
        return other.cycles / self.cycles


def efficiency(
    name: str,
    macs: int,
    cycles: int,
    power_w: float,
    point: OperatingPoint = NOMINAL,
    freq_hz: float | None = None,
) -> EfficiencyPoint:
    """Build an :class:`EfficiencyPoint` at an operating point."""
    return EfficiencyPoint(
        name=name,
        macs=macs,
        cycles=cycles,
        freq_hz=freq_hz if freq_hz is not None else point.freq_hz,
        power_w=power_w,
    )
