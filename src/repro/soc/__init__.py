"""SoC layer: memory model and the PULPissimo MCU wrapper."""

from .memmap import (
    L2_BASE,
    L2_SIZE,
    PERIPH_BASE,
    ROM_BASE,
    STDOUT_PUTC,
    TIMER_CYCLES,
)
from .memory import Memory
from .pulpissimo import Pulpissimo, SocMemory

__all__ = [
    "L2_BASE",
    "L2_SIZE",
    "Memory",
    "PERIPH_BASE",
    "Pulpissimo",
    "ROM_BASE",
    "STDOUT_PUTC",
    "SocMemory",
    "TIMER_CYCLES",
]
