"""PULPissimo memory map (paper Fig. 5).

Only the regions that affect kernel execution are modelled as real
memory; the peripheral subsystem (uDMA, timer, GPIO, ...) is an address
space whose registers read as zero and swallow writes — during the
paper's benchmarks the peripherals are idle, so they only matter for
address decoding.
"""

from __future__ import annotations

#: 512 kB of interleaved L2 SRAM.
L2_BASE = 0x1C00_0000
L2_SIZE = 512 * 1024

#: Boot ROM (modelled as RAM the loader fills).
ROM_BASE = 0x1A00_0000
ROM_SIZE = 8 * 1024

#: APB peripheral subsystem (uDMA, SoC control, timers, ...).
PERIPH_BASE = 0x1A10_0000
PERIPH_SIZE = 1024 * 1024

#: Well-known peripheral register offsets (stub level).
SOC_CTRL_INFO = PERIPH_BASE + 0x0000
TIMER_CYCLES = PERIPH_BASE + 0x1_0000
STDOUT_PUTC = PERIPH_BASE + 0x2_0000
