"""PULPissimo memory map (paper Fig. 5).

Only the regions that affect kernel execution are modelled as real
memory; the peripheral subsystem (uDMA, timer, GPIO, ...) is an address
space whose registers read as zero and swallow writes — during the
paper's benchmarks the peripherals are idle, so they only matter for
address decoding.
"""

from __future__ import annotations

#: 512 kB of interleaved L2 SRAM.
L2_BASE = 0x1C00_0000
L2_SIZE = 512 * 1024

#: Boot ROM (modelled as RAM the loader fills).
ROM_BASE = 0x1A00_0000
ROM_SIZE = 8 * 1024

#: APB peripheral subsystem (uDMA, SoC control, timers, ...).
PERIPH_BASE = 0x1A10_0000
PERIPH_SIZE = 1024 * 1024

#: Well-known peripheral register offsets (stub level).
SOC_CTRL_INFO = PERIPH_BASE + 0x0000
TIMER_CYCLES = PERIPH_BASE + 0x1_0000
STDOUT_PUTC = PERIPH_BASE + 0x2_0000

# ---------------------------------------------------------------------------
# PULP cluster (the multi-core companion of PULPissimo; see docs/CLUSTER.md).
# The region layout follows the PULP cluster convention: L1 TCDM at the
# cluster base, cluster peripherals (event unit, DMA) 2 MB above it.
# ---------------------------------------------------------------------------

#: Cluster region base.
CLUSTER_BASE = 0x1000_0000

#: Shared L1 tightly-coupled data memory (word-interleaved banks).
TCDM_BASE = CLUSTER_BASE
TCDM_SIZE = 128 * 1024

#: Cluster peripheral space (event unit + DMA front-ends).
CLUSTER_PERIPH_BASE = CLUSTER_BASE + 0x20_0000
CLUSTER_PERIPH_SIZE = 4 * 1024

#: Event unit registers.
EU_NUM_CORES = CLUSTER_PERIPH_BASE + 0x00    # R: cores in the cluster
EU_BARRIER_WAIT = CLUSTER_PERIPH_BASE + 0x04  # R: arrive + park until release
EU_BARRIER_COUNT = CLUSTER_PERIPH_BASE + 0x08  # R: barriers completed so far

#: Cluster DMA (MCHAN-style) register file.
DMA_BASE = CLUSTER_PERIPH_BASE + 0x400
DMA_SRC = DMA_BASE + 0x00          # W: source byte address
DMA_DST = DMA_BASE + 0x04          # W: destination byte address
DMA_LEN = DMA_BASE + 0x08          # W: bytes per row
DMA_SRC_STRIDE = DMA_BASE + 0x0C   # W: source row stride (2D)
DMA_DST_STRIDE = DMA_BASE + 0x10   # W: destination row stride (2D)
DMA_REPS = DMA_BASE + 0x14         # W: row count (1 = 1D transfer)
DMA_START = DMA_BASE + 0x18        # W: any store launches the descriptor
DMA_STATUS = DMA_BASE + 0x1C       # R: outstanding transfers (0 = idle)
