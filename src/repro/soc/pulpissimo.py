"""PULPissimo SoC model: core + L2 + stub peripherals.

This wires the pieces of Fig. 5 that matter for the paper's experiments:
the (extended) RI5CY core fetching and crunching against single-cycle L2
SRAM.  The peripheral space decodes but is inert; a tiny pseudo-UART
register collects characters so examples can "print".
"""

from __future__ import annotations

from typing import List

from ..errors import MemoryAccessError
from .memmap import (
    L2_BASE,
    L2_SIZE,
    PERIPH_BASE,
    PERIPH_SIZE,
    ROM_BASE,
    ROM_SIZE,
    STDOUT_PUTC,
    TIMER_CYCLES,
)
from .memory import Memory
from ..target.names import XPULPNN


class SocMemory:
    """Address decoder over the PULPissimo regions."""

    def __init__(self) -> None:
        self.l2 = Memory(L2_SIZE, base=L2_BASE, name="l2")
        self.rom = Memory(ROM_SIZE, base=ROM_BASE, name="rom")
        self.uart_output: List[int] = []
        self._timer_hook = None

    def _region(self, addr: int, length: int):
        if self.l2.contains(addr, length):
            return self.l2
        if self.rom.contains(addr, length):
            return self.rom
        return None

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        region = self._region(addr, size)
        if region is not None:
            return region.load(addr, size, signed)
        if PERIPH_BASE <= addr < PERIPH_BASE + PERIPH_SIZE:
            if addr == TIMER_CYCLES and self._timer_hook is not None:
                return self._timer_hook() & 0xFFFF_FFFF
            return 0
        raise MemoryAccessError(f"unmapped load of {size} B at {addr:#010x}")

    def store(self, addr: int, size: int, value: int) -> None:
        region = self._region(addr, size)
        if region is not None:
            region.store(addr, size, value)
            return
        if PERIPH_BASE <= addr < PERIPH_BASE + PERIPH_SIZE:
            if addr == STDOUT_PUTC:
                self.uart_output.append(value & 0xFF)
            return
        raise MemoryAccessError(f"unmapped store of {size} B at {addr:#010x}")

    # Bulk helpers delegate to L2 (where programs and tensors live).
    def write_bytes(self, addr: int, data: bytes) -> None:
        self.l2.write_bytes(addr, data)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return self.l2.read_bytes(addr, length)

    def write_words(self, addr: int, words) -> None:
        self.l2.write_words(addr, words)

    def read_words(self, addr: int, count: int):
        return self.l2.read_words(addr, count)

    @property
    def uart_text(self) -> str:
        return bytes(self.uart_output).decode("latin-1")


class Pulpissimo:
    """The full MCU: one core (baseline or extended) + SoC memory."""

    def __init__(self, isa: str = XPULPNN, timing=None) -> None:
        # Imported here: repro.core imports repro.soc.memory, so a
        # module-level import would be circular.
        from ..core.cpu import Cpu

        self.mem = SocMemory()
        self.cpu = Cpu(isa=isa, mem=self.mem, timing=timing)
        self.mem._timer_hook = lambda: self.cpu.perf.cycles

    def load_binary(self, blob: bytes, addr: int = L2_BASE) -> None:
        self.mem.write_bytes(addr, blob)

    def run_program(self, program, **kwargs):
        """Run a linked program placed in L2."""
        return self.cpu.run_program(program, **kwargs)

    @property
    def uart_text(self) -> str:
        return self.mem.uart_text
