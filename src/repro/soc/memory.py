"""Byte-addressable memory model.

A :class:`Memory` is a flat little-endian byte array mapped at a base
address.  The PULPissimo SoC model (:mod:`repro.soc.pulpissimo`) composes
these into a memory map.  Alignment is *not* enforced here: RI5CY supports
misaligned accesses by splitting them into two memory transactions, and the
core model charges the extra cycle (see :meth:`repro.core.cpu.Cpu.load`).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import MemoryAccessError
from ..isa.bits import to_signed

_SIZES = (1, 2, 4)


class Memory:
    """Flat little-endian RAM of *size* bytes mapped at *base*."""

    def __init__(self, size: int, base: int = 0, name: str = "ram") -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size = size
        self.name = name
        self._data = bytearray(size)

    # -- accessors -----------------------------------------------------

    def contains(self, addr: int, length: int = 1) -> bool:
        """True if ``[addr, addr+length)`` lies inside this memory."""
        return self.base <= addr and addr + length <= self.base + self.size

    def _offset(self, addr: int, length: int) -> int:
        if not self.contains(addr, length):
            raise MemoryAccessError(
                f"{self.name}: access of {length} B at {addr:#010x} outside "
                f"[{self.base:#010x}, {self.base + self.size:#010x})"
            )
        return addr - self.base

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        """Read *size* bytes at *addr*; returns an unsigned 32-bit value
        unless *signed*, in which case the value is sign-extended (still
        returned wrapped to 32 bits, matching register semantics)."""
        if size not in _SIZES:
            raise MemoryAccessError(f"unsupported load size {size}")
        offset = self._offset(addr, size)
        value = int.from_bytes(self._data[offset:offset + size], "little")
        if signed:
            value = to_signed(value, size * 8) & 0xFFFF_FFFF
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        """Write the low *size* bytes of *value* at *addr*."""
        if size not in _SIZES:
            raise MemoryAccessError(f"unsupported store size {size}")
        offset = self._offset(addr, size)
        self._data[offset:offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    # -- bulk helpers ----------------------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        offset = self._offset(addr, len(data))
        self._data[offset:offset + len(data)] = data

    def read_bytes(self, addr: int, length: int) -> bytes:
        offset = self._offset(addr, length)
        return bytes(self._data[offset:offset + length])

    def write_words(self, addr: int, words: Iterable[int]) -> None:
        """Write a sequence of 32-bit words starting at *addr*."""
        for i, word in enumerate(words):
            self.store(addr + 4 * i, 4, word)

    def read_words(self, addr: int, count: int) -> list:
        return [self.load(addr + 4 * i, 4) for i in range(count)]

    def write_i16(self, addr: int, values: Iterable[int]) -> None:
        """Write a sequence of signed 16-bit values starting at *addr*."""
        for i, value in enumerate(values):
            self.store(addr + 2 * i, 2, value & 0xFFFF)

    def read_i16(self, addr: int, count: int) -> list:
        return [to_signed(self.load(addr + 2 * i, 2), 16) for i in range(count)]

    def write_i8(self, addr: int, values: Iterable[int]) -> None:
        for i, value in enumerate(values):
            self.store(addr + i, 1, value & 0xFF)

    def read_i8(self, addr: int, count: int) -> list:
        return [to_signed(self.load(addr + i, 1), 8) for i in range(count)]

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        offset = self._offset(addr, length)
        self._data[offset:offset + length] = bytes([byte & 0xFF]) * length

    def __repr__(self) -> str:
        return f"Memory({self.name}, {self.size} B @ {self.base:#010x})"
