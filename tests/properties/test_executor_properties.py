"""Property-based tests on the executor: ALU semantics and encodings."""

from hypothesis import given, settings, strategies as st

from repro.asm import KernelBuilder
from repro.core import Cpu
from repro.isa import build_isa, encode
from repro.isa.bits import to_signed, u32
from repro.isa.instruction import Instruction

u32s = st.integers(0, 0xFFFFFFFF)

_ISA = build_isa("xpulpnn")
_CPU = Cpu(isa=_ISA)


def _alu(mnemonic, a, b):
    b_builder = KernelBuilder(isa=_ISA)
    b_builder.emit(mnemonic, "a0", "a1", "a2")
    b_builder.ebreak()
    _CPU.reset()
    _CPU.load_program(b_builder.build())
    _CPU.regs[11] = a
    _CPU.regs[12] = b
    _CPU.run()
    return _CPU.regs[10]


@settings(max_examples=40)
@given(a=u32s, b=u32s)
def test_add_sub_inverse(a, b):
    assert _alu("sub", _alu("add", a, b), b) == a


@settings(max_examples=40)
@given(a=u32s, b=u32s)
def test_and_or_absorption(a, b):
    assert _alu("and", _alu("or", a, b), a) == a


@settings(max_examples=40)
@given(a=u32s, b=u32s)
def test_xor_involution(a, b):
    assert _alu("xor", _alu("xor", a, b), b) == a


@settings(max_examples=40)
@given(a=u32s, b=u32s)
def test_slt_matches_python(a, b):
    assert _alu("slt", a, b) == (1 if to_signed(a) < to_signed(b) else 0)
    assert _alu("sltu", a, b) == (1 if a < b else 0)


@settings(max_examples=40)
@given(a=u32s, b=u32s)
def test_mul_matches_python(a, b):
    assert _alu("mul", a, b) == u32(a * b)


@settings(max_examples=30)
@given(a=u32s, b=st.integers(0, 31))
def test_shifts_match_python(a, b):
    assert _alu("sll", a, b) == u32(a << b)
    assert _alu("srl", a, b) == a >> b
    assert _alu("sra", a, b) == u32(to_signed(a) >> b)


@settings(max_examples=40)
@given(rd=st.integers(0, 31), rs1=st.integers(0, 31), rs2=st.integers(0, 31))
def test_r_format_encoding_roundtrip(rd, rs1, rs2):
    spec = _ISA.spec("add")
    ins = Instruction(spec=spec, rd=rd, rs1=rs1, rs2=rs2)
    decoded = _ISA.decoder.decode(encode(ins))
    assert (decoded.rd, decoded.rs1, decoded.rs2) == (rd, rs1, rs2)


@settings(max_examples=40)
@given(imm=st.integers(-2048, 2047))
def test_i_format_immediate_roundtrip(imm):
    spec = _ISA.spec("addi")
    ins = Instruction(spec=spec, rd=1, rs1=2, imm=imm)
    assert _ISA.decoder.decode(encode(ins)).imm == imm


@settings(max_examples=40)
@given(imm=st.integers(-2048, 2047))
def test_s_format_immediate_roundtrip(imm):
    spec = _ISA.spec("sw")
    ins = Instruction(spec=spec, rs1=2, rs2=3, imm=imm)
    assert _ISA.decoder.decode(encode(ins)).imm == imm


@settings(max_examples=40)
@given(imm=st.integers(-2048, 2046).map(lambda v: v & ~1))
def test_b_format_immediate_roundtrip(imm):
    spec = _ISA.spec("beq")
    ins = Instruction(spec=spec, rs1=2, rs2=3, imm=imm)
    assert _ISA.decoder.decode(encode(ins)).imm == imm


@settings(max_examples=40)
@given(imm=st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2))
def test_j_format_immediate_roundtrip(imm):
    spec = _ISA.spec("jal")
    ins = Instruction(spec=spec, rd=1, imm=imm)
    assert _ISA.decoder.decode(encode(ins)).imm == imm
