"""Property-based kernel tests: random geometries and tensors stay
bit-exact against the golden models (bounded sizes for speed)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    ConvConfig,
    ConvKernel,
    LinearConfig,
    LinearKernel,
    MatmulConfig,
    MatmulKernel,
    PoolConfig,
    PoolKernel,
)
from repro.qnn import (
    ConvGeometry,
    conv2d_golden,
    maxpool_golden,
    random_threshold_table,
    requantize_shift,
    thresholds_from_accumulators,
)

_SETTINGS = dict(max_examples=5, deadline=None)


@st.composite
def matmul_cases(draw):
    bits = draw(st.sampled_from([8, 4, 2]))
    k = draw(st.sampled_from([32, 64, 96, 160]))
    out_ch = draw(st.sampled_from([4, 8, 12]))
    seed = draw(st.integers(0, 2**31))
    return bits, k, out_ch, seed


@settings(**_SETTINGS)
@given(matmul_cases())
def test_matmul_raw_matches_golden(case):
    bits, k, out_ch, seed = case
    rng = np.random.default_rng(seed)
    lo = -(1 << (bits - 1))
    w = rng.integers(lo, 1 << (bits - 1), (out_ch, k)).astype(np.int32)
    x0 = rng.integers(0, 1 << bits, k).astype(np.int32)
    x1 = rng.integers(0, 1 << bits, k).astype(np.int32)
    kern = MatmulKernel(MatmulConfig(reduction=k, out_ch=out_ch, bits=bits,
                                     quant="none"))
    run = kern.run(w, x0, x1)
    expected = np.stack([x0.astype(np.int64) @ w.T, x1.astype(np.int64) @ w.T])
    assert np.array_equal(run.output, expected)


@st.composite
def conv_cases(draw):
    in_hw = draw(st.sampled_from([4, 6]))
    in_ch = 16
    out_ch = draw(st.sampled_from([4, 8]))
    bits = draw(st.sampled_from([8, 4, 2]))
    pad = draw(st.sampled_from([0, 1]))
    seed = draw(st.integers(0, 2**31))
    if pad == 0 and in_hw == 4:
        in_hw = 6  # keep the output even and non-empty
    return in_hw, in_ch, out_ch, bits, pad, seed


@settings(**_SETTINGS)
@given(conv_cases())
def test_conv_matches_golden(case):
    in_hw, in_ch, out_ch, bits, pad, seed = case
    rng = np.random.default_rng(seed)
    g = ConvGeometry(in_h=in_hw, in_w=in_hw, in_ch=in_ch, out_ch=out_ch,
                     kh=3, kw=3, stride=1, pad=pad)
    lo = -(1 << (bits - 1))
    w = rng.integers(lo, 1 << (bits - 1),
                     (out_ch, 3, 3, in_ch)).astype(np.int32)
    x = rng.integers(0, 1 << bits, (in_hw, in_hw, in_ch)).astype(np.int32)
    acc = conv2d_golden(x, w, stride=1, pad=pad)
    if bits == 8:
        kern = ConvKernel(ConvConfig(geometry=g, bits=8, quant="shift"))
        run = kern.run(w, x, shift=8)
        expected = requantize_shift(acc, 8, 8, signed=False)
    else:
        table = thresholds_from_accumulators(acc, bits)
        kern = ConvKernel(ConvConfig(geometry=g, bits=bits, quant="hw"))
        run = kern.run(w, x, thresholds=table)
        expected = table.quantize(acc, channel_axis=-1)
    assert np.array_equal(run.output, expected)


@settings(**_SETTINGS)
@given(st.sampled_from([8, 4, 2]), st.sampled_from([4, 8]),
       st.integers(0, 2**31))
def test_maxpool_matches_golden(bits, hw, seed):
    rng = np.random.default_rng(seed)
    channels = 16
    x = rng.integers(0, 1 << bits, (hw, hw, channels)).astype(np.int32)
    run = PoolKernel(PoolConfig(hw, hw, channels, bits, op="max")).run(x)
    assert np.array_equal(run.output, maxpool_golden(x, 2))


@settings(**_SETTINGS)
@given(st.sampled_from([8, 4, 2]), st.sampled_from([32, 64, 128]),
       st.integers(0, 10), st.integers(0, 2**31))
def test_linear_matches_golden(bits, in_f, shift, seed):
    rng = np.random.default_rng(seed)
    out_f = 8
    lo = -(1 << (bits - 1))
    w = rng.integers(lo, 1 << (bits - 1), (out_f, in_f)).astype(np.int32)
    x = rng.integers(0, 1 << bits, in_f).astype(np.int32)
    run = LinearKernel(LinearConfig(in_f, out_f, bits)).run(w, x, shift=shift)
    expected = requantize_shift(w.astype(np.int64) @ x, shift, 8, signed=False)
    assert np.array_equal(run.output, expected)


@settings(**_SETTINGS)
@given(st.integers(0, 2**31))
def test_staircase_kernel_vs_table_random_thresholds(seed):
    """Random threshold tables (not derived from the data) still agree."""
    rng = np.random.default_rng(seed)
    k, out_ch = 64, 4
    w = rng.integers(-8, 8, (out_ch, k)).astype(np.int32)
    x0 = rng.integers(0, 16, k).astype(np.int32)
    x1 = rng.integers(0, 16, k).astype(np.int32)
    table = random_threshold_table(out_ch, 4, spread=900, rng=rng)
    kern = MatmulKernel(MatmulConfig(reduction=k, out_ch=out_ch, bits=4,
                                     quant="hw"))
    run = kern.run(w, x0, x1, thresholds=table)
    expected = table.quantize(
        np.stack([x0.astype(np.int64) @ w.T, x1.astype(np.int64) @ w.T]))
    assert np.array_equal(run.output, expected)
