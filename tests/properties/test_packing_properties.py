"""Property-based tests: packing, thresholds, and encoding invariants."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.qnn import pack, unpack, sorted_to_heap, heap_to_sorted, ThresholdTable
from repro.isa.xpulpnn import walk_threshold_tree


@st.composite
def packed_tensors(draw):
    bits = draw(st.sampled_from([2, 4, 8]))
    signed = draw(st.booleans())
    count = draw(st.integers(1, 16)) * (8 // bits)
    lo = -(1 << (bits - 1)) if signed else 0
    hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    values = draw(arrays(np.int32, count, elements=st.integers(lo, hi)))
    return bits, signed, values


@given(packed_tensors())
def test_pack_unpack_roundtrip(case):
    bits, signed, values = case
    data = pack(values, bits, signed)
    assert len(data) == values.size * bits // 8
    assert np.array_equal(unpack(data, bits, signed, count=values.size), values)


@given(packed_tensors())
def test_pack_deterministic(case):
    bits, signed, values = case
    assert pack(values, bits, signed) == pack(values.copy(), bits, signed)


@st.composite
def sorted_thresholds(draw):
    bits = draw(st.sampled_from([2, 4]))
    count = (1 << bits) - 1
    base = draw(st.lists(st.integers(-30000, 30000), min_size=count,
                         max_size=count, unique=True))
    return bits, np.sort(np.array(base, dtype=np.int64))


@given(sorted_thresholds())
def test_heap_roundtrip(case):
    _, thresholds = case
    assert np.array_equal(heap_to_sorted(sorted_to_heap(thresholds)), thresholds)


@given(sorted_thresholds(), st.integers(-32768, 32767))
def test_tree_walk_equals_rank(case, act):
    """The hardware walk must equal the staircase rank for any input —
    the core correctness property of pv.qnt."""
    bits, thresholds = case
    heap = sorted_to_heap(thresholds)
    memory = {2 * i: int(v) for i, v in enumerate(heap)}
    code = walk_threshold_tree(lambda a: memory[a], 0, act, bits)
    assert code == int(np.searchsorted(thresholds, act, side="left"))


@given(sorted_thresholds())
def test_quantize_monotone(case):
    """Staircase quantization is monotone non-decreasing."""
    bits, thresholds = case
    table = ThresholdTable(bits=bits, thresholds=thresholds[None, :])
    xs = np.linspace(-32768, 32767, 201).astype(np.int64)[:, None]
    levels = table.quantize(xs, channel_axis=-1).ravel()
    assert np.all(np.diff(levels) >= 0)
    assert levels.min() >= 0 and levels.max() <= (1 << bits) - 1
