"""Property: assemble -> encode -> disassemble preserves every operand.

Covers the full XpulpV2 + XpulpNN extension sets with randomized
operands — registers, immediates, post-increment addressing, bit-field
pos/len pairs, hardware-loop levels, and branch/loop labels.  The
existing tests/isa round-trip uses one representative operand sample per
spec; this one lets hypothesis search the operand space.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import Assembler, disassemble_bytes, format_instruction
from repro.isa import build_isa
from repro.isa.registers import register_name

ISA = build_isa("xpulpnn")
SPECS = sorted(
    (s for s in ISA.specs if s.isa in ("xpulpv2", "xpulpnn")),
    key=lambda s: s.mnemonic,
)

regs = st.integers(min_value=0, max_value=31)


def _render(draw, spec):
    """Random legal source line for *spec*; returns (line, label_words)."""
    operands = []
    label_words = 0
    for token in spec.syntax:
        if token in ("rd", "rs1", "rs2"):
            operands.append(register_name(draw(regs)))
        elif token == "imm(rs1!)":
            operands.append(
                f"{draw(st.integers(-2048, 2047))}"
                f"({register_name(draw(regs))}!)")
        elif token == "imm(rs1)":
            operands.append(
                f"{draw(st.integers(-2048, 2047))}"
                f"({register_name(draw(regs))})")
        elif token == "rs2(rs1!)":
            operands.append(
                f"{register_name(draw(regs))}({register_name(draw(regs))}!)")
        elif token == "rs2(rs1)":
            operands.append(
                f"{register_name(draw(regs))}({register_name(draw(regs))})")
        elif token == "L":
            operands.append(str(draw(st.integers(0, 1))))
        elif token == "count5":
            operands.append(str(draw(st.integers(0, 31))))
        elif token == "label":
            label_words = draw(st.integers(1, 12))
            operands.append("target")
        elif token == "simm5":
            operands.append(str(draw(st.integers(-16, 15))))
        elif token == "pos":
            operands.append(str(draw(st.integers(0, 15))))
        elif token == "len":
            operands.append(str(draw(st.integers(1, 16))))
        elif token == "uimm":
            operands.append(str(draw(st.integers(0, 31))))
        elif token == "imm":
            lo, hi = (-16, 15) if spec.fmt == "PVI" else (-2048, 2047)
            operands.append(str(draw(st.integers(lo, hi))))
        else:  # pragma: no cover - new syntax tokens must be added here
            raise AssertionError(f"unhandled syntax token {token!r}")
    line = spec.mnemonic
    if operands:
        line += " " + ", ".join(operands)
    return line, label_words


@settings(max_examples=400, deadline=None)
@given(data=st.data())
def test_assemble_encode_disassemble_fidelity(data):
    spec = data.draw(st.sampled_from(SPECS), label="spec")
    line, label_words = _render(data.draw, spec)
    source = [line]
    source += ["nop"] * (label_words - 1)
    if label_words:
        source.append("target:")
    source.append("ebreak")

    program = Assembler(isa="xpulpnn").assemble("\n".join(source))
    assembled = program.instructions[0]
    assert assembled.mnemonic == spec.mnemonic

    blob = program.encode()
    decoded = disassemble_bytes(blob, isa="xpulpnn")[0]

    # Mnemonic fidelity, field-level operand fidelity, and the rendered
    # operand text all survive the encode/decode trip.
    assert decoded.mnemonic == assembled.mnemonic
    for attr in ("rd", "rs1", "rs2", "imm"):
        assert getattr(decoded, attr) == getattr(assembled, attr), attr
    assert (format_instruction(decoded, symbolic=False)
            == format_instruction(assembled, symbolic=False))


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_disassembly_reassembles_to_identical_bytes(data):
    """The disassembler's text is itself valid assembler input."""
    spec = data.draw(st.sampled_from(SPECS), label="spec")
    line, label_words = _render(data.draw, spec)
    source = [line] + ["nop"] * (label_words - 1)
    if label_words:
        source.append("target:")
    source.append("ebreak")
    blob = Assembler(isa="xpulpnn").assemble("\n".join(source)).encode()

    text = "\n".join(
        format_instruction(ins, symbolic=False)
        for ins in disassemble_bytes(blob, isa="xpulpnn"))
    reassembled = Assembler(isa="xpulpnn").assemble(text).encode()
    assert reassembled == blob
