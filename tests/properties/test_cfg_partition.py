"""Property: CFG basic blocks exactly partition every linked program.

The static cost analyzer charges cycles block by block; if a block ever
dropped or double-counted an instruction, the per-block breakdown would
silently disagree with the totals.  Checked over the full kernel catalog
and over hypothesis-generated control-flow soups (random branch/jump
targets, hardware loops, unreachable tails).
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_cfg
from repro.analysis.catalog import catalog_kernel_names, kernel_program
from repro.asm import assemble


def assert_blocks_partition(program):
    """Every instruction lands in exactly one basic block."""
    cfg = build_cfg(program)
    covered = [ins.addr for block in cfg.blocks
               for ins in block.instructions]
    assert len(covered) == len(set(covered)), "blocks overlap"
    assert set(covered) == {ins.addr for ins in program.instructions}
    # Within a block, addresses are contiguous in program order.
    for block in cfg.blocks:
        addrs = [ins.addr for ins in block.instructions]
        sizes = [ins.size for ins in block.instructions]
        for prev, size, nxt in zip(addrs, sizes, addrs[1:]):
            assert prev + size == nxt, "non-contiguous block"


@lru_cache(maxsize=None)
def _program(name):
    return kernel_program(name)


@given(st.sampled_from(catalog_kernel_names()))
@settings(deadline=None, max_examples=25)
def test_catalog_programs_partition(name):
    assert_blocks_partition(_program(name))


@st.composite
def control_flow_soup(draw):
    """Random straight-line/branch/jump/hwloop mix with label targets
    anywhere in the program (including unreachable stretches)."""
    n = draw(st.integers(min_value=2, max_value=14))
    lines = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["alu", "alu", "load", "branch", "jump"]))
        target = f"L{draw(st.integers(min_value=0, max_value=n))}"
        if kind == "alu":
            lines.append("addi t0, t0, 1")
        elif kind == "load":
            lines.append("lw t1, 0(a0)")
        elif kind == "branch":
            lines.append(f"beq t0, t1, {target}")
        else:
            lines.append(f"j {target}")
    src = "".join(f"L{i}:\n    {line}\n" for i, line in enumerate(lines))
    src += f"L{n}:\n    ebreak\n"
    if draw(st.booleans()):
        # Append a hardware loop reachable only by stray targets.
        src += ("    lp.setupi 0, 3, hw_end\n"
                "    addi t2, t2, 1\n"
                "hw_end:\n"
                "    ebreak\n")
    return src


@given(control_flow_soup())
@settings(deadline=None, max_examples=120)
def test_generated_programs_partition(source):
    assert_blocks_partition(assemble(source))
