"""Property-based tests: SIMD lane semantics vs independent numpy models."""

import numpy as np
from hypothesis import given, strategies as st

from repro.isa.bits import join_lanes, split_lanes
from repro.isa.simd import simd_abs, simd_dotp, simd_lane_op, simd_shuffle2

words = st.integers(min_value=0, max_value=0xFFFFFFFF)
widths = st.sampled_from([2, 4, 8, 16])


@given(a=words, b=words, width=widths)
def test_add_matches_numpy(a, b, width):
    got = split_lanes(simd_lane_op("add", a, b, width), width)
    av = np.array(split_lanes(a, width), dtype=np.int64)
    bv = np.array(split_lanes(b, width), dtype=np.int64)
    expected = (av + bv) % (1 << width)
    assert got == list(expected)


@given(a=words, b=words, width=widths)
def test_sub_then_add_roundtrip(a, b, width):
    diff = simd_lane_op("sub", a, b, width)
    assert simd_lane_op("add", diff, b, width) == a


@given(a=words, b=words, width=widths)
def test_min_max_partition(a, b, width):
    """Per lane, {min, max} == {a, b} as multisets (signed)."""
    lo = split_lanes(simd_lane_op("min", a, b, width), width, signed=True)
    hi = split_lanes(simd_lane_op("max", a, b, width), width, signed=True)
    av = split_lanes(a, width, signed=True)
    bv = split_lanes(b, width, signed=True)
    for x, y, m, M in zip(av, bv, lo, hi):
        assert sorted((x, y)) == [m, M]


@given(a=words, b=words, width=widths)
def test_minu_le_maxu(a, b, width):
    lo = split_lanes(simd_lane_op("minu", a, b, width), width)
    hi = split_lanes(simd_lane_op("maxu", a, b, width), width)
    assert all(m <= M for m, M in zip(lo, hi))


@given(a=words, width=widths)
def test_abs_is_nonnegative_except_min(a, width):
    out = split_lanes(simd_abs(a, width), width, signed=True)
    lane_min = -(1 << (width - 1))
    for value in out:
        assert value >= 0 or value == lane_min  # |INT_MIN| wraps


@given(a=words, b=words, width=widths)
def test_avg_between_operands(a, b, width):
    out = split_lanes(simd_lane_op("avg", a, b, width), width, signed=True)
    av = split_lanes(a, width, signed=True)
    bv = split_lanes(b, width, signed=True)
    for x, y, m in zip(av, bv, out):
        assert min(x, y) <= m <= max(x, y)


@given(a=words, b=words, width=widths,
       sa=st.booleans(), sb=st.booleans(), acc=words)
def test_dotp_matches_numpy(a, b, width, sa, sb, acc):
    got = simd_dotp(a, b, width, sa, sb, acc)
    av = np.array(split_lanes(a, width, signed=sa), dtype=np.int64)
    bv = np.array(split_lanes(b, width, signed=sb), dtype=np.int64)
    expected = (int(av @ bv) + acc) & 0xFFFFFFFF
    assert got == expected


@given(a=words, b=words, width=widths)
def test_dotp_commutes_when_same_signedness(a, b, width):
    assert simd_dotp(a, b, width, True, True) == simd_dotp(b, a, width, True, True)
    assert simd_dotp(a, b, width, False, False) == simd_dotp(b, a, width, False, False)


@given(a=words, width=widths, shift=st.integers(0, 31))
def test_shift_roundtrip_lanes(a, width, shift):
    """sll then srl recovers the lane's low bits."""
    amount = shift % width
    b = join_lanes([amount] * (32 // width), width)
    shifted = simd_lane_op("sll", a, b, width)
    back = split_lanes(simd_lane_op("srl", shifted, b, width), width)
    original = split_lanes(a, width)
    mask = (1 << (width - amount)) - 1
    assert back == [v & mask for v in original]


@given(rd=words, a=words, width=st.sampled_from([8, 16]))
def test_shuffle2_identity_selector(rd, a, width):
    lanes = 32 // width
    sel = join_lanes(list(range(lanes)), width)
    assert simd_shuffle2(rd, a, sel, width) == a


@given(rd=words, a=words, width=st.sampled_from([8, 16]))
def test_shuffle2_old_rd_selector(rd, a, width):
    lanes = 32 // width
    sel = join_lanes([lanes + i for i in range(lanes)], width)
    assert simd_shuffle2(rd, a, sel, width) == rd


# ---------------------------------------------------------------------------
# Thumb-2 DSP ops vs numpy (the ARM validation machine's datapath)
# ---------------------------------------------------------------------------

def _smlad_model(rn, rm, ra):
    def q15(v, hi):
        h = (v >> 16) & 0xFFFF if hi else v & 0xFFFF
        return h - 0x10000 if h & 0x8000 else h

    return (ra + q15(rn, False) * q15(rm, False)
            + q15(rn, True) * q15(rm, True)) & 0xFFFFFFFF


@given(rn=words, rm=words, ra=words)
def test_thumb2_smlad_matches_model(rn, rm, ra):
    from repro.baselines import Thumb2Builder, Thumb2Machine

    b = Thumb2Builder()
    b.emit("smlad", "r0", "r1", "r2", "r3")
    machine = Thumb2Machine()
    machine.regs[1], machine.regs[2], machine.regs[3] = rn, rm, ra
    machine.run(b)
    assert machine.regs[0] == _smlad_model(rn, rm, ra)


@given(value=words)
def test_thumb2_sxtb16_pair_roundtrip(value):
    """SXTB16 even + SXTB16,ROR#8 odd cover all four bytes, signed."""
    from repro.baselines import Thumb2Builder, Thumb2Machine

    b = Thumb2Builder()
    b.emit("sxtb16", "r1", "r0")
    b.emit("sxtb16", "r2", "r0", 8)
    machine = Thumb2Machine()
    machine.regs[0] = value
    machine.run(b)
    bytes_ = [(value >> (8 * i)) & 0xFF for i in range(4)]
    signed = [v - 256 if v & 0x80 else v for v in bytes_]

    def halves(word):
        lo = word & 0xFFFF
        hi = (word >> 16) & 0xFFFF
        return [v - 0x10000 if v & 0x8000 else v for v in (lo, hi)]

    assert halves(machine.regs[1]) == [signed[0], signed[2]]
    assert halves(machine.regs[2]) == [signed[1], signed[3]]
