"""Engine-mode resolution: explicit arg > CLI default > env > interp."""

import pytest

from repro.core import Cpu
from repro.engine import (
    EngineConfigError,
    default_mode,
    resolve_mode,
    set_default_mode,
)
from repro.engine.config import ENV_VAR


def test_interp_is_the_default(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert default_mode() == "interp"
    assert Cpu(isa="xpulpnn").engine == "interp"


def test_env_var_sets_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "block")
    assert default_mode() == "block"
    assert Cpu(isa="xpulpnn").engine == "block"


def test_set_default_mode_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "interp")
    set_default_mode("block")
    assert default_mode() == "block"
    set_default_mode(None)
    assert default_mode() == "interp"


def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "block")
    set_default_mode("block")
    assert Cpu(isa="xpulpnn", engine="interp").engine == "interp"
    assert resolve_mode("interp") == "interp"


@pytest.mark.parametrize("bad", ["jit", "BLOCK", ""])
def test_unknown_mode_rejected(bad):
    with pytest.raises(EngineConfigError):
        resolve_mode(bad)


def test_bad_env_value_rejected(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "turbo")
    with pytest.raises(EngineConfigError):
        default_mode()


def test_cli_flag_parses():
    from repro.cli import build_parser

    parser = build_parser()
    for command in (["run", "prog.s"], ["profile", "--kernel", "conv_4bit"],
                    ["report"], ["compile", "--network", "mixed3"]):
        args = parser.parse_args(command + ["--engine", "block"])
        assert args.engine == "block"
        args = parser.parse_args(command)
        assert args.engine is None
