"""Translated-block cache behavior: sharing, keying, invalidation."""

from repro.asm import assemble
from repro.core import Cpu
from repro.core.timing import TimingParams
from repro.engine.blocks import GLOBAL_CACHE, ProgramBlockCache

SOURCE = """
    lp.setupi 0, 20, end0
    addi a0, a0, 1
end0:
    addi a1, a1, 1
    ebreak
"""


def _run(program, **kwargs):
    cpu = Cpu(isa="xpulpnn", engine="block", **kwargs)
    cpu.run_program(program)
    return cpu


class TestGlobalCache:
    def test_translations_shared_across_cores(self):
        program = assemble(SOURCE, isa="xpulpnn")
        first = _run(program)
        assert first.engine_stats["blocks_translated"] > 0
        second = _run(program)
        assert second.engine_stats["blocks_translated"] == 0
        assert second.engine_stats["block_hits"] > 0
        assert second.perf.snapshot() == first.perf.snapshot()

    def test_timing_signature_separates_entries(self):
        """A core with different timing parameters must not reuse blocks
        whose static cycle tables were summed under other parameters."""
        program = assemble(SOURCE, isa="xpulpnn")
        baseline = _run(program)
        slow = TimingParams(load_use_penalty=3)
        other = Cpu(isa="xpulpnn", engine="block", timing=slow)
        other.run_program(program)
        assert other.engine_stats["blocks_translated"] > 0
        assert len(GLOBAL_CACHE) == 2
        assert baseline.halted == other.halted

    def test_negative_entries_cached(self):
        """Terminator start addresses cache as None so repeated visits
        skip re-discovery."""
        program = assemble("j target\ntarget:\naddi a0, a0, 1\nebreak",
                           isa="xpulpnn")
        cpu = _run(program)
        key = (program.digest(), cpu.isa.name,
               cpu.timing.params.signature())
        blocks = GLOBAL_CACHE.map_for(key)
        assert blocks[program.base] is None          # the jump
        assert blocks[program.base + 4] is not None  # the fall-through

    def test_lru_eviction(self):
        cache = ProgramBlockCache(max_programs=2)
        a = cache.map_for(("a",))
        a["x"] = 1
        cache.map_for(("b",))
        cache.map_for(("a",))        # refresh a
        cache.map_for(("c",))        # evicts b
        assert cache.map_for(("a",)) == {"x": 1}
        assert cache.map_for(("b",)) == {}           # re-created empty
        assert len(cache) <= 3


class TestLocalCache:
    def _load_image(self, cpu, program):
        blob = program.encode()
        cpu.mem.write_bytes(program.base, blob)
        cpu.load_from_memory(program.base, len(blob), entry=program.entry)

    def test_memory_images_use_per_core_map(self):
        """load_from_memory images have no digest: translations stay
        core-local and never enter the global cache."""
        program = assemble(SOURCE, isa="xpulpnn")
        cpu = Cpu(isa="xpulpnn", engine="block")
        before = len(GLOBAL_CACHE)
        self._load_image(cpu, program)
        cpu.run()
        assert cpu.engine_stats["blocks_translated"] > 0
        assert len(GLOBAL_CACHE) == before

    def test_reload_invalidates_local_map(self):
        program = assemble(SOURCE, isa="xpulpnn")
        cpu = Cpu(isa="xpulpnn", engine="block")
        self._load_image(cpu, program)
        cpu.run()
        first = cpu.engine_stats["blocks_translated"]
        assert first > 0
        cpu.reset()
        self._load_image(cpu, program)
        cpu.run()
        assert cpu.engine_stats["blocks_translated"] >= first

    def test_memory_image_matches_program_run(self):
        """The decode-from-image path retires identically to the linked
        program under the block engine."""
        program = assemble(SOURCE, isa="xpulpnn")
        direct = Cpu(isa="xpulpnn", engine="block")
        direct.run_program(program)
        image = Cpu(isa="xpulpnn", engine="block")
        self._load_image(image, program)
        image.run()
        assert image.perf.snapshot() == direct.perf.snapshot()
        assert list(image.regs) == list(direct.regs)
