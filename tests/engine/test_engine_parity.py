"""Deterministic engine-parity cases and the kernel-level contract.

The hypothesis suite (test_engine_property) sweeps random programs; this
file pins the named edge cases from the fusion legality rules — shared
loop ends, zero-trip loops, redirect priority — and proves the contract
on real workloads: every tiny-geometry conv configuration and the
benchmark-geometry catalog kernels retire bit- and cycle-identically
under both engines.
"""

import pytest

from repro.core import Cpu
from repro.engine import set_default_mode
from repro.soc.memory import Memory

from tests.conftest import TINY_GEOMETRY
from tests.engine.conftest import run_both, state_of


class TestLoopEdgeCases:
    def test_zero_trip_loop(self):
        run_both("""
            lp.setupi 0, 0, end0
            addi a0, a0, 1
        end0:
            addi a1, a1, 1
            ebreak
        """)

    def test_single_instruction_body(self):
        run_both("""
            lp.setupi 0, 9, end0
        end0:
            addi a0, a0, 2
            ebreak
        """)

    def test_shared_end_l0_priority(self):
        """Both loops end on the same instruction: L0's redirect fires
        first, and L0's final decrement shadows L1's for that visit."""
        run_both("""
            lp.setupi 1, 3, shared
            lp.setupi 0, 4, shared
        shared:
            addi a0, a0, 1
            ebreak
        """)

    def test_l1_only_loop(self):
        run_both("""
            lp.setupi 1, 6, end1
            addi a0, a0, 3
        end1:
            addi a1, a1, 1
            ebreak
        """)

    def test_loop_body_with_branch(self):
        """A branch inside the body splits it across blocks — the fuser
        declines (loop-shape) and the fast-block/interpreter tiers carry
        the iterations."""
        interp, block = run_both("""
            addi a2, zero, 0
            lp.setupi 0, 8, end0
            andi a3, a2, 1
            beq a3, zero, even
            addi a0, a0, 1
        even:
            addi a2, a2, 1
        end0:
            addi a1, a1, 1
            ebreak
        """)
        assert block.engine_stats is not None

    def test_runaway_guard_identical_error(self):
        """Mid-loop budget exhaustion raises the same SimError text."""
        run_both("""
        loop:
            addi a0, a0, 1
            j loop
        """, max_instructions=50)


class TestEligibility:
    def test_tracer_forces_interpreter(self):
        from repro.asm import assemble
        from repro.trace import EventTracer

        program = assemble("addi a0, a0, 1\nebreak", isa="xpulpnn")
        cpu = Cpu(isa="xpulpnn", engine="block")
        cpu.tracer = EventTracer(program=program)
        cpu.run_program(program)
        assert cpu.engine_stats is None

    def test_contended_memory_forces_interpreter(self):
        """Any Memory subclass (the cluster's contention-modelled TCDM)
        keeps the interpreter: fused execution can't replay per-access
        arbitration."""
        from repro.asm import assemble

        class PortedMemory(Memory):
            pass

        cpu = Cpu(isa="xpulpnn", engine="block")
        cpu.mem = PortedMemory(size=cpu.mem.size)
        cpu.run_program(assemble("addi a0, a0, 1\nebreak", isa="xpulpnn"))
        assert cpu.engine_stats is None

    def test_interp_mode_never_builds_engine(self):
        from repro.asm import assemble

        cpu = Cpu(isa="xpulpnn")
        cpu.run_program(assemble("ebreak", isa="xpulpnn"))
        assert cpu.engine == "interp"
        assert cpu.engine_stats is None


def _conv_states(bits, isa, quant):
    import numpy as np

    from repro.kernels import ConvConfig, ConvKernel
    from repro.qnn import (
        conv2d_golden,
        random_activations,
        random_weights,
        thresholds_from_accumulators,
    )
    from repro.soc import L2_SIZE

    g = TINY_GEOMETRY
    rng = np.random.default_rng(0xB10C)
    w = random_weights((g.out_ch, g.kh, g.kw, g.in_ch), bits, rng)
    x = random_activations((g.in_h, g.in_w, g.in_ch), bits, rng)
    acc = conv2d_golden(x, w, stride=g.stride, pad=g.pad)
    states = []
    for mode in ("interp", "block"):
        kernel = ConvKernel(ConvConfig(
            geometry=g, bits=bits, isa=isa, quant=quant))
        size = max(kernel.layout.end + 4096, L2_SIZE)
        cpu = Cpu(isa=isa, mem=Memory(size), engine=mode)
        if quant == "shift":
            out = kernel.run(w, x, shift=7, cpu=cpu)
        else:
            out = kernel.run(
                w, x, thresholds=thresholds_from_accumulators(acc, bits),
                cpu=cpu)
        states.append((out.output.tolist(), state_of(cpu)))
    return states


@pytest.mark.parametrize("bits,isa,quant", [
    (8, "ri5cy", "shift"),
    (8, "xpulpnn", "shift"),
    (4, "xpulpnn", "hw"),
    (4, "xpulpnn", "sw"),
    (4, "ri5cy", "sw"),
    (2, "xpulpnn", "hw"),
    (2, "xpulpnn", "sw"),
    (2, "ri5cy", "sw"),
])
def test_conv_kernel_parity(bits, isa, quant):
    interp, block = _conv_states(bits, isa, quant)
    assert interp[0] == block[0], "kernel output diverged"
    for key in interp[1]:
        assert interp[1][key] == block[1][key], f"diverged on {key}"


@pytest.mark.parametrize("kernel", ["conv_4bit", "matmul_4bit"])
def test_profile_kernel_parity(kernel):
    """The profiler's full region/stall breakdown is engine-invariant.

    CI repeats this over the whole catalog (the engine-parity job);
    tier-1 pins one conv and one matmul.
    """
    from repro.trace.profile import profile_kernel

    results = {}
    for mode in ("interp", "block"):
        set_default_mode(mode)
        results[mode] = profile_kernel(kernel).to_dict()
    set_default_mode(None)
    assert results["interp"] == results["block"]


def test_profiled_span_attribution_parity():
    """profile_spans attribution survives fused execution (the span mask
    splits a fused body's closed-form cycles exactly)."""
    from repro.asm import assemble

    source = """
        addi s0, zero, 0x40
        lp.setupi 0, 12, end0
        p.lw a0, 4(s0!)
        add a1, a1, a0
    end0:
        addi a2, a2, 1
        ebreak
    """
    states = []
    for mode in ("interp", "block"):
        program = assemble(source, isa="xpulpnn")
        cpu = Cpu(isa="xpulpnn", engine=mode)
        base = program.base
        cpu.load_program(program)
        cpu.profile_spans = [(base + 8, base + 16)]
        cpu.run()
        states.append((cpu.profiled_cycles, state_of(cpu)))
    assert states[0][0] > 0
    assert states[0] == states[1]
