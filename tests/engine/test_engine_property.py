"""Property-based dispatch parity: random programs, both engines.

Hypothesis generates small programs over the fusable instruction mix —
straight-line ALU/memory runs, hardware loops (zero-trip, single-
instruction bodies, nested lp0/lp1), forward branches, and mid-body
``ebreak`` — and asserts the block engine retires them bit- and
cycle-identically to the interpreter.  The generator deliberately
includes instructions the fuser declines (``mul``, misaligned and
register-offset accesses) so side exits and partial-block flushes get
the same coverage as the happy path.
"""

from hypothesis import given, settings, strategies as st

from tests.engine.conftest import run_both

#: Data registers the generated ops read/write freely.
DATA_REGS = ("a0", "a1", "a2", "a3", "a4", "a5")
#: Pointer registers: only post-increment ops may move them, by small
#: steps, so every generated access stays inside the 512 KiB memory.
PTR_REGS = ("s0", "s1")
PTR_BASES = {"s0": 0x8000, "s1": 0x9000}

ALU_RR = ("add", "sub", "xor", "or", "and", "sll", "srl", "sra",
          "slt", "sltu", "mul")

data_reg = st.sampled_from(DATA_REGS)
ptr_reg = st.sampled_from(PTR_REGS)


def _fmt_alu(draw):
    mn = draw(st.sampled_from(ALU_RR))
    return f"{mn} {draw(data_reg)}, {draw(data_reg)}, {draw(data_reg)}"


def _fmt_addi(draw):
    return (f"addi {draw(data_reg)}, {draw(data_reg)}, "
            f"{draw(st.integers(-16, 16))}")


def _fmt_ptr_bump(draw):
    reg = draw(ptr_reg)
    return f"addi {reg}, {reg}, {draw(st.integers(-8, 8))}"


def _fmt_lui(draw):
    return f"lui {draw(data_reg)}, {draw(st.integers(0, 64))}"


def _fmt_load(draw):
    mn = draw(st.sampled_from(("lw", "lh", "lhu", "lb", "lbu")))
    off = draw(st.integers(0, 16))       # any alignment: misaligned too
    return f"{mn} {draw(data_reg)}, {off}({draw(ptr_reg)})"


def _fmt_load_post(draw):
    mn = draw(st.sampled_from(("p.lw", "p.lh", "p.lb")))
    return (f"{mn} {draw(data_reg)}, "
            f"{draw(st.integers(-8, 8))}({draw(ptr_reg)}!)")


def _fmt_store(draw):
    mn = draw(st.sampled_from(("sw", "sh", "sb")))
    off = draw(st.integers(0, 16))
    return f"{mn} {draw(data_reg)}, {off}({draw(ptr_reg)})"


def _fmt_store_post(draw):
    mn = draw(st.sampled_from(("p.sw", "p.sh", "p.sb")))
    return (f"{mn} {draw(data_reg)}, "
            f"{draw(st.integers(-8, 8))}({draw(ptr_reg)}!)")


def _fmt_dotp(draw):
    mn = draw(st.sampled_from(
        ("pv.dotsp.b", "pv.dotup.b", "pv.sdotsp.b", "pv.sdotup.b",
         "pv.dotsp.h", "pv.sdotsp.h")))
    return f"{mn} {draw(data_reg)}, {draw(data_reg)}, {draw(data_reg)}"


_OP_MAKERS = (_fmt_alu, _fmt_addi, _fmt_ptr_bump, _fmt_lui, _fmt_load,
              _fmt_load_post, _fmt_store, _fmt_store_post, _fmt_dotp)


@st.composite
def body_ops(draw, min_size=1, max_size=6, allow_ebreak=False):
    """A list of assembly lines drawn from the fusable op mix."""
    size = draw(st.integers(min_size, max_size))
    ops = [draw(st.sampled_from(_OP_MAKERS))(draw) for _ in range(size)]
    if allow_ebreak and draw(st.booleans()) and size > 1:
        ops[draw(st.integers(0, size - 1))] = "ebreak"
    return ops


@st.composite
def initial_regs(draw):
    regs = {r: draw(st.integers(0, 0xFFFFFFFF)) for r in DATA_REGS}
    regs.update(PTR_BASES)
    return regs


@st.composite
def initial_mem(draw):
    data = draw(st.binary(min_size=64, max_size=64))
    return {0x8000: data, 0x9000: data[::-1]}


def _assemble_lines(lines):
    return "\n".join(lines) + "\n"


@settings(max_examples=60, deadline=None)
@given(ops=body_ops(max_size=8), regs=initial_regs(), mem=initial_mem())
def test_straight_line_parity(ops, regs, mem):
    run_both(_assemble_lines(ops + ["ebreak"]), regs=regs, mem=mem)


@settings(max_examples=60, deadline=None)
@given(ops=body_ops(allow_ebreak=True), count=st.integers(0, 7),
       level=st.integers(0, 1), regs=initial_regs(), mem=initial_mem())
def test_single_loop_parity(ops, count, level, regs, mem):
    """One hardware loop: zero-trip, single-op bodies, either level,
    possibly halting mid-body."""
    lines = [f"lp.setupi {level}, {count}, end{level}"]
    lines += ops[:-1]
    lines += [f"end{level}:", ops[-1], "ebreak"]
    run_both(_assemble_lines(lines), regs=regs, mem=mem)


@settings(max_examples=40, deadline=None)
@given(inner=body_ops(max_size=4), outer_tail=body_ops(max_size=3),
       n_outer=st.integers(0, 4), n_inner=st.integers(0, 5),
       regs=initial_regs(), mem=initial_mem())
def test_nested_loop_parity(inner, outer_tail, n_outer, n_inner, regs, mem):
    """lp1 wrapping lp0: the inner body fuses, the outer back-edge and
    re-setup run on the fast-block/interpreter tiers."""
    lines = [f"lp.setupi 1, {n_outer}, end1",
             f"lp.setupi 0, {n_inner}, end0"]
    lines += inner[:-1]
    lines += ["end0:", inner[-1]]
    lines += outer_tail[:-1]
    lines += ["end1:", outer_tail[-1], "ebreak"]
    run_both(_assemble_lines(lines), regs=regs, mem=mem)


@settings(max_examples=40, deadline=None)
@given(ops=body_ops(max_size=6), skip=st.integers(1, 3),
       regs=initial_regs(), mem=initial_mem())
def test_branch_parity(ops, skip, regs, mem):
    """A forward branch mid-program: terminators stay interpreter steps
    and block re-entry lands on the branch target."""
    cut = min(skip, len(ops))
    lines = list(ops)
    lines.insert(0, "bne a0, a1, skip")
    label_at = min(cut, len(lines) - 1) + 1
    lines.insert(label_at, "skip:")
    lines.append("ebreak")
    run_both(_assemble_lines(lines), regs=regs, mem=mem)


@settings(max_examples=25, deadline=None)
@given(ops=body_ops(min_size=2, max_size=5), count=st.integers(2, 6),
       budget=st.integers(3, 40), regs=initial_regs(), mem=initial_mem())
def test_budget_parity(ops, count, budget, regs, mem):
    """A max_instructions ceiling that may land mid-loop: both engines
    raise the identical SimError (or both halt) at the same state."""
    lines = [f"lp.setupi 0, {count}, end0"]
    lines += ops[:-1]
    lines += ["end0:", ops[-1], "ebreak"]
    run_both(_assemble_lines(lines), regs=regs, mem=mem,
             max_instructions=budget)
