"""Shared harness for the translation-engine tests.

Every test here compares the block engine against the interpreter on the
*complete* observable state: halt reason, pc, all 32 registers, the full
PerfCounters snapshot, profiled cycles, the load-use pipeline residue,
hardware-loop state, and every byte of data memory.  Parity is the
engine's contract — any divergence is a bug, never a tolerance.
"""

import pytest

from repro.asm import assemble
from repro.core import Cpu
from repro.engine import set_default_mode
from repro.engine.blocks import GLOBAL_CACHE
from repro.isa.registers import parse_register


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    """Isolate the process-wide engine default and translated-block cache."""
    set_default_mode(None)
    GLOBAL_CACHE.clear()
    yield
    set_default_mode(None)
    GLOBAL_CACHE.clear()


def state_of(cpu):
    """The complete observable machine state after a run."""
    return {
        "halted": cpu.halted,
        "pc": cpu.pc,
        "regs": list(cpu.regs),
        "perf": cpu.perf.snapshot(),
        "profiled_cycles": cpu.profiled_cycles,
        "pending_load": cpu.timing._pending_load_rd,
        "hwloops": (list(cpu.hwloops.start), list(cpu.hwloops.end),
                    list(cpu.hwloops.count)),
        "mem": bytes(cpu.mem._data),
    }


def _run_one(program, mode, *, isa, regs, mem, max_instructions):
    cpu = Cpu(isa=isa, engine=mode)
    for addr, data in (mem or {}).items():
        cpu.mem.write_bytes(addr, data)
    cpu.load_program(program)
    for name, value in (regs or {}).items():
        cpu.regs[parse_register(name)] = value & 0xFFFFFFFF
    error = None
    try:
        cpu.run(max_instructions=max_instructions)
    except Exception as exc:                      # noqa: BLE001 - compared
        error = (type(exc).__name__, str(exc))
    return cpu, error


def run_both(source, *, isa="xpulpnn", regs=None, mem=None,
             max_instructions=200_000):
    """Run *source* on a fresh interpreter core and a fresh block-engine
    core; assert bit- and cycle-identical outcomes (including identical
    exceptions) and return ``(interp_cpu, block_cpu)``."""
    program = assemble(source, isa=isa)
    interp, interp_err = _run_one(program, "interp", isa=isa, regs=regs,
                                  mem=mem, max_instructions=max_instructions)
    block, block_err = _run_one(program, "block", isa=isa, regs=regs,
                                mem=mem, max_instructions=max_instructions)
    assert interp_err == block_err, (
        f"engines diverged on outcome: interp={interp_err} "
        f"block={block_err}")
    istate, bstate = state_of(interp), state_of(block)
    for key in istate:
        assert istate[key] == bstate[key], (
            f"engines diverged on {key}: interp={istate[key]!r} "
            f"block={bstate[key]!r}")
    return interp, block
