"""Typed job model: canonical serialization, round-trips, sweeps."""

import json

import pytest

from repro.errors import ReproError
from repro.serve import (
    JOB_KINDS,
    CompileJob,
    ConvPointJob,
    JobFailure,
    JobResult,
    ProfileJob,
    ScalingJob,
    SelfTestJob,
    ServeError,
    SweepJob,
    cartesian_sweep,
    job_from_dict,
    result_from_dict,
)


class TestJobModel:
    def test_every_kind_registered(self):
        assert set(JOB_KINDS) == {
            "profile", "compile", "scaling", "specpoint", "convpoint",
            "cost", "selftest", "sweep",
        }

    def test_canonical_is_stable_json(self):
        job = ScalingJob(bits=4, cores=2, out_ch=32, reduction=64)
        text = job.canonical()
        assert json.loads(text) == job.to_dict()
        # Canonical form: sorted keys, no whitespace.
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  separators=(",", ":"))

    def test_digest_depends_on_every_field(self):
        base = ScalingJob(bits=4, cores=2, out_ch=32, reduction=64)
        variants = [
            ScalingJob(bits=8, cores=2, out_ch=32, reduction=64),
            ScalingJob(bits=4, cores=4, out_ch=32, reduction=64),
            ScalingJob(bits=4, cores=2, out_ch=64, reduction=64),
            ScalingJob(bits=4, cores=2, out_ch=32, reduction=128),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 5

    @pytest.mark.parametrize("job", [
        ProfileJob(kernel="matmul_4bit", target="ri5cy", trace=True),
        CompileJob(network="over-l2", cores=4, tcdm_budget=32768),
        ScalingJob(bits=2, cores=8, out_ch=64, reduction=128),
        ConvPointJob(bits=4, quant="sw", geometry=(6, 6, 16, 8, 3, 3, 1, 1)),
        SelfTestJob(mode="sleep", duration=0.5),
    ])
    def test_dict_round_trip(self, job):
        clone = job_from_dict(json.loads(job.canonical()))
        assert clone == job
        assert clone.digest() == job.digest()

    def test_sweep_round_trip_rebuilds_typed_points(self):
        sweep = SweepJob(points=(ScalingJob(bits=4, cores=1),
                                 SelfTestJob(mode="ok")), label="x")
        clone = job_from_dict(json.loads(sweep.canonical()))
        assert clone == sweep
        assert isinstance(clone.points[0], ScalingJob)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            job_from_dict({"kind": "teapot"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown fields"):
            job_from_dict({"kind": "scaling", "bits": 4, "volume": 11})

    def test_non_dict_rejected(self):
        with pytest.raises(ServeError, match="must be an object"):
            job_from_dict([1, 2, 3])


class TestValidation:
    def test_profile_unknown_kernel(self):
        with pytest.raises(ServeError, match="unknown kernel"):
            ProfileJob(kernel="conv_5bit").validate()

    def test_profile_cost_model_target_rejected(self):
        with pytest.raises(ServeError, match="cost-model baseline"):
            ProfileJob(target="stm32h7").validate()

    def test_compile_unknown_network(self):
        with pytest.raises(ServeError, match="unknown network"):
            CompileJob(network="resnet-9000").validate()

    def test_scaling_impossible_shard(self):
        # 2-bit needs four output channels per core.
        with pytest.raises(ReproError):
            ScalingJob(bits=2, cores=8, out_ch=8, reduction=64).validate()

    def test_convpoint_quant_rules(self):
        with pytest.raises(ServeError, match="shift"):
            ConvPointJob(bits=8, quant="hw").validate()
        with pytest.raises(ServeError, match="pv.qnt"):
            ConvPointJob(bits=4, quant="hw", target="ri5cy").validate()
        ConvPointJob(bits=4, quant="sw", target="ri5cy").validate()

    def test_selftest_mode(self):
        with pytest.raises(ServeError, match="unknown selftest mode"):
            SelfTestJob(mode="explode").validate()

    def test_sweeps_do_not_nest(self):
        inner = SweepJob(points=(SelfTestJob(),))
        with pytest.raises(ServeError, match="nest"):
            SweepJob(points=(inner,)).validate()


class TestCartesianSweep:
    def test_expansion_covers_grid(self):
        sweep = cartesian_sweep(
            "scaling", {"bits": [8, 4], "cores": [1, 2, 4]},
            base={"out_ch": 32, "reduction": 64})
        assert len(sweep.points) == 6
        assert {(p.bits, p.cores) for p in sweep.points} == {
            (b, c) for b in (8, 4) for c in (1, 2, 4)}
        assert all(p.out_ch == 32 for p in sweep.points)

    def test_invalid_point_raises_by_default(self):
        with pytest.raises(ReproError):
            cartesian_sweep("scaling", {"bits": [2], "cores": [8]},
                            base={"out_ch": 8, "reduction": 64})

    def test_skip_invalid_drops_points(self):
        sweep = cartesian_sweep("scaling", {"bits": [2], "cores": [1, 2, 8]},
                                base={"out_ch": 8, "reduction": 64},
                                skip_invalid=True)
        assert [p.cores for p in sweep.points] == [1, 2]

    def test_sweep_over_sweep_rejected(self):
        with pytest.raises(ServeError):
            cartesian_sweep("sweep", {"label": ["a"]})


class TestResults:
    def test_result_round_trip(self):
        result = JobResult(job=SelfTestJob(value=7), payload={"value": 7},
                           cached=True, elapsed_s=0.25, worker=3,
                           artifacts={"trace.json": "/tmp/t.json"})
        clone = result_from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.ok and clone.cached

    def test_failure_round_trip(self):
        failure = JobFailure.from_exception(
            SelfTestJob(mode="raise"), ServeError("on request"), worker=1)
        clone = result_from_dict(json.loads(json.dumps(failure.to_dict())))
        assert clone == failure
        assert not clone.ok
        assert clone.error_type == "ServeError"
        assert "on request" in clone.message

    def test_artifact_payloads_never_serialized(self):
        result = JobResult(job=SelfTestJob(), payload={},
                           artifact_payloads={"trace.json": {"big": 1}})
        assert "artifact_payloads" not in result.to_dict()
        # ... and doesn't participate in equality either.
        assert result == JobResult(job=SelfTestJob(), payload={})
