"""SimulationService: dedupe, cache wiring, reports, eval clients."""

import pytest

from repro.serve import (
    ProfileJob,
    ResultCache,
    ScalingJob,
    SelfTestJob,
    ServeError,
    SimulationService,
    SweepJob,
)


class TestDedupe:
    def test_identical_points_simulate_once(self, tmp_path):
        job = ScalingJob(bits=4, cores=1, out_ch=32, reduction=64)
        report = SimulationService().run([job, job, job])
        assert report.ok
        assert report.stats["executed"] == 1
        assert report.stats["deduped"] == 2
        payloads = [r.payload for r in report.results]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_uncacheable_points_never_dedupe(self):
        job = SelfTestJob(mode="ok")
        report = SimulationService().run([job, job])
        assert report.stats["executed"] == 2
        assert report.stats["deduped"] == 0

    def test_deduped_failure_fans_out(self):
        job = ScalingJob(bits=2, cores=8, out_ch=8, reduction=64)
        report = SimulationService().run([job, job])
        assert not report.ok
        assert len(report.failures) == 2
        assert report.stats["executed"] == 1
        assert report.stats["failed"] == 2


class TestSweepApi:
    def test_submit_single_job(self):
        outcome = SimulationService().submit(SelfTestJob(value=9))
        assert outcome.ok
        assert outcome.payload["value"] == 9

    def test_submit_rejects_sweep(self):
        with pytest.raises(ServeError, match="sweep"):
            SimulationService().submit(SweepJob(points=(SelfTestJob(),)))

    def test_nested_sweep_rejected(self):
        inner = SweepJob(points=(SelfTestJob(),))
        with pytest.raises(ServeError, match="nest"):
            SimulationService().run([inner])

    def test_sweep_validates_points_first(self):
        sweep = SweepJob(points=(SelfTestJob(mode="explode"),))
        with pytest.raises(ServeError, match="unknown selftest mode"):
            SimulationService().sweep(sweep)

    def test_report_round_trip(self):
        report = SimulationService().sweep(SweepJob(
            points=(SelfTestJob(value=1), SelfTestJob(mode="raise")),
            label="mixed"))
        data = report.to_dict()
        assert data["label"] == "mixed"
        assert [r["status"] for r in data["results"]] == ["ok", "failed"]
        text = report.render()
        assert "mixed" in text and "FAILED" in text

    def test_progress_indices_span_whole_batch(self, tmp_path):
        job = ScalingJob(bits=4, cores=1, out_ch=32, reduction=64)
        service = SimulationService(cache=ResultCache(tmp_path / "c"))
        service.run([job])
        events = []
        service.progress = events.append
        report = service.run([job, SelfTestJob(value=5)])
        assert report.ok
        # Index 0 is the cache hit, index 1 the executed selftest.
        assert [(e.phase, e.index) for e in events] == [
            ("cached", 0), ("start", 1), ("done", 1)]
        assert all(e.total == 2 for e in events)


class TestCacheArtifacts:
    def test_trace_artifact_persisted_and_served(self, tmp_path):
        import json

        service = SimulationService(cache=ResultCache(tmp_path / "c"))
        job = ProfileJob(kernel="matmul_4bit", trace=True)
        first = service.submit(job)
        assert first.ok and not first.cached
        assert "trace.json" in first.artifacts
        payload = json.loads(open(first.artifacts["trace.json"]).read())
        assert payload["traceEvents"]
        second = service.submit(job)
        assert second.cached
        assert second.artifacts == first.artifacts


class TestEvalClients:
    """The rewired harnesses stay bit-identical through the service."""

    def test_cluster_scaling_through_pool_matches_inline(self, tmp_path):
        from repro.eval import cluster_scaling

        inline = cluster_scaling.run(out_ch=32, reduction=64)
        pooled = cluster_scaling.run(
            out_ch=32, reduction=64,
            service=SimulationService(cache=ResultCache(tmp_path / "c"),
                                      workers=2))
        assert pooled.to_dict() == inline.to_dict()

    def test_fig6_through_service_matches_default(self, tmp_path):
        from repro.eval import fig6

        default = fig6.run()
        served = fig6.run(service=SimulationService(
            cache=ResultCache(tmp_path / "c")))
        assert served.cycles == default.cycles
        assert served.quant_cycles == default.quant_cycles

    def test_cluster_scaling_failure_raises_repro_error(self):
        from repro.errors import ReproError
        from repro.eval import cluster_scaling

        class Broken:
            workers = 0

            def run(self, jobs, label=""):
                from repro.serve import JobFailure, SweepReport

                return SweepReport(results=[
                    JobFailure(job=j, error_type="WorkerCrash",
                               message="died") for j in jobs])

        with pytest.raises(ReproError, match="WorkerCrash"):
            cluster_scaling.run(out_ch=32, reduction=64, service=Broken())
