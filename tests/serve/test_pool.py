"""Worker pool: sharding, order, and the three failure isolations."""

import pytest

from repro.serve import (
    JobFailure,
    ProgressEvent,
    ScalingJob,
    SelfTestJob,
    run_jobs,
)


class TestInline:
    def test_results_preserve_submission_order(self):
        jobs = [SelfTestJob(value=i) for i in range(5)]
        results = run_jobs(jobs)
        assert [r.payload["value"] for r in results] == list(range(5))

    def test_raise_becomes_typed_failure(self):
        ok, bad, after = run_jobs([
            SelfTestJob(value=1),
            SelfTestJob(mode="raise", value=2),
            SelfTestJob(value=3),
        ])
        assert ok.ok and after.ok
        assert isinstance(bad, JobFailure)
        assert bad.error_type == "ServeError"
        assert "value=2" in bad.message
        assert "Traceback" in bad.traceback

    def test_progress_stream(self):
        events = []
        run_jobs([SelfTestJob(), SelfTestJob(mode="raise")],
                 progress=events.append)
        phases = [(e.phase, e.index) for e in events]
        assert phases == [("start", 0), ("done", 0),
                          ("start", 1), ("failed", 1)]
        assert all(isinstance(e, ProgressEvent) for e in events)
        assert events[0].total == 2


class TestPool:
    def test_pool_matches_inline_results(self):
        jobs = [ScalingJob(bits=4, cores=n, out_ch=32, reduction=64)
                for n in (1, 2)]
        inline = run_jobs(jobs)
        pooled = run_jobs(jobs, workers=2)
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert a.payload == b.payload

    def test_raise_is_isolated(self):
        results = run_jobs([
            SelfTestJob(value=1),
            SelfTestJob(mode="raise"),
            SelfTestJob(value=3),
        ], workers=2)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "ServeError"

    def test_crash_is_isolated(self):
        """A worker dying mid-job (os._exit) never kills the sweep."""
        results = run_jobs([
            SelfTestJob(value=1),
            SelfTestJob(mode="crash", value=13),
            SelfTestJob(value=3),
        ], workers=2)
        assert [r.ok for r in results] == [True, False, True]
        crash = results[1]
        assert crash.error_type == "WorkerCrash"
        assert "exit code 13" in crash.message
        assert crash.worker > 0

    def test_timeout_is_isolated(self):
        results = run_jobs([
            SelfTestJob(value=1),
            SelfTestJob(mode="sleep", duration=60.0),
            SelfTestJob(value=3),
        ], workers=3, timeout=1.0)
        assert [r.ok for r in results] == [True, False, True]
        hang = results[1]
        assert hang.error_type == "JobTimeout"
        assert hang.elapsed_s < 30  # terminated, not joined

    def test_more_jobs_than_workers(self):
        jobs = [SelfTestJob(value=i) for i in range(9)]
        results = run_jobs(jobs, workers=2)
        assert [r.payload["value"] for r in results] == list(range(9))
        workers = {r.worker for r in results}
        assert all(w > 0 for w in workers)

    def test_progress_reports_worker_pids(self):
        events = []
        run_jobs([SelfTestJob(), SelfTestJob()], workers=2,
                 progress=events.append)
        done = [e for e in events if e.phase == "done"]
        assert len(done) == 2
        assert all(e.worker > 0 for e in done)


@pytest.mark.slow
class TestPoolSpeedup:
    """Sharding a latency-bound sweep must approach linear speedup."""

    def test_eight_workers_at_least_4x(self):
        import time

        jobs = [SelfTestJob(mode="sleep", duration=0.25, value=i)
                for i in range(32)]
        start = time.perf_counter()
        serial = run_jobs(jobs)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        sharded = run_jobs(jobs, workers=8)
        sharded_s = time.perf_counter() - start
        assert all(r.ok for r in serial) and all(r.ok for r in sharded)
        assert serial_s / sharded_s >= 4.0
