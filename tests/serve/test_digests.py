"""Digest foundations: stable identities for specs, programs, networks.

The content-addressed cache is only sound if every digest it hashes is
stable across processes and sensitive to every semantic change.  The
cross-process tests run the digest in a fresh interpreter (new hash
seed, new import order) and require the same answer.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.asm import Assembler
from repro.serve import (
    ProfileJob,
    ScalingJob,
    array_digest,
    cache_key_parts,
    canonical_json,
    digest_of,
    network_digest,
)
from repro.target import get_target
from repro.target.names import RI5CY, XPULPNN

SOURCE = """
    li   a0, 0
    li   t0, 4
loop:
    addi a0, a0, 3
    addi t0, t0, -1
    bne  t0, zero, loop
    ebreak
"""


REPO_ROOT = Path(__file__).resolve().parents[2]


def _fresh_interpreter(snippet: str) -> str:
    """Run *snippet* in a new python and return its stripped stdout."""
    env = dict(os.environ,
               PYTHONPATH=str(REPO_ROOT / "src"),
               PYTHONHASHSEED="random")
    result = subprocess.run(
        [sys.executable, "-c", snippet], capture_output=True, text=True,
        env=env, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1})

    def test_no_whitespace_ascii_only(self):
        text = canonical_json({"k": ["µ", 1.5]})
        assert " " not in text
        assert text.isascii()

    def test_nan_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="not canonically"):
            canonical_json({"x": float("nan")})

    def test_digest_of_is_sha256_hex(self):
        digest = digest_of({"a": 1})
        assert len(digest) == 64
        assert int(digest, 16) >= 0


class TestTargetSpecDigest:
    def test_distinct_targets_distinct_digests(self):
        assert get_target(XPULPNN).digest() != get_target(RI5CY).digest()

    def test_digest_tracks_spec_content(self):
        import dataclasses

        spec = get_target(XPULPNN)
        bumped = dataclasses.replace(spec, l2_bytes=spec.l2_bytes * 2)
        assert bumped.digest() != spec.digest()

    def test_cross_process_stability(self):
        expected = get_target(XPULPNN).digest()
        got = _fresh_interpreter(
            "from repro.target import get_target\n"
            "from repro.target.names import XPULPNN\n"
            "print(get_target(XPULPNN).digest())")
        assert got == expected


class TestProgramDigest:
    def test_same_source_same_digest(self):
        asm = Assembler(isa="xpulpnn")
        assert asm.assemble(SOURCE).digest() == \
            asm.assemble(SOURCE).digest()

    def test_code_change_changes_digest(self):
        asm = Assembler(isa="xpulpnn")
        assert asm.assemble(SOURCE).digest() != \
            asm.assemble(SOURCE.replace("addi a0, a0, 3",
                                        "addi a0, a0, 4")).digest()

    def test_base_address_changes_digest(self):
        a = Assembler(isa="xpulpnn").assemble(SOURCE)
        b = Assembler(isa="xpulpnn", base=0x100).assemble(SOURCE)
        assert a.digest() != b.digest()

    def test_cross_process_stability(self):
        expected = Assembler(isa="xpulpnn").assemble(SOURCE).digest()
        got = _fresh_interpreter(
            "from repro.asm import Assembler\n"
            f"print(Assembler(isa='xpulpnn').assemble({SOURCE!r}).digest())")
        assert got == expected


class TestArrayAndNetworkDigest:
    def test_array_digest_covers_dtype_and_shape(self):
        data = np.arange(12, dtype=np.int32)
        assert array_digest(data) != array_digest(data.astype(np.int8))
        assert array_digest(data) != array_digest(data.reshape(3, 4))
        assert array_digest(data) == array_digest(data.copy())

    def test_network_digest_tracks_weights(self):
        from repro.compiler import build_network

        built = build_network("mixed3")
        base = network_digest(built)
        assert base == network_digest(build_network("mixed3"))
        built.network.layers[0].weights[0, 0, 0, 0] += 1
        assert network_digest(built) != base

    def test_cross_process_stability(self):
        from repro.compiler import build_network

        expected = network_digest(build_network("mixed3"))
        got = _fresh_interpreter(
            "from repro.compiler import build_network\n"
            "from repro.serve import network_digest\n"
            "print(network_digest(build_network('mixed3')))")
        assert got == expected


class TestCacheKeyParts:
    def test_parts_name_all_three_digests(self):
        parts = cache_key_parts(ScalingJob(bits=4, cores=1, out_ch=32,
                                           reduction=64))
        assert set(parts) == {"schema", "kind", "spec", "program", "config"}
        assert parts["kind"] == "scaling"

    def test_key_tracks_target_spec(self):
        a = cache_key_parts(ProfileJob(kernel="conv_4bit", target=XPULPNN))
        b = cache_key_parts(ProfileJob(kernel="conv_4bit", target=RI5CY))
        assert a["spec"] != b["spec"]
        assert digest_of(a) != digest_of(b)

    def test_key_tracks_kernel_program(self):
        a = cache_key_parts(ProfileJob(kernel="matmul_4bit"))
        b = cache_key_parts(ProfileJob(kernel="matmul_8bit"))
        assert a["program"] != b["program"]

    def test_cross_process_stability(self):
        job = ScalingJob(bits=4, cores=2, out_ch=32, reduction=64)
        expected = digest_of(cache_key_parts(job))
        got = _fresh_interpreter(
            "from repro.serve import ScalingJob, cache_key_parts, "
            "digest_of\n"
            "job = ScalingJob(bits=4, cores=2, out_ch=32, reduction=64)\n"
            "print(digest_of(cache_key_parts(job)))")
        assert got == expected
