"""Result cache: hits are bit-identical, corruption is self-healing."""

import json
import os

import pytest

from repro.serve import (
    CACHE_SCHEMA,
    ResultCache,
    ScalingJob,
    SelfTestJob,
    SimulationService,
    cache_key,
    cache_key_parts,
    open_cache,
)

PARTS = {"schema": CACHE_SCHEMA, "kind": "test", "spec": "s",
         "program": "p", "config": "c"}
PAYLOAD = {"cycles": 1234, "nested": {"list": [1, 2, 3]}}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestStoreLoad:
    def test_round_trip_bit_identical(self, cache):
        key = cache_key(PARTS)
        cache.put(key, PARTS, PAYLOAD)
        loaded = cache.get(key)
        assert loaded == PAYLOAD
        assert json.dumps(loaded, sort_keys=True) == \
            json.dumps(PAYLOAD, sort_keys=True)
        assert cache.stats() == {"hits": 1, "misses": 0, "evictions": 0,
                                 "pruned": 0}

    def test_cold_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_entry_is_sharded_by_prefix(self, cache):
        key = cache_key(PARTS)
        path = cache.put(key, PARTS, PAYLOAD)
        assert path.parent.name == key[:2]

    def test_distinct_parts_distinct_keys(self):
        keys = {cache_key({**PARTS, field: "changed"}) for field in PARTS}
        keys.add(cache_key(PARTS))
        assert len(keys) == len(PARTS) + 1


class TestCorruption:
    def _stored(self, cache):
        key = cache_key(PARTS)
        path = cache.put(key, PARTS, PAYLOAD)
        return key, path

    def test_unreadable_json_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_text("{ not json")
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats()["evictions"] == 1

    def test_payload_tamper_evicted(self, cache):
        key, path = self._stored(cache)
        entry = json.loads(path.read_text())
        entry["payload"]["cycles"] = 9999  # checksum now stale
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert not path.exists()

    def test_schema_drift_evicted(self, cache):
        key, path = self._stored(cache)
        entry = json.loads(path.read_text())
        entry["schema"] = "repro-cache/0"
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_key_mismatch_evicted(self, cache):
        key, path = self._stored(cache)
        other = "f" * 64
        target = cache.entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert cache.get(other) is None

    def test_eviction_removes_artifacts(self, cache):
        key, path = self._stored(cache)
        artifact = cache.write_artifact(key, "trace.json", {"ev": []})
        path.write_text("broken")
        cache.get(key)
        assert not artifact.exists()

    def test_recompute_after_eviction(self, cache):
        key, path = self._stored(cache)
        path.write_text("broken")
        assert cache.get(key) is None
        cache.put(key, PARTS, PAYLOAD)
        assert cache.get(key) == PAYLOAD


class TestArtifacts:
    def test_named_artifacts_round_trip(self, cache):
        key = cache_key(PARTS)
        cache.write_artifact(key, "trace.json", {"traceEvents": []})
        cache.write_artifact(key, "notes.txt", "hello")
        found = cache.artifacts_for(key)
        assert sorted(found) == ["notes.txt", "trace.json"]
        assert json.loads(open(found["trace.json"]).read()) == {
            "traceEvents": []}

    def test_path_escape_rejected(self, cache):
        from repro.serve import ServeError

        with pytest.raises(ServeError):
            cache.write_artifact("k" * 64, "../escape", {})
        with pytest.raises(ServeError):
            cache.write_artifact("k" * 64, ".hidden", {})


class TestBounding:
    """LRU pruning: hits refresh the access clock, cold entries age out."""

    def _populate(self, cache, count=3):
        keys = []
        for i in range(count):
            parts = {**PARTS, "config": f"c{i}"}
            key = cache_key(parts)
            path = cache.put(key, parts, {"value": i})
            # Stamp distinct, strictly increasing access times so LRU
            # order is deterministic regardless of filesystem clock
            # resolution.
            os.utime(path, (1000 + i, 1000 + i))
            keys.append(key)
        return keys

    def test_entries_sorted_oldest_access_first(self, cache):
        keys = self._populate(cache)
        assert [p.stem for p in cache.entries()] == keys

    def test_disk_stats_counts_entries_and_artifacts(self, cache):
        keys = self._populate(cache, count=2)
        before = cache.disk_stats()
        cache.write_artifact(keys[0], "trace.json", {"traceEvents": []})
        after = cache.disk_stats()
        assert before["entries"] == after["entries"] == 2
        assert after["bytes"] > before["bytes"]

    def test_prune_evicts_oldest_first(self, cache):
        keys = self._populate(cache)
        budget = cache._entry_bytes(cache.entry_path(keys[2]))
        outcome = cache.prune(budget)
        assert outcome["removed"] == 2
        assert outcome["bytes_kept"] <= budget
        assert cache.get(keys[2]) == {"value": 2}
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None

    def test_hit_refreshes_access_clock(self, cache):
        keys = self._populate(cache)
        assert cache.get(keys[0]) == {"value": 0}   # warm the oldest
        budget = cache._entry_bytes(cache.entry_path(keys[0]))
        cache.prune(budget)
        # The just-hit entry survived; the unrefreshed ones aged out.
        assert cache.get(keys[0]) == {"value": 0}
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) is None

    def test_prune_removes_artifacts_with_entry(self, cache):
        keys = self._populate(cache, count=1)
        artifact = cache.write_artifact(keys[0], "trace.json", {"ev": 1})
        cache.prune(0)
        assert not artifact.exists()
        assert not cache.artifact_dir(keys[0]).exists()

    def test_prune_bookkeeping(self, cache):
        self._populate(cache)
        outcome = cache.prune(0)
        assert outcome["removed"] == 3
        assert outcome["bytes_kept"] == 0
        assert cache.stats()["pruned"] == 3
        assert cache.stats()["evictions"] == 3
        # Pruning under budget is a no-op.
        assert cache.prune(10**9)["removed"] == 0

    def test_negative_budget_rejected(self, cache):
        from repro.serve import ServeError

        with pytest.raises(ServeError):
            cache.prune(-1)

    def test_empty_store_prunes_cleanly(self, cache):
        assert cache.prune(0) == {"removed": 0, "bytes_freed": 0,
                                  "bytes_kept": 0}
        assert cache.disk_stats() == {"entries": 0, "bytes": 0}


class TestOpenCache:
    def test_disabled_returns_none(self):
        assert open_cache(enabled=False) is None

    def test_env_override(self, tmp_path, monkeypatch):
        from repro.serve import CACHE_ENV

        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "elsewhere"))
        cache = open_cache()
        assert cache.root == tmp_path / "elsewhere"

    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        from repro.serve import CACHE_ENV

        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "env"))
        cache = open_cache(str(tmp_path / "explicit"))
        assert cache.root == tmp_path / "explicit"


class TestServiceIntegration:
    """The acceptance criteria: identical sweep twice = 100% hits."""

    JOBS = [ScalingJob(bits=bits, cores=cores, out_ch=32, reduction=64)
            for bits in (8, 4) for cores in (1, 2)]

    def test_identical_rerun_all_hits_bit_identical(self, tmp_path):
        service = SimulationService(cache=ResultCache(tmp_path / "c"))
        first = service.run(self.JOBS, label="one")
        second = service.run(self.JOBS, label="two")
        assert first.ok and second.ok
        assert first.cached_count == 0
        assert second.cached_count == len(self.JOBS)
        assert second.stats["cache"]["hits"] == len(self.JOBS)
        for a, b in zip(first.results, second.results):
            assert a.payload == b.payload  # bit-identical via JSON ints

    def test_spec_or_config_change_misses(self, tmp_path):
        service = SimulationService(cache=ResultCache(tmp_path / "c"))
        job = ScalingJob(bits=4, cores=2, out_ch=32, reduction=64)
        service.run([job])
        report = service.run([ScalingJob(bits=4, cores=2, out_ch=32,
                                         reduction=128)])
        assert report.cached_count == 0

    def test_corrupt_entry_recomputed_through_service(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        service = SimulationService(cache=cache)
        job = ScalingJob(bits=4, cores=1, out_ch=32, reduction=64)
        first = service.run([job])
        key = cache_key(cache_key_parts(job))
        cache.entry_path(key).write_text("garbage")
        second = service.run([job])
        assert second.ok
        assert second.cached_count == 0          # recomputed...
        assert cache.stats()["evictions"] == 1   # ...after self-healing
        assert second.results[0].payload == first.results[0].payload
        third = service.run([job])
        assert third.cached_count == 1           # and cached again

    def test_uncacheable_jobs_bypass_cache(self, tmp_path):
        service = SimulationService(cache=ResultCache(tmp_path / "c"))
        job = SelfTestJob(mode="ok", value=3)
        service.run([job])
        report = service.run([job])
        assert report.cached_count == 0
        assert report.stats["cache"] == {"hits": 0, "misses": 0,
                                         "evictions": 0, "pruned": 0}
