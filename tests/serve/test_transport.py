"""Worker-transport audit: everything crossing a pipe survives the trip.

The pool ships plain JSON between processes, but the multiprocessing
machinery itself pickles job payloads, and in-process clients hold the
real objects — so every type that can reach a worker boundary must
pickle/unpickle faithfully: results, failures, progress events, perf
counters, compile plans, and the whole exception hierarchy (a raised
``TrapError`` used to *fail to unpickle* because its two-argument
``__init__`` didn't match the default exception reduce).
"""

import pickle

import pytest

from repro.core import Cpu
from repro.errors import (
    AsmError,
    KernelError,
    MemoryAccessError,
    ReproError,
    SimError,
    TargetError,
    TrapError,
)
from repro.serve import (
    JobFailure,
    JobResult,
    ProgressEvent,
    ScalingJob,
    SelfTestJob,
    ServeError,
    SweepJob,
)


def round_trip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestJobTransport:
    @pytest.mark.parametrize("job", [
        ScalingJob(bits=4, cores=2, out_ch=32, reduction=64),
        SelfTestJob(mode="sleep", duration=0.5),
        SweepJob(points=(SelfTestJob(), ScalingJob()), label="x"),
    ])
    def test_jobs(self, job):
        assert round_trip(job) == job

    def test_result(self):
        result = JobResult(job=SelfTestJob(value=7), payload={"value": 7},
                           elapsed_s=0.5, worker=42,
                           artifacts={"a": "/p"},
                           artifact_payloads={"a": {"x": 1}})
        clone = round_trip(result)
        assert clone == result
        assert clone.artifact_payloads == {"a": {"x": 1}}

    def test_failure(self):
        failure = JobFailure.from_exception(
            SelfTestJob(), TrapError("ebreak", 0x40))
        clone = round_trip(failure)
        assert clone == failure
        assert clone.error_type == "TrapError"

    def test_progress_event(self):
        event = ProgressEvent("done", 3, 10, "scaling", "ab" * 32,
                              elapsed_s=1.5, worker=99)
        assert round_trip(event) == event


class TestExceptionTransport:
    """Every library error a worker can raise must unpickle intact."""

    @pytest.mark.parametrize("exc", [
        ReproError("boom"),
        SimError("sim failed"),
        MemoryAccessError("bad load at 0x0"),
        AsmError("no such mnemonic"),
        KernelError("unsupported geometry"),
        TargetError("no such target"),
        ServeError("bad job"),
    ])
    def test_hierarchy(self, exc):
        clone = round_trip(exc)
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)

    def test_trap_error_keeps_fields(self):
        clone = round_trip(TrapError("illegal instruction", 0x1234))
        assert type(clone) is TrapError
        assert clone.cause == "illegal instruction"
        assert clone.pc == 0x1234
        assert str(clone) == str(TrapError("illegal instruction", 0x1234))

    def test_raised_trap_error_survives(self):
        """The regression the audit caught: pickle a *raised* trap."""
        try:
            raise TrapError("ecall", 0x80)
        except TrapError as exc:
            clone = round_trip(exc)
        assert (clone.cause, clone.pc) == ("ecall", 0x80)


class TestPerfCountersTransport:
    @pytest.fixture
    def perf(self):
        from repro.asm import assemble

        cpu = Cpu(isa="xpulpnn")
        cpu.load_program(assemble(
            "li t0, 3\nloop:\naddi t0, t0, -1\nbne t0, zero, loop\nebreak",
            isa="xpulpnn"))
        return cpu.run()

    def test_pickle_round_trip(self, perf):
        clone = round_trip(perf)
        assert clone.to_dict() == perf.to_dict()
        assert clone.cycles == perf.cycles

    def test_dict_round_trip(self, perf):
        from repro.core.perf import PerfCounters

        clone = PerfCounters.from_dict(perf.to_dict())
        assert clone.to_dict() == perf.to_dict()
        assert clone.ipc == perf.ipc

    def test_dict_round_trip_through_json(self, perf):
        import json

        from repro.core.perf import PerfCounters

        clone = PerfCounters.from_dict(
            json.loads(json.dumps(perf.to_dict())))
        assert clone.to_dict() == perf.to_dict()


class TestCompilePlanTransport:
    def test_compiled_network_pickles(self):
        from repro.compiler import NetworkCompiler, build_network

        built = build_network("mixed3")
        compiled = NetworkCompiler(
            built.network, built.input_shape, input_bits=built.input_bits,
            num_cores=4, tcdm_budget=built.tcdm_budget).compile()
        clone = round_trip(compiled)
        assert clone.to_dict() == compiled.to_dict()
        assert clone.total_tiles == compiled.total_tiles

    def test_target_spec_pickles(self):
        from repro.target import get_target
        from repro.target.names import XPULPNN

        spec = get_target(XPULPNN)
        clone = round_trip(spec)
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_program_pickles(self):
        from repro.asm import assemble

        program = assemble("addi a0, a0, 1\nebreak", isa="xpulpnn")
        clone = round_trip(program)
        assert clone.encode() == program.encode()
        assert clone.digest() == program.digest()
