"""Chrome-trace/Perfetto export: structure, validation, round-trip."""

import json

import pytest

from repro.asm import assemble
from repro.core import Cpu
from repro.errors import TraceError
from repro.trace import (
    EventTracer,
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.trace.perfetto import DMA_TID

SOURCE = """
.region warm
    li   a0, 6
.endregion
.region spin
spin:
    addi a0, a0, -1
    bnez a0, spin
.endregion
    ebreak
"""


@pytest.fixture
def tracer():
    program = assemble(SOURCE, isa="xpulpnn")
    t = EventTracer(program=program, default_region="code")
    cpu = Cpu(isa="xpulpnn")
    cpu.tracer = t
    cpu.load_program(program)
    cpu.run()
    return t


class TestChromeTrace:
    def test_payload_shape(self, tracer):
        payload = chrome_trace(tracer, title="unit")
        assert set(payload) >= {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"M", "X"}

    def test_region_lane_covers_run(self, tracer):
        payload = chrome_trace(tracer)
        regions = [e for e in payload["traceEvents"]
                   if e["ph"] == "X" and e.get("cat") == "region"]
        names = {e["name"] for e in regions}
        assert names == {"warm", "spin", "code"}
        end = max(e["ts"] + e["dur"] for e in regions)
        assert end == tracer.end_cycles[0]

    def test_thread_metadata_names_lanes(self, tracer):
        payload = chrome_trace(tracer)
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas
                 if e["name"] == "thread_name"}
        assert "core 0 regions" in names
        assert "core 0 stalls" in names

    def test_dma_events_use_dma_lane(self, tracer):
        tracer.on_dma(0x1C000000, 0x10000000, 256, 5, 41)
        payload = chrome_trace(tracer)
        dma = [e for e in payload["traceEvents"]
               if e["ph"] == "X" and e.get("cat") == "dma"]
        assert len(dma) == 1
        assert dma[0]["tid"] == DMA_TID
        assert dma[0]["dur"] == 36

    def test_validate_accepts_own_output(self, tracer):
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) > 0

    def test_round_trip_through_file(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path), title="rt")
        assert validate_chrome_trace_file(str(path)) > 0
        data = json.loads(path.read_text())
        assert data["otherData"]["time_unit"] == "cycle"


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(TraceError):
            validate_chrome_trace(["not", "a", "trace"])

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]})

    def test_rejects_negative_duration(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "dur": -1,
                 "pid": 1, "tid": 0}]})

    def test_rejects_missing_name(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 0}]})
