"""Per-region metrics: registry accounting and conservation laws."""

from repro.asm import assemble
from repro.core import Cpu
from repro.trace import MetricsRegistry, MetricsTracer

SOURCE = """
.region fill
    li   a1, 0x200
    li   t0, 8
fill:
    sw   t0, 0(a1)
    addi a1, a1, 4
    addi t0, t0, -1
    bnez t0, fill
.endregion
.region drain
    li   a1, 0x200
    lw   a2, 0(a1)
    addi a2, a2, 0
.endregion
    ebreak
"""


def _run(tracer=None, **tracer_kw):
    program = assemble(SOURCE, isa="xpulpnn")
    if tracer is None:
        tracer = MetricsTracer(program=program, **tracer_kw)
    cpu = Cpu(isa="xpulpnn")
    cpu.tracer = tracer
    cpu.load_program(program)
    return cpu.run(), tracer


class TestMetricsTracer:
    def test_regions_sum_to_core_counters(self):
        perf, tracer = _run()
        total = tracer.registry.total()
        assert total.cycles == perf.cycles
        assert total.instructions == perf.instructions
        assert total.total_stalls == perf.total_stalls
        assert total.by_class == perf.by_class

    def test_attribution_lands_in_the_marked_region(self):
        _, tracer = _run()
        reg = tracer.registry
        assert "fill" in reg and "drain" in reg
        assert reg["fill"].by_class["store"] == 8
        assert reg["drain"].by_class["load"] == 1
        # The load-use hazard (lw feeding the addi) lands in drain.
        assert reg["drain"].stall_load_use > 0

    def test_unmarked_instructions_use_default_region(self):
        _, tracer = _run(default_region="epilogue")
        assert "epilogue" in tracer.registry
        assert tracer.registry["epilogue"].by_class["system"] == 1


class TestMetricsRegistry:
    def test_share_and_rows_ordering(self):
        reg = MetricsRegistry()
        reg.counters_for("hot").cycles = 90
        reg.counters_for("cold").cycles = 10
        assert reg.share("hot") == 0.9
        assert reg.share("missing") == 0.0
        assert [name for name, _, _ in reg.rows()] == ["hot", "cold"]

    def test_empty_registry(self):
        reg = MetricsRegistry()
        assert reg.regions == []
        assert reg.total().cycles == 0
        assert reg.share("anything") == 0.0
        assert reg.to_dict() == {}

    def test_to_dict_shape(self):
        _, tracer = _run()
        payload = tracer.registry.to_dict()
        fill = payload["fill"]
        assert set(fill) == {"cycles", "share", "instructions", "ipc",
                             "stalls", "idle_cycles"}
        assert set(fill["stalls"]) == {"load_use", "branch", "jump",
                                       "misaligned", "tcdm"}
        assert abs(sum(r["share"] for r in payload.values()) - 1.0) < 1e-9

    def test_render_has_total_row(self):
        _, tracer = _run()
        text = tracer.registry.render()
        assert "TOTAL" in text
        assert "100.0%" in text
        assert "fill" in text
