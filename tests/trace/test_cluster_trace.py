"""Tracing multi-core cluster runs: barriers, DMA, banked memory events."""

from repro.asm import assemble
from repro.cluster import Cluster
from repro.soc.memmap import EU_BARRIER_WAIT, TCDM_BASE
from repro.trace import EventTracer, MetricsTracer, chrome_trace, validate_chrome_trace

BARRIER_PROG = f"""
.region work
    csrr t0, 0xF14
    slli t1, t0, 2
    li   t2, {TCDM_BASE + 0x400:#x}
    add  t2, t2, t1
    addi t3, t0, 1
loop:
    addi t3, t3, -1
    bnez t3, loop
    sw   t0, 0(t2)
.endregion
.region sync
    li   t4, {EU_BARRIER_WAIT:#x}
    lw   t5, 0(t4)
.endregion
    ebreak
"""


def _traced_run(tracer, cores=4):
    program = assemble(BARRIER_PROG, isa="xpulpnn", base=TCDM_BASE)
    cluster = Cluster(num_cores=cores, isa="xpulpnn")
    cluster.attach_tracer(tracer)
    run = cluster.run_program(program)
    return cluster, run


class TestClusterEventTrace:
    def test_every_core_present(self):
        tracer = EventTracer()
        _, run = _traced_run(tracer, cores=4)
        assert tracer.cores == [0, 1, 2, 3]
        assert set(tracer.end_cycles) == {0, 1, 2, 3}

    def test_barrier_spans_cover_the_skew(self):
        # Core N spins N+1 times, so earlier cores park longer at the
        # barrier; the last arrival parks (almost) not at all.
        tracer = EventTracer()
        _, run = _traced_run(tracer, cores=4)
        assert len(tracer.barriers) == 4
        parked = {b.core: b.parked for b in tracer.barriers}
        assert parked[0] > parked[3]
        assert all(b.release >= b.arrive for b in tracer.barriers)

    def test_region_spans_close_at_barrier_arrival(self):
        tracer = EventTracer()
        _traced_run(tracer, cores=2)
        for barrier in tracer.barriers:
            spans = tracer.spans_for(barrier.core)
            assert all(s.end <= barrier.arrive or s.start >= barrier.release
                       for s in spans)

    def test_mem_events_carry_bank_info(self):
        tracer = EventTracer(detail="full")
        cluster, _ = _traced_run(tracer, cores=4)
        stores = [e for e in tracer.mem_events if e.kind == "w"]
        assert len(stores) >= 4
        assert all(e.bank == cluster.tcdm.bank_of(e.addr) for e in stores)

    def test_dma_transfers_traced(self):
        tracer = EventTracer()
        cluster, _ = _traced_run(tracer, cores=2)
        cluster.dma.transfer(0x1C000000, TCDM_BASE + 0x800, 128)
        (dma,) = tracer.dma_events
        assert dma.bytes == 128
        assert dma.end > dma.start

    def test_export_validates(self):
        tracer = EventTracer()
        _traced_run(tracer, cores=4)
        payload = chrome_trace(tracer, title="cluster")
        assert validate_chrome_trace(payload) > 0
        barrier_lanes = {e["tid"] for e in payload["traceEvents"]
                        if e.get("cat") == "barrier"}
        assert len(barrier_lanes) == 4

    def test_timing_unchanged_by_tracer(self):
        program = assemble(BARRIER_PROG, isa="xpulpnn", base=TCDM_BASE)
        bare = Cluster(num_cores=4, isa="xpulpnn").run_program(program)
        traced_cluster = Cluster(num_cores=4, isa="xpulpnn")
        traced_cluster.attach_tracer(EventTracer(detail="full"))
        traced = traced_cluster.run_program(program)
        assert traced.cycles == bare.cycles
        assert traced.aggregate.instructions == bare.aggregate.instructions


class TestClusterMetrics:
    def test_barrier_region_accumulates_parked_time(self):
        tracer = MetricsTracer()
        _, run = _traced_run(tracer, cores=4)
        reg = tracer.registry
        assert "barrier" in reg
        assert reg["barrier"].idle_cycles == run.aggregate.idle_cycles

    def test_totals_match_aggregate(self):
        tracer = MetricsTracer()
        _, run = _traced_run(tracer, cores=4)
        total = tracer.registry.total()
        agg = run.aggregate
        assert total.cycles == agg.cycles
        assert total.instructions == agg.instructions
