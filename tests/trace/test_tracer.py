"""Tracer protocol: hooks, span folding, and the legacy trace shim."""

import pytest

from repro.asm import KernelBuilder, assemble
from repro.core import Cpu
from repro.trace import (
    CallableTracer,
    EventTracer,
    TextTracer,
    Tracer,
)

COUNTED_LOOP = """
.region init
    li   a0, 0
    li   t0, 4
.endregion
.region loop
again:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, again
.endregion
    ebreak
"""


def _run(source, tracer=None, isa="xpulpnn"):
    program = assemble(source, isa=isa)
    cpu = Cpu(isa=isa)
    if tracer is not None:
        cpu.tracer = tracer
    cpu.load_program(program)
    perf = cpu.run()
    return cpu, perf, program


class TestLegacyShim:
    def test_callable_assignment_still_works(self):
        seen = []
        program = assemble("nop\nnop\nebreak", isa="xpulpnn")
        cpu = Cpu(isa="xpulpnn")
        cpu.trace = lambda pc, ins: seen.append((pc, ins.mnemonic))
        cpu.load_program(program)
        cpu.run()
        assert [m for _, m in seen] == ["addi", "addi", "ebreak"]
        assert [pc for pc, _ in seen] == [0, 4, 8]

    def test_trace_getter_returns_the_callable(self):
        cpu = Cpu(isa="xpulpnn")

        def fn(pc, ins):
            return None

        cpu.trace = fn
        assert cpu.trace is fn
        assert isinstance(cpu.tracer, CallableTracer)

    def test_trace_accepts_tracer_instances(self):
        cpu = Cpu(isa="xpulpnn")
        tracer = EventTracer()
        cpu.trace = tracer
        assert cpu.tracer is tracer

    def test_clearing_trace(self):
        cpu = Cpu(isa="xpulpnn")
        cpu.trace = lambda pc, ins: None
        cpu.trace = None
        assert cpu.tracer is None


class TestTextTracer:
    def test_format_matches_legacy_run_trace(self):
        lines = []
        _run("nop\nebreak", TextTracer(write=lines.append))
        assert lines[0] == "  0x00000000: addi zero, zero, 0"
        assert all(line.startswith("  0x") for line in lines)


class TestEventTracerSpans:
    def test_spans_partition_the_run(self):
        program = assemble(COUNTED_LOOP, isa="xpulpnn")
        tracer = EventTracer(program=program, default_region="code")
        cpu = Cpu(isa="xpulpnn")
        cpu.tracer = tracer
        cpu.load_program(program)
        perf = cpu.run()
        tracer_names = {s.name for s in tracer.region_spans}
        assert tracer_names == {"init", "loop", "code"}
        # Spans tile [0, cycles) with no gaps or overlap.
        spans = sorted(tracer.spans_for(0), key=lambda s: s.start)
        assert spans[0].start == 0
        for prev, cur in zip(spans, spans[1:]):
            assert prev.end == cur.start
        assert spans[-1].end == perf.cycles
        assert tracer.end_cycles == {0: perf.cycles}

    def test_span_instruction_counts_sum_to_retires(self):
        tracer = EventTracer()
        _, perf, _ = _run(COUNTED_LOOP, tracer)
        assert sum(s.instructions for s in tracer.region_spans) == \
            perf.instructions

    def test_region_map_from_program(self):
        program = assemble(COUNTED_LOOP, isa="xpulpnn")
        spans = program.regions
        assert set(spans) == {"init", "loop"}
        tracer = EventTracer(program=program)
        cpu = Cpu(isa="xpulpnn")
        cpu.tracer = tracer
        cpu.load_program(program)
        cpu.run()
        cycles = tracer.region_cycles()
        assert cycles["loop"] > cycles["init"]

    def test_stall_events_match_counters(self):
        tracer = EventTracer()
        _, perf, _ = _run(COUNTED_LOOP, tracer)
        by_cause = {}
        for stall in tracer.stalls:
            by_cause[stall.cause] = by_cause.get(stall.cause, 0) + stall.cycles
        assert by_cause.get("branch", 0) == perf.stall_branch
        assert sum(by_cause.values()) == perf.total_stalls

    def test_rejects_unknown_detail(self):
        with pytest.raises(ValueError):
            EventTracer(detail="everything")


class TestFullDetail:
    def test_retires_recorded_with_dominant_cause(self):
        tracer = EventTracer(detail="full")
        _, perf, _ = _run(COUNTED_LOOP, tracer)
        assert len(tracer.retires) == perf.instructions
        taken = [r for r in tracer.retires
                 if r.mnemonic == "bne" and r.stall_cycles]
        assert taken and all(r.stall_cause == "branch" for r in taken)

    def test_memory_events_only_in_full_mode(self):
        src = "li a1, 0x100\nlw a0, 0(a1)\nsw a0, 4(a1)\nebreak"
        spans = EventTracer()
        _run(src, spans)
        assert spans.mem_events == []

        full = EventTracer(detail="full")
        _run(src, full)
        kinds = [(e.kind, e.addr) for e in full.mem_events]
        assert ("r", 0x100) in kinds and ("w", 0x104) in kinds

    def test_hwloop_backedges_recorded(self):
        b = KernelBuilder(isa="xpulpnn")
        b.li("t0", 3)
        with b.hardware_loop(0, "t0"):
            b.emit("addi", "a0", "a0", 1)
        b.ebreak()
        program = b.build()
        tracer = EventTracer(detail="full")
        cpu = Cpu(isa="xpulpnn")
        cpu.tracer = tracer
        cpu.load_program(program)
        perf = cpu.run()
        assert len(tracer.hwloop_events) == perf.hwloop_backedges == 2


class TestZeroCost:
    def test_cycles_identical_with_and_without_tracer(self):
        _, bare, _ = _run(COUNTED_LOOP)
        _, spans, _ = _run(COUNTED_LOOP, EventTracer())
        _, full, _ = _run(COUNTED_LOOP, EventTracer(detail="full"))
        assert bare.cycles == spans.cycles == full.cycles
        assert bare.instructions == spans.instructions == full.instructions

    def test_base_tracer_hooks_are_noops(self):
        tracer = Tracer()
        assert tracer.trace_memory is False
        _, perf, _ = _run(COUNTED_LOOP, tracer)
        assert perf.instructions > 0
