"""Kernel catalog behind ``repro profile`` / ``repro trace``.

The convolution entries run at the benchmark geometry, so the asserted
quantization shares are the Fig. 6 numbers the acceptance spec pins
(pv.qnt shares of ~7% at 4-bit and ~12% at 2-bit on the scaled layer).
"""

import pytest

from repro.errors import TraceError
from repro.trace import validate_chrome_trace, chrome_trace
from repro.trace.profile import (
    CONV_SPECS,
    MATMUL_SPECS,
    kernel_catalog,
    profile_kernel,
    trace_kernel,
)


class TestCatalog:
    def test_every_entry_described(self):
        names = [name for name, _ in kernel_catalog()]
        assert names == list(CONV_SPECS) + list(MATMUL_SPECS)
        assert all(desc for _, desc in kernel_catalog())

    def test_unknown_kernel_rejected(self):
        with pytest.raises(TraceError, match="unknown kernel"):
            profile_kernel("conv_3bit")


class TestProfileKernel:
    def test_conv_4bit_quant_share_matches_fig6(self):
        profile = profile_kernel("conv_4bit")
        assert profile.cycles > 0
        assert 0.06 < profile.region_share("quant") < 0.08
        assert profile.region_share("dotprod") > 0.7

    def test_conv_2bit_quant_share_matches_fig6(self):
        profile = profile_kernel("conv_2bit")
        assert 0.11 < profile.region_share("quant") < 0.14

    def test_matmul_profile_single_core(self):
        profile = profile_kernel("matmul_4bit")
        assert profile.cores == 1
        assert {"dotprod", "quant"} <= set(profile.registry.regions)
        assert profile.registry.total().cycles == profile.cycles

    def test_matmul_profile_cluster(self):
        profile = profile_kernel("matmul_4bit", cores=4)
        assert profile.cores == 4
        assert "barrier" in profile.registry
        assert "prologue" in profile.registry
        assert profile.detail["tcdm_conflicts"] >= 0
        # Aggregate core-cycles, not wall-clock.
        assert profile.registry.total().cycles > profile.cycles

    def test_cluster_conv_profiles(self):
        profile = profile_kernel("conv_4bit", cores=4)
        assert profile.cores == 4
        assert profile.detail["tcdm_conflicts"] >= 0
        assert profile.cycles < profile_kernel("conv_4bit").cycles

    def test_profile_by_target_name(self):
        single = profile_kernel("conv_4bit", target="xpulpnn")
        assert single.cores == 1
        cluster = profile_kernel("conv_4bit", target="xpulpnn-cluster4")
        assert cluster.cores == 4
        with pytest.raises(TraceError, match="stm32l4"):
            profile_kernel("conv_4bit", target="stm32l4")

    def test_to_dict_round_trip(self):
        profile = profile_kernel("matmul_2bit")
        payload = profile.to_dict()
        assert payload["kernel"] == "matmul_2bit"
        assert payload["regions"]["dotprod"]["cycles"] > 0
        assert "quant" in profile.render()


class TestTraceKernel:
    def test_single_core_conv_trace(self):
        tracer = trace_kernel("conv_4bit")
        names = {s.name for s in tracer.region_spans}
        assert {"im2col", "dotprod", "quant"} <= names
        assert validate_chrome_trace(chrome_trace(tracer)) > 0

    def test_cluster_trace_has_all_lanes(self):
        tracer = trace_kernel("matmul_4bit", cores=8)
        assert tracer.cores == list(range(8))
        assert len(tracer.barriers) >= 8
        assert tracer.dma_events  # staging transfers
        payload = chrome_trace(tracer, title="matmul x8")
        assert validate_chrome_trace(payload) > 0
