"""Smoke tests: the fast examples must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "performance counters" in result.stdout


def test_quantization_workflow_runs():
    result = _run("quantization_workflow.py")
    assert result.returncode == 0, result.stderr
    assert "bit-exact" in result.stdout
    assert "execution profile" in result.stdout


@pytest.mark.slow
def test_network_deployment_runs():
    result = _run("network_deployment.py", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "verified=yes" in result.stdout


def test_static_analysis_example_runs():
    result = _run("static_analysis.py")
    assert result.returncode == 0, result.stderr
    assert "all checks behaved as expected" in result.stdout
    assert "3 finding(s)" in result.stdout
