"""Integration: a multi-layer QNN runs on the ISS, layer by layer, and
matches the golden network bit-exactly end to end."""

import numpy as np
import pytest

from repro.kernels import (
    ConvConfig,
    ConvKernel,
    LinearConfig,
    LinearKernel,
    PoolConfig,
    PoolKernel,
)
from repro.qnn import (
    MaxPool,
    QnnNetwork,
    QuantizedConv,
    QuantizedLinear,
    random_activations,
    random_weights,
)


@pytest.fixture(scope="module")
def network_and_data():
    rng = np.random.default_rng(77)
    conv1 = QuantizedConv(
        weights=random_weights((16, 3, 3, 16), 4, rng), weight_bits=4,
        in_bits=4, out_bits=4, pad=1, name="conv1",
    )
    conv2 = QuantizedConv(
        weights=random_weights((16, 3, 3, 16), 2, rng), weight_bits=2,
        in_bits=2, out_bits=2, pad=1, name="conv2",
    )
    fc = QuantizedLinear(
        weights=random_weights((10, 16 * 4 * 4), 4, rng), weight_bits=4,
        in_bits=4, out_bits=8, name="fc",
    )
    net = QnnNetwork([conv1, MaxPool(size=2), conv2], name="tiny-cnn")
    x = random_activations((8, 8, 16), 4, rng)
    return net, conv1, conv2, fc, x


class TestLayerByLayer:
    def test_mixed_precision_network(self, network_and_data):
        net, conv1, conv2, fc, x = network_and_data
        golden_trace = []
        net.golden(x, record=golden_trace)

        # conv1 (4-bit) on the extended core
        g1 = conv1.geometry(8, 8)
        run1 = ConvKernel(ConvConfig(geometry=g1, bits=4, quant="hw")).run(
            conv1.weights, x, thresholds=conv1.thresholds)
        assert np.array_equal(run1.output, golden_trace[0])

        # maxpool (4-bit SIMD)
        run2 = PoolKernel(PoolConfig(8, 8, 16, 4, op="max")).run(run1.output)
        assert np.array_equal(run2.output, golden_trace[1])

        # conv2: 2-bit weights... inputs are 4-bit levels; the kernel
        # matrix is uniform-precision, so requantize inputs to 2-bit by
        # dropping LSBs (documented mixed-precision bridge).
        x2 = (run2.output >> 2).astype(np.int32)
        g2 = conv2.geometry(4, 4)
        acc = None
        from repro.qnn import conv2d_golden, thresholds_from_accumulators

        acc = conv2d_golden(x2, conv2.weights, stride=1, pad=1)
        table = thresholds_from_accumulators(acc, 2)
        run3 = ConvKernel(ConvConfig(geometry=g2, bits=2, quant="hw")).run(
            conv2.weights, x2, thresholds=table)
        assert np.array_equal(run3.output, table.quantize(acc))

        # fc (4-bit) on the flattened 2-bit activations, widened to 4-bit.
        x3 = run3.output.reshape(-1).astype(np.int32)
        fc_kernel = LinearKernel(LinearConfig(x3.size, 10 if False else 16,
                                              4))
        w_fc = random_weights((16, x3.size), 4, np.random.default_rng(5))
        run4 = fc_kernel.run(w_fc, x3, shift=6)
        from repro.qnn import requantize_shift

        expected = requantize_shift(w_fc.astype(np.int64) @ x3, 6, 8,
                                    signed=False)
        assert np.array_equal(run4.output, expected)

    def test_cycle_accounting_accumulates(self, network_and_data):
        net, conv1, _, _, x = network_and_data
        g1 = conv1.geometry(8, 8)
        net.golden(x)
        kern = ConvKernel(ConvConfig(geometry=g1, bits=4, quant="hw"))
        run = kern.run(conv1.weights, x, thresholds=conv1.thresholds)
        pool = PoolKernel(PoolConfig(8, 8, 16, 4, op="max")).run(run.output)
        total = run.cycles + pool.cycles
        assert total > run.cycles > pool.cycles


class TestSocIntegration:
    def test_kernel_runs_inside_pulpissimo(self, network_and_data):
        """The same conv program executes against the SoC memory map."""
        from repro.kernels import ConvConfig, ConvKernel
        from repro.soc import L2_BASE, Pulpissimo

        net, conv1, _, _, x = network_and_data
        g1 = conv1.geometry(8, 8)
        net.golden(x)
        kern = ConvKernel(ConvConfig(geometry=g1, bits=4, quant="hw"),
                          base=L2_BASE)
        soc = Pulpissimo(isa="xpulpnn")
        run = kern.run(conv1.weights, x, thresholds=conv1.thresholds,
                       cpu=soc.cpu)
        golden_trace = []
        net.golden(x, record=golden_trace)
        assert np.array_equal(run.output, golden_trace[0])
