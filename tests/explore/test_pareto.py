"""Pareto engine edge cases: duplicates, degenerate frontiers, bands."""

import pytest

from repro.explore import (
    ExploreError,
    Objective,
    SPEC_OBJECTIVES,
    dominates,
    pareto_front,
)

CY = (Objective("cycles", "min"),)
CY_EN = (Objective("cycles", "min"), Objective("energy", "min"))


class TestObjective:
    def test_min_sense(self):
        obj = Objective("cycles", "min")
        assert obj.compare(10, 20) == -1
        assert obj.compare(20, 10) == 1
        assert obj.compare(10, 10) == 0

    def test_max_sense(self):
        obj = Objective("bits", "max")
        assert obj.compare(8, 4) == -1
        assert obj.compare(4, 8) == 1

    def test_band_makes_near_values_equal(self):
        obj = Objective("energy", "min", band=0.01)
        assert obj.compare(100.0, 100.5) == 0
        assert obj.compare(100.0, 102.0) == -1

    def test_zero_band_is_exact(self):
        obj = Objective("cycles", "min")
        assert obj.compare(100, 101) == -1

    def test_invalid_sense_rejected(self):
        with pytest.raises(ExploreError):
            Objective("x", "maximize")

    def test_invalid_band_rejected(self):
        with pytest.raises(ExploreError):
            Objective("x", "min", band=1.0)


class TestDominates:
    def test_strict_win_required(self):
        a = {"cycles": 10, "energy": 5}
        assert not dominates(a, dict(a), CY_EN)

    def test_better_everywhere_dominates(self):
        assert dominates({"cycles": 10, "energy": 5},
                         {"cycles": 20, "energy": 6}, CY_EN)

    def test_tradeoff_does_not_dominate(self):
        a = {"cycles": 10, "energy": 9}
        b = {"cycles": 20, "energy": 5}
        assert not dominates(a, b, CY_EN)
        assert not dominates(b, a, CY_EN)

    def test_missing_objective_errors(self):
        with pytest.raises(ExploreError):
            dominates({"cycles": 1}, {"cycles": 2}, CY_EN)

    def test_non_numeric_objective_errors(self):
        with pytest.raises(ExploreError):
            dominates({"cycles": "fast"}, {"cycles": 2}, CY)

    def test_no_objectives_errors(self):
        with pytest.raises(ExploreError):
            dominates({"cycles": 1}, {"cycles": 2}, ())


class TestParetoFront:
    def test_empty_input_empty_frontier(self):
        result = pareto_front([], SPEC_OBJECTIVES)
        assert result.frontier == []
        assert result.dominated_by == {}
        assert result.ties == []

    def test_single_point_is_frontier(self):
        result = pareto_front([{"cycles": 5}], CY)
        assert result.frontier == [0]

    def test_single_objective_degenerate(self):
        points = [{"cycles": c} for c in (30, 10, 20)]
        result = pareto_front(points, CY)
        assert result.frontier == [1]
        assert result.dominated_by == {0: 1, 2: 1}

    def test_duplicate_points_all_on_frontier_and_tie(self):
        points = [{"cycles": 10, "energy": 3}] * 3
        result = pareto_front(points, CY_EN)
        assert result.frontier == [0, 1, 2]
        assert result.ties == [[0, 1, 2]]

    def test_dominated_tie_both_fall(self):
        # Two equal points both strictly beaten by a third: neither is
        # rescued by the tie — both report the winner as witness.
        points = [{"cycles": 20, "energy": 5}, {"cycles": 20, "energy": 5},
                  {"cycles": 10, "energy": 4}]
        result = pareto_front(points, CY_EN)
        assert result.frontier == [2]
        assert result.dominated_by == {0: 2, 1: 2}
        assert result.ties == []

    def test_band_tie_survives_on_frontier(self):
        objectives = (Objective("cycles", "min"),
                      Objective("energy", "min", band=0.01))
        points = [{"cycles": 10, "energy": 100.0},
                  {"cycles": 10, "energy": 100.4}]
        result = pareto_front(points, objectives)
        assert result.frontier == [0, 1]
        assert result.ties == [[0, 1]]

    def test_tradeoff_frontier_keeps_both(self):
        points = [{"cycles": 10, "energy": 9},
                  {"cycles": 20, "energy": 5}]
        result = pareto_front(points, CY_EN)
        assert result.frontier == [0, 1]

    def test_bits_axis_protects_higher_precision(self):
        # Faster 2-bit does not dominate slower 4-bit under
        # SPEC_OBJECTIVES: precision is an explicit maximized axis.
        faster_2b = {"cycles": 100, "energy_uj": 1.0,
                     "area_mm2": 1.0, "bits": 2}
        slower_4b = {"cycles": 180, "energy_uj": 1.8,
                     "area_mm2": 1.0, "bits": 4}
        result = pareto_front([faster_2b, slower_4b], SPEC_OBJECTIVES)
        assert result.frontier == [0, 1]

    def test_equal_silicon_slower_point_falls(self):
        fast = {"cycles": 100, "energy_uj": 1.0, "area_mm2": 1.0, "bits": 4}
        slow = {"cycles": 180, "energy_uj": 1.8, "area_mm2": 1.0, "bits": 4}
        result = pareto_front([fast, slow], SPEC_OBJECTIVES)
        assert result.frontier == [0]
        assert result.dominated_by == {1: 0}
