"""End-to-end staged search: frontier correctness, verification, report.

``TestStagedEqualsFull`` is the pruning-soundness contract the CI
explore job runs: on the CI space, the staged search (static pruning
on) must produce exactly the frontier the full search (every feasible
candidate simulated) produces.
"""

import json

import pytest

from repro.explore import (
    DesignSpaceExplorer,
    ExploreError,
    named_space,
    validate_explore_report,
)
from repro.serve import SimulationService, open_cache


@pytest.fixture(scope="module")
def ci_reports():
    service = SimulationService()
    space = named_space("ci")
    full = DesignSpaceExplorer(space, service=service, prune=False).run()
    staged = DesignSpaceExplorer(space, service=service, prune=True).run()
    return full, staged


class TestStagedEqualsFull:
    def test_frontiers_identical(self, ci_reports):
        full, staged = ci_reports
        assert sorted(staged.frontier_labels()) == \
            sorted(full.frontier_labels())

    def test_staged_simulates_strictly_less(self, ci_reports):
        full, staged = ci_reports
        assert staged.stats()["simulated"] < full.stats()["simulated"]
        assert staged.stage.prune_ratio >= 0.30

    def test_every_candidate_accounted_for(self, ci_reports):
        _, staged = ci_reports
        stats = staged.stats()
        assert stats["candidates"] == (stats["infeasible"] + stats["pruned"]
                                       + stats["simulated"])

    def test_evaluated_points_match_across_modes(self, ci_reports):
        full, staged = ci_reports
        full_cycles = {p["label"]: p["cycles"] for p in full.points}
        for point in staged.points:
            assert full_cycles[point["label"]] == point["cycles"]


class TestPaperDesignPoint:
    def test_8core_4bit_hw_on_frontier(self, ci_reports):
        _, staged = ci_reports
        assert "c8-t64k-l512k-4b-hw" in staged.frontier_labels()

    def test_derivations_name_the_paper_choices(self, ci_reports):
        _, staged = ci_reports
        d = staged.derivations
        assert d["cores"]["chosen_cores"] == 8
        assert d["cores"]["on_frontier"]
        assert d["bits"]["vs_8bit_speedup"] > 1.0
        assert d["quant"]["sw_over_hw_cycles"] > 1.0
        assert d["memory"]["tcdm_kb"] == 64

    @pytest.mark.slow
    def test_paper_space_frontier_contains_design_point(self):
        report = DesignSpaceExplorer(
            named_space("paper"), service=SimulationService()).run()
        assert "c8-t64k-l512k-4b-hw" in report.frontier_labels()
        assert report.derivations["cores"]["parallel_efficiency"] > 0.9


class TestVerification:
    def test_cached_and_uncached_bit_identical(self, tmp_path):
        cache = open_cache(str(tmp_path / "cache"))
        service = SimulationService(cache=cache)
        report = DesignSpaceExplorer(
            named_space("quick"), service=service).run(verify=True)
        assert report.verification["ok"]
        assert len(report.verification["points"]) == \
            len(report.frontier_labels())
        for check in report.verification["points"]:
            assert check["cached_run_hit"]
            assert check["cycles"] == check["uncached_cycles"]

    def test_bound_violation_raises(self):
        from repro.explore.search import DesignSpaceExplorer as Explorer
        from repro.explore.static_stage import StaticScore
        from repro.explore import Candidate, variant_spec

        explorer = Explorer(named_space("quick"),
                            service=SimulationService())
        cand = Candidate(spec=variant_spec(1, 64, 512), bits=4,
                         quant="hw", out_ch=16, reduction=64)
        score = StaticScore(candidate=cand, cycles_lo=10, cycles_hi=20)
        with pytest.raises(ExploreError):
            explorer._check_bounds(score, {"cycles": 21})
        with pytest.raises(ExploreError):
            explorer._check_bounds(score, {"cycles": 9})


class TestReport:
    def test_report_validates(self, ci_reports):
        _, staged = ci_reports
        doc = json.loads(json.dumps(staged.to_dict()))
        assert validate_explore_report(doc) == len(staged.frontier_labels())

    def test_validation_rejects_bad_schema(self, ci_reports):
        _, staged = ci_reports
        doc = staged.to_dict()
        doc["schema"] = "repro-explore/0"
        with pytest.raises(ExploreError):
            validate_explore_report(doc)

    def test_validation_rejects_unknown_frontier_label(self, ci_reports):
        _, staged = ci_reports
        doc = staged.to_dict()
        doc["frontier"] = list(doc["frontier"]) + ["c9-t1k-l1k-3b-hw"]
        with pytest.raises(ExploreError):
            validate_explore_report(doc)

    def test_validation_rejects_pruned_without_witness(self, ci_reports):
        _, staged = ci_reports
        doc = staged.to_dict()
        for cand in doc["candidates"]:
            if cand["status"] == "pruned":
                del cand["witness"]
                break
        with pytest.raises(ExploreError):
            validate_explore_report(doc)

    def test_validation_rejects_inconsistent_stats(self, ci_reports):
        _, staged = ci_reports
        doc = staged.to_dict()
        doc["stats"]["pruned"] += 1
        with pytest.raises(ExploreError):
            validate_explore_report(doc)

    def test_trajectory_payload_series(self, ci_reports):
        from repro.eval.trajectory import build_trajectory

        _, staged = ci_reports
        doc = build_trajectory(staged.trajectory_payload())
        entries = doc["entries"]
        assert "explore/ci/stats/points_per_sec" in entries
        cycle_series = [k for k in entries
                        if k.startswith("explore/ci/points/")
                        and k.endswith("/cycles")]
        assert len(cycle_series) == len(staged.points)

    def test_render_mentions_frontier_and_pruning(self, ci_reports):
        _, staged = ci_reports
        text = staged.render()
        assert "staged search" in text
        assert "memory-dominated" in text
        assert "why cores" in text

    def test_spans_cover_every_phase(self, ci_reports):
        _, staged = ci_reports
        names = {span.name for span in staged.spans}
        assert {"explore:ci", "explore.expand", "explore.static",
                "explore.simulate", "explore.rollup",
                "explore.pareto"} <= names
        assert all(span.end_s > 0 for span in staged.spans)


class TestPerfDiffBanding:
    def test_points_per_sec_is_banded_cycles_exact(self):
        from repro.telemetry.perfdiff import series_tolerance

        kind, _ = series_tolerance("explore/ci/stats/points_per_sec")
        assert kind == "band"
        kind, _ = series_tolerance(
            "explore/ci/points/c8-t64k-l512k-4b-hw/cycles")
        assert kind == "exact"
