"""Static stage: certain bounds, infeasibility, sound pruning rules."""

import pytest

from repro.eval.spec_point import run_spec_point
from repro.explore import (
    Candidate,
    SPEC_OBJECTIVES,
    named_space,
    run_static_stage,
    score_candidate,
    variant_spec,
)
from repro.explore.pareto import Objective
from repro.explore.static_stage import StaticScore, _memory_dominates
from repro.target import get_target


class TestBoundsSoundness:
    @pytest.mark.parametrize("cores,bits,quant,out_ch,reduction", [
        (1, 4, "hw", 16, 64), (2, 8, "shift", 16, 64),
        (8, 4, "sw", 16, 64), (8, 2, "hw", 32, 128)])
    def test_simulated_cycles_within_certain_bounds(self, cores, bits,
                                                    quant, out_ch,
                                                    reduction):
        spec = variant_spec(cores, 64, 512)
        cand = Candidate(spec=spec, bits=bits, quant=quant,
                         out_ch=out_ch, reduction=reduction)
        score = score_candidate(cand)
        assert score.feasible
        payload = run_spec_point(spec, bits, quant, out_ch=out_ch,
                                 reduction=reduction)
        assert score.cycles_lo <= payload["cycles"] <= score.cycles_hi

    def test_power_model_within_static_power_bounds(self):
        from repro.physical.design import power_bounds_mw

        spec = variant_spec(8, 64, 512)
        payload = run_spec_point(spec, 4, "hw", out_ch=16, reduction=64)
        lo, hi = power_bounds_mw(spec)
        assert lo <= payload["power_mw"] <= hi


class TestInfeasibility:
    def test_tcdm_overflow_flagged(self):
        spec = variant_spec(8, 1, 512)
        score = score_candidate(Candidate(
            spec=spec, bits=4, quant="hw", out_ch=32, reduction=128))
        assert not score.feasible
        assert "overflows" in score.reasons[0]

    def test_impossible_shard_geometry_flagged(self):
        spec = variant_spec(8, 64, 512)
        score = score_candidate(Candidate(
            spec=spec, bits=4, quant="hw", out_ch=4, reduction=128))
        assert not score.feasible
        assert "shard geometry" in score.reasons[0]

    def test_missing_pv_qnt_flagged(self):
        spec = get_target("xpulpnn-cluster8").evolve(
            name="explore-test-noqnt", isa="xpulpv2")
        score = score_candidate(Candidate(
            spec=spec, bits=4, quant="hw", out_ch=32, reduction=128))
        assert not score.feasible
        assert "pv.qnt" in score.reasons[0]

    def test_infeasible_never_simulated(self):
        cands = [Candidate(spec=variant_spec(8, 1, 512), bits=4,
                           quant="hw", out_ch=32, reduction=128)]
        stage = run_static_stage(cands)
        assert stage.survivors == []
        assert len(stage.infeasible) == 1
        assert stage.prune_ratio == 0.0


class TestPruning:
    def test_memory_twins_pruned_on_ci_space(self):
        stage = run_static_stage(named_space("ci").expand())
        assert stage.prune_ratio >= 0.30
        rules = {rule for _, _, rule in stage.pruned}
        assert rules == {"memory-dominated"}
        # The pruned twin's witness is identical silicon but smaller.
        for score, witness, _ in stage.pruned:
            assert witness == score.label.replace("t128k", "t64k")

    def test_witnesses_are_survivors(self):
        stage = run_static_stage(named_space("ci").expand())
        survivor_labels = {s.label for s in stage.survivors}
        for _, witness, _ in stage.pruned:
            assert witness in survivor_labels

    def test_prune_disabled_keeps_every_feasible(self):
        cands = named_space("ci").expand()
        stage = run_static_stage(cands, prune=False)
        assert len(stage.survivors) == len(cands)
        assert stage.pruned == []

    def test_memory_dominance_requires_identical_program(self):
        a = StaticScore(candidate=_cand(2, 64), program_digest="aaaa",
                        area_mm2=1.0)
        b = StaticScore(candidate=_cand(2, 128), program_digest="bbbb",
                        area_mm2=1.2)
        assert not _memory_dominates(a, b, _area_obj())

    def test_memory_dominance_respects_equality_band(self):
        # Within the frontier's band the twins would tie in a full run,
        # so the larger one must NOT be pruned.
        a = StaticScore(candidate=_cand(2, 64), program_digest="aaaa",
                        area_mm2=1.0)
        b = StaticScore(candidate=_cand(2, 128), program_digest="aaaa",
                        area_mm2=1.003)
        assert not _memory_dominates(a, b, _area_obj())
        c = StaticScore(candidate=_cand(2, 128), program_digest="aaaa",
                        area_mm2=1.2)
        assert _memory_dominates(a, c, _area_obj())


def _cand(cores, tcdm_kb):
    return Candidate(spec=variant_spec(cores, tcdm_kb, 512), bits=4,
                     quant="hw", out_ch=32, reduction=128)


def _area_obj():
    return next(o for o in SPEC_OBJECTIVES if o.key == "area_mm2")


class TestObjectiveLookup:
    def test_missing_area_objective_rejected(self):
        from repro.errors import ReproError
        from repro.explore.static_stage import _objective

        with pytest.raises(ReproError):
            _objective("area_mm2", (Objective("cycles", "min"),))
