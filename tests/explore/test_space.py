"""Search-space expansion: validation, dedup, digest-stable specs."""

import pytest

from repro.explore import (
    Candidate,
    ExploreError,
    SPACES,
    SearchSpace,
    NetworkSpace,
    named_space,
    variant_spec,
)
from repro.serve.jobs import CompileJob, SpecPointJob
from repro.target import get_target


class TestVariantSpec:
    def test_resolvable_by_name_after_registration(self):
        spec = variant_spec(4, 64, 512)
        assert get_target(spec.name) == spec

    def test_digest_stable_across_expansions(self):
        assert variant_spec(2, 128, 512).digest() == \
            variant_spec(2, 128, 512).digest()

    def test_axes_shape_the_spec(self):
        spec = variant_spec(4, 64, 256)
        assert spec.cores == 4
        assert spec.tcdm_bytes == 64 * 1024
        assert spec.l2_bytes == 256 * 1024

    def test_distinct_cells_distinct_digests(self):
        assert variant_spec(4, 64, 512).digest() != \
            variant_spec(4, 128, 512).digest()


class TestSearchSpace:
    def test_named_spaces_exist(self):
        for name in ("paper", "ci", "quick"):
            assert named_space(name).name == name

    def test_unknown_space_errors(self):
        with pytest.raises(ExploreError):
            named_space("galactic")

    def test_size_is_axis_product(self):
        space = named_space("ci")
        assert space.size == 2 * 2 * 1 * 3 == 12
        assert len(space.expand()) == 12

    def test_ci_space_within_ci_budget(self):
        assert named_space("ci").size <= 12

    def test_expansion_is_deterministic(self):
        a = [c.label for c in named_space("quick").expand()]
        b = [c.label for c in named_space("quick").expand()]
        assert a == b

    def test_expansion_dedups_identical_cells(self):
        space = SearchSpace(name="dup", cores=(2, 2), tcdm_kb=(64,),
                            l2_kb=(512,), points=((4, "hw"),))
        assert len(space.expand()) == 1

    def test_empty_axis_rejected(self):
        with pytest.raises(ExploreError):
            SearchSpace(name="bad", cores=())

    def test_invalid_point_rejected(self):
        with pytest.raises(ExploreError):
            SearchSpace(name="bad", points=((8, "hw"),))

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ExploreError):
            SearchSpace(name="bad", cores=(0,))

    def test_to_dict_round_trips_axes(self):
        doc = named_space("ci").to_dict()
        assert doc["cores"] == [2, 8]
        assert doc["size"] == 12

    def test_paper_space_covers_the_paper_axes(self):
        space = SPACES["paper"]
        assert space.cores == (1, 2, 4, 8)
        assert (4, "hw") in space.points
        assert (8, "shift") in space.points


class TestCandidate:
    def test_label_encodes_every_axis(self):
        cand = named_space("ci").expand()[0]
        assert cand.label == (
            f"c{cand.spec.cores}-t{cand.spec.tcdm_bytes // 1024}k-"
            f"l{cand.spec.l2_bytes // 1024}k-{cand.bits}b-{cand.quant}")

    def test_job_carries_spec_by_value(self):
        cand = named_space("quick").expand()[0]
        job = cand.job()
        assert isinstance(job, SpecPointJob)
        assert job.spec() == cand.spec

    def test_job_cache_identity_tracks_spec_digest(self):
        a, b = variant_spec(2, 64, 512), variant_spec(2, 128, 512)
        job_a = Candidate(spec=a, bits=4, quant="hw",
                          out_ch=16, reduction=64).job()
        job_b = Candidate(spec=b, bits=4, quant="hw",
                          out_ch=16, reduction=64).job()
        from repro.serve.runners import cache_key_parts

        assert cache_key_parts(job_a) != cache_key_parts(job_b)


class TestNetworkSpace:
    def test_jobs_carry_layer_bits(self):
        space = NetworkSpace(network="mixed3",
                             assignments=((8, 4, 8), (4, 4, 8)))
        jobs = space.jobs()
        assert all(isinstance(j, CompileJob) for j in jobs)
        assert jobs[0].layer_bits == (8, 4, 8)
        assert jobs[1].layer_bits == (4, 4, 8)

    def test_empty_assignments_rejected(self):
        with pytest.raises(ExploreError):
            NetworkSpace(network="mixed3", assignments=())

    def test_invalid_precision_rejected(self):
        with pytest.raises(ExploreError):
            NetworkSpace(network="mixed3", assignments=((8, 3, 8),))
