"""Flat memory model tests."""

import pytest

from repro.errors import MemoryAccessError
from repro.soc import Memory


class TestBounds:
    def test_in_range_access(self):
        mem = Memory(64, base=0x100)
        mem.store(0x100, 4, 0xDEADBEEF)
        assert mem.load(0x100, 4) == 0xDEADBEEF

    def test_below_base_raises(self):
        mem = Memory(64, base=0x100)
        with pytest.raises(MemoryAccessError):
            mem.load(0xFC, 4)

    def test_past_end_raises(self):
        mem = Memory(64, base=0x100)
        with pytest.raises(MemoryAccessError):
            mem.load(0x13D, 4)

    def test_straddling_end_raises(self):
        mem = Memory(64, base=0)
        with pytest.raises(MemoryAccessError):
            mem.load(62, 4)

    def test_bad_size_raises(self):
        mem = Memory(64)
        with pytest.raises(MemoryAccessError):
            mem.load(0, 3)
        with pytest.raises(MemoryAccessError):
            mem.store(0, 8, 0)

    def test_zero_size_memory_rejected(self):
        with pytest.raises(ValueError):
            Memory(0)


class TestEndianness:
    def test_little_endian_word(self):
        mem = Memory(16)
        mem.store(0, 4, 0x11223344)
        assert mem.load(0, 1) == 0x44
        assert mem.load(3, 1) == 0x11

    def test_signed_load(self):
        mem = Memory(16)
        mem.store(0, 2, 0x8000)
        assert mem.load(0, 2, signed=True) == 0xFFFF8000

    def test_store_masks_value(self):
        mem = Memory(16)
        mem.store(0, 1, 0x1FF)
        assert mem.load(0, 1) == 0xFF


class TestBulkHelpers:
    def test_words_roundtrip(self):
        mem = Memory(64)
        mem.write_words(0, [1, 2, 3])
        assert mem.read_words(0, 3) == [1, 2, 3]

    def test_i16_roundtrip(self):
        mem = Memory(64)
        mem.write_i16(0, [-1, 32767, -32768])
        assert mem.read_i16(0, 3) == [-1, 32767, -32768]

    def test_i8_roundtrip(self):
        mem = Memory(64)
        mem.write_i8(0, [-128, 127, -1])
        assert mem.read_i8(0, 3) == [-128, 127, -1]

    def test_bytes_roundtrip(self):
        mem = Memory(64)
        mem.write_bytes(8, b"hello")
        assert mem.read_bytes(8, 5) == b"hello"

    def test_fill(self):
        mem = Memory(64)
        mem.fill(0, 8, 0xAA)
        assert mem.read_bytes(0, 8) == b"\xaa" * 8

    def test_misaligned_access_allowed(self):
        """RI5CY supports misaligned data access (the core charges cycles)."""
        mem = Memory(64)
        mem.store(1, 4, 0x11223344)
        assert mem.load(1, 4) == 0x11223344
