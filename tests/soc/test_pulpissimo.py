"""PULPissimo SoC model: memory map, peripherals stub, core wiring."""

import pytest

from repro.asm import assemble
from repro.errors import MemoryAccessError
from repro.soc import L2_BASE, STDOUT_PUTC, TIMER_CYCLES, Pulpissimo


class TestMemoryMap:
    def test_l2_readwrite(self):
        soc = Pulpissimo()
        soc.mem.store(L2_BASE + 0x100, 4, 99)
        assert soc.mem.load(L2_BASE + 0x100, 4) == 99

    def test_unmapped_access_raises(self):
        soc = Pulpissimo()
        with pytest.raises(MemoryAccessError):
            soc.mem.load(0x0000_0000, 4)

    def test_peripheral_reads_zero(self):
        soc = Pulpissimo()
        assert soc.mem.load(STDOUT_PUTC + 0x40, 4) == 0

    def test_peripheral_write_swallowed(self):
        soc = Pulpissimo()
        soc.mem.store(STDOUT_PUTC + 0x40, 4, 123)  # no exception


class TestExecution:
    def test_program_runs_from_l2(self):
        soc = Pulpissimo(isa="xpulpnn")
        program = assemble("addi a0, zero, 7\nebreak", base=L2_BASE)
        perf = soc.run_program(program)
        assert soc.cpu.regs[10] == 7
        assert perf.instructions == 2

    def test_uart_collects_output(self):
        soc = Pulpissimo()
        src = f"""
            li a1, {STDOUT_PUTC}
            li a0, 72      # 'H'
            sw a0, 0(a1)
            li a0, 105     # 'i'
            sw a0, 0(a1)
            ebreak
        """
        soc.run_program(assemble(src, base=L2_BASE))
        assert soc.uart_text == "Hi"

    def test_timer_returns_cycles(self):
        soc = Pulpissimo()
        src = f"""
            li a1, {TIMER_CYCLES}
            nop
            nop
            lw a0, 0(a1)
            ebreak
        """
        soc.run_program(assemble(src, base=L2_BASE))
        assert soc.cpu.regs[10] > 0

    def test_baseline_core_selectable(self):
        soc = Pulpissimo(isa="ri5cy")
        assert soc.cpu.isa.name == "ri5cy"
        with pytest.raises(Exception):
            assemble("pv.qnt.n a0, a1, a2", isa="ri5cy")
