"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import Cpu
from repro.qnn import ConvGeometry


@pytest.fixture
def rng():
    return np.random.default_rng(0xDA7E)


@pytest.fixture
def cpu():
    """Extended-core CPU with a fresh flat memory."""
    return Cpu(isa="xpulpnn")


@pytest.fixture
def baseline_cpu():
    return Cpu(isa="ri5cy")


#: Small geometry satisfying every kernel's packing constraints at all of
#: 8/4/2-bit (even out_w, out_ch % 4 == 0, segments fill words).
TINY_GEOMETRY = ConvGeometry(in_h=6, in_w=6, in_ch=16, out_ch=8,
                             kh=3, kw=3, stride=1, pad=1)


@pytest.fixture
def tiny_geometry():
    return TINY_GEOMETRY


def run_asm(cpu, source, **regs):
    """Assemble *source* for the CPU's ISA, preload registers, run."""
    from repro.asm import assemble
    from repro.isa.registers import parse_register

    program = assemble(source, isa=cpu.isa)
    cpu.reset()
    cpu.load_program(program)
    for name, value in regs.items():
        cpu.regs[parse_register(name)] = value & 0xFFFFFFFF
    cpu.run()
    return cpu
