"""Command-line interface tests."""

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
        li   a0, 0
        li   t0, 4
        lp.setup 0, t0, end
        addi a0, a0, 3
    end:
        ebreak
    """)
    return path


class TestAsm:
    def test_assemble_to_binary(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.bin"
        assert main(["asm", str(source_file), "-o", str(out)]) == 0
        blob = out.read_bytes()
        assert len(blob) % 4 == 0 and len(blob) > 0
        assert "instructions" in capsys.readouterr().out

    def test_default_output_name(self, source_file, tmp_path):
        assert main(["asm", str(source_file)]) == 0
        assert (tmp_path / "prog.bin").exists()

    def test_isa_gating(self, tmp_path, capsys):
        path = tmp_path / "nn.s"
        path.write_text("pv.qnt.n a0, a1, a2\nebreak")
        assert main(["asm", str(path), "--isa", "ri5cy"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1


class TestDisasm:
    def test_roundtrip(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.bin"
        main(["asm", str(source_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["disasm", str(out)]) == 0
        text = capsys.readouterr().out
        assert "lp.setup" in text
        assert "ebreak" in text

    def test_base_address(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.bin"
        main(["asm", str(source_file), "-o", str(out)])
        capsys.readouterr()
        main(["disasm", str(out), "--base", "0x100"])
        assert "0x00000100" in capsys.readouterr().out


class TestRun:
    def test_executes_and_reports(self, source_file, capsys):
        assert main(["run", str(source_file)]) == 0
        text = capsys.readouterr().out
        assert "halted: ebreak" in text
        assert "a0 = 0x0000000c (12)" in text

    def test_register_preload(self, tmp_path, capsys):
        path = tmp_path / "add.s"
        path.write_text("add a0, a1, a2\nebreak")
        assert main(["run", str(path), "--reg", "a1=30", "--reg", "a2=0xc"]) == 0
        assert "(42)" in capsys.readouterr().out

    def test_trace(self, tmp_path, capsys):
        path = tmp_path / "t.s"
        path.write_text("nop\nebreak")
        main(["run", str(path), "--trace"])
        assert "addi" in capsys.readouterr().out


class TestReport:
    def test_table3_report(self, capsys):
        assert main(["report", "table3"]) == 0
        text = capsys.readouterr().out
        assert "Table III" in text

    def test_unknown_experiment(self, capsys):
        assert main(["report", "fig42"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_cluster_report_table(self, capsys):
        assert main(["report", "cluster"]) == 0
        text = capsys.readouterr().out
        assert "Cluster scaling" in text
        assert "4-bit MatMul" in text

    def test_cluster_json_report(self, capsys):
        import json

        assert main(["report", "cluster", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        points = data["cluster"]["points"]
        assert len(points) == 12
        eight_core = [p for p in points if p["cores"] == 8]
        assert len(eight_core) == 3
        assert all(p["efficiency"] >= 0.75 for p in eight_core)
        assert all(p["speedup"] >= 6.0 for p in eight_core)

    def test_json_mode_covers_table_experiments(self, capsys):
        import json

        assert main(["report", "table3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "table3" in data


class TestIsaReference:
    def test_lists_xpulpnn_subset(self, capsys):
        assert main(["isa", "--subset", "xpulpnn"]) == 0
        text = capsys.readouterr().out
        assert "pv.qnt.n" in text and "pv.sdotusp.c" in text
        assert "qnt_n" in text  # timing annotation

    def test_baseline_has_no_xpulpnn(self, capsys):
        assert main(["isa", "--isa", "ri5cy"]) == 0
        text = capsys.readouterr().out
        assert "pv.qnt" not in text
        assert "pv.sdotsp.b" in text

    def test_full_listing_grouped(self, capsys):
        assert main(["isa"]) == 0
        text = capsys.readouterr().out
        for subset in ("rv32i", "rv32m", "rv32c", "zicsr", "xpulpv2", "xpulpnn"):
            assert f"== {subset}" in text


class TestLint:
    FIXTURES = str(Path(__file__).parent / "analysis" / "fixtures")

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.s"
        path.write_text("li a0, 1\nadd a0, a0, a1\nebreak")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, capsys):
        fixture = f"{self.FIXTURES}/undef_register.s"
        assert main(["lint", fixture]) == 1
        text = capsys.readouterr().out
        assert "undef-register" in text
        assert "1 with findings" in text

    def test_json_output(self, capsys):
        import json

        fixture = f"{self.FIXTURES}/out_of_range_store.s"
        assert main(["lint", fixture, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        (report,) = data["reports"]
        (finding,) = report["findings"]
        assert finding["checker"] == "addr-range"

    def test_checks_filter(self, capsys):
        fixture = f"{self.FIXTURES}/undef_register.s"
        assert main(["lint", fixture, "--checks", "write-x0"]) == 0

    def test_unknown_checker_rejected(self, capsys):
        assert main(["lint", "--kernels", "--checks", "bogus"]) == 1
        assert "unknown checker" in capsys.readouterr().err

    def test_list_checkers(self, capsys):
        assert main(["lint", "--list-checkers"]) == 0
        text = capsys.readouterr().out
        assert "undef-register" in text
        assert "hwloop" in text

    def test_nothing_to_lint_is_an_error(self, capsys):
        assert main(["lint"]) == 1
        assert "nothing to lint" in capsys.readouterr().err

    def test_kernel_catalog_is_clean(self, capsys):
        assert main(["lint", "--kernels"]) == 0
        text = capsys.readouterr().out
        assert "0 with findings" in text

    def test_race_mode(self, capsys):
        assert main(["lint", "--race", "matmul"]) == 0
        text = capsys.readouterr().out
        assert "clean" in text
        assert "barrier epoch" in text


REGION_SOURCE = """
.region setup
    li   a0, 4
.endregion
.region spin
spin:
    addi a0, a0, -1
    bnez a0, spin
.endregion
    ebreak
"""


@pytest.fixture
def region_file(tmp_path):
    path = tmp_path / "regions.s"
    path.write_text(REGION_SOURCE)
    return path


class TestTrace:
    def test_exports_valid_chrome_trace(self, region_file, tmp_path, capsys):
        from repro.trace import validate_chrome_trace_file

        out = tmp_path / "trace.json"
        assert main(["trace", str(region_file), "--out", str(out)]) == 0
        assert validate_chrome_trace_file(str(out)) > 0
        text = capsys.readouterr().out
        assert "perfetto" in text

    def test_region_names_in_export(self, region_file, tmp_path):
        import json

        out = tmp_path / "trace.json"
        main(["trace", str(region_file), "--out", str(out)])
        names = {e["name"] for e in json.loads(out.read_text())["traceEvents"]
                 if e["ph"] == "X"}
        assert {"setup", "spin"} <= names

    def test_kernel_trace(self, tmp_path, capsys):
        from repro.trace import validate_chrome_trace_file

        out = tmp_path / "mm.json"
        assert main(["trace", "--kernel", "matmul_4bit",
                     "--out", str(out)]) == 0
        assert validate_chrome_trace_file(str(out)) > 0

    def test_needs_input_or_kernel(self, capsys):
        assert main(["trace"]) == 1
        assert "--kernel" in capsys.readouterr().err

    def test_unknown_kernel(self, capsys):
        assert main(["trace", "--kernel", "nope"]) == 1
        assert "unknown kernel" in capsys.readouterr().err


class TestProfile:
    def test_source_file_table(self, region_file, capsys):
        assert main(["profile", str(region_file)]) == 0
        text = capsys.readouterr().out
        assert "spin" in text and "setup" in text
        assert "TOTAL" in text

    def test_source_file_json(self, region_file, capsys):
        import json

        assert main(["profile", str(region_file), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cycles"] > 0
        assert "spin" in data["regions"]

    def test_kernel_table(self, capsys):
        assert main(["profile", "--kernel", "matmul_4bit"]) == 0
        text = capsys.readouterr().out
        assert "dotprod" in text and "quant" in text

    def test_kernel_json(self, capsys):
        import json

        assert main(["profile", "--kernel", "matmul_2bit", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel"] == "matmul_2bit"
        assert data["regions"]["dotprod"]["share"] > 0.5

    def test_list_catalog(self, capsys):
        assert main(["profile", "--list"]) == 0
        text = capsys.readouterr().out
        assert "conv_4bit" in text and "matmul_8bit" in text

    def test_needs_input_or_kernel(self, capsys):
        assert main(["profile"]) == 1
        assert "--kernel" in capsys.readouterr().err


class TestTrajectory:
    def test_requires_json(self, tmp_path, capsys):
        out = tmp_path / "traj.json"
        assert main(["report", "table3", "--trajectory", str(out)]) == 1
        assert "--json" in capsys.readouterr().err

    def test_writes_summary(self, tmp_path, capsys):
        import json

        out = tmp_path / "traj.json"
        assert main(["report", "table3", "--json",
                     "--trajectory", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-trajectory/1"
        assert doc["experiments"] == ["table3"]
        # Stdout stays pure JSON (the note goes to stderr).
        json.loads(capsys.readouterr().out)


class TestCompile:
    def test_plan_only_json(self, capsys):
        import json

        assert main(["compile", "--network", "mixed3",
                     "--plan-only", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["network"] == "mixed3"
        assert doc["total_tiles"] > len(doc["layers"])

    def test_plan_only_lint(self, capsys):
        assert main(["compile", "--network", "mixed3",
                     "--plan-only", "--lint"]) == 0
        text = capsys.readouterr().out
        assert "conv" in text and "linear" in text

    def test_unknown_network_rejected(self, capsys):
        assert main(["compile", "--network", "nope"]) == 1
        assert "nope" in capsys.readouterr().err


class TestTargets:
    def test_table_lists_all_targets(self, capsys):
        assert main(["targets"]) == 0
        text = capsys.readouterr().out
        for name in ("ri5cy", "xpulpv2", "xpulpnn", "xpulpnn-cluster8",
                     "stm32l4", "stm32h7"):
            assert name in text

    def test_family_filter(self, capsys):
        assert main(["targets", "--family", "arm"]) == 0
        text = capsys.readouterr().out
        assert "stm32l4" in text and "xpulpnn" not in text

    def test_json_round_trips_through_spec(self, capsys):
        import json

        from repro.target import TargetSpec

        assert main(["targets", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) >= 7
        specs = []
        for entry in payload:
            entry = dict(entry)
            # Derived annotations ride along with the spec fields.
            digest = entry.pop("digest")
            capabilities = entry.pop("capabilities")
            spec = TargetSpec.from_dict(entry)
            assert digest == spec.digest()
            assert capabilities == spec.capabilities()
            specs.append(spec)
        assert {"riscv", "arm"} <= {spec.family for spec in specs}

    def test_json_capability_flags(self, capsys):
        import json

        assert main(["targets", "--json"]) == 0
        by_name = {entry["name"]: entry
                   for entry in json.loads(capsys.readouterr().out)}
        nn = by_name["xpulpnn-cluster8"]["capabilities"]
        assert nn["cluster"] and nn["hw_quant"] and nn["subbyte_simd"]
        base = by_name["ri5cy"]["capabilities"]
        assert not base["hw_quant"] and not base["cluster"]
        assert all(len(e["digest"]) == 64 for e in by_name.values())

    def test_isa_strings_gate_passes_on_tree(self, capsys):
        assert main(["lint", "--isa-strings"]) == 0
        assert "isa-strings: OK" in capsys.readouterr().out

    def test_profile_accepts_target_flag(self, capsys):
        assert main(["profile", "--kernel", "matmul_4bit",
                     "--target", "xpulpnn-cluster2"]) == 0
        assert "cores" in capsys.readouterr().out.lower()

    def test_unknown_target_errors(self, capsys):
        assert main(["profile", "--kernel", "conv_4bit",
                     "--target", "gpu"]) == 1
        assert "gpu" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def job_file(self, tmp_path):
        import json

        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([
            {"kind": "scaling", "bits": 4, "cores": 2,
             "out_ch": 32, "reduction": 64},
            {"kind": "selftest", "mode": "ok", "value": 5},
        ]))
        return path

    def test_job_file_batch(self, job_file, tmp_path, capsys):
        assert main(["serve", str(job_file), "--quiet",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        text = capsys.readouterr().out
        assert "2 point(s)" in text and "FAILED" not in text

    def test_rerun_hits_cache(self, job_file, tmp_path, capsys):
        import json

        cache = str(tmp_path / "cache")
        main(["serve", str(job_file), "--quiet", "--cache-dir", cache])
        capsys.readouterr()
        assert main(["serve", str(job_file), "--quiet", "--cache-dir",
                     cache, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stats"]["cache"]["hits"] == 1  # selftest is uncached
        assert report["results"][0]["cached"] is True

    def test_failure_sets_exit_code(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "selftest", "mode": "raise"}))
        assert main(["serve", str(path), "--quiet", "--no-cache"]) == 1
        assert "ServeError" in capsys.readouterr().out

    def test_report_written_to_file(self, job_file, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main(["serve", str(job_file), "--quiet", "--no-cache",
                     "--label", "cli-test", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["label"] == "cli-test"
        assert len(report["results"]) == 2

    def test_bad_job_file_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "teapot"}')
        assert main(["serve", str(path), "--quiet", "--no-cache"]) == 1
        assert "unknown job kind" in capsys.readouterr().err

    def test_progress_streams_to_stderr(self, job_file, capsys):
        assert main(["serve", str(job_file), "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "done" in err


class TestSweep:
    def test_cartesian_expansion_runs(self, capsys):
        assert main(["sweep", "scaling", "bits=8,4", "cores=1,2",
                     "--base", "out_ch=32", "--base", "reduction=64",
                     "--no-cache", "--quiet"]) == 0
        assert "4 point(s)" in capsys.readouterr().out

    def test_expand_only_prints_jobs(self, capsys):
        import json

        assert main(["sweep", "scaling", "bits=8,4", "cores=1,2,4",
                     "--base", "out_ch=32", "--base", "reduction=64",
                     "--expand-only", "--no-cache", "--quiet"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        assert len(jobs) == 6
        assert all(j["kind"] == "scaling" for j in jobs)

    def test_skip_invalid(self, capsys):
        import json

        assert main(["sweep", "scaling", "bits=2", "cores=1,2,8",
                     "--base", "out_ch=8", "--base", "reduction=64",
                     "--skip-invalid", "--expand-only",
                     "--no-cache", "--quiet"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        assert [j["cores"] for j in jobs] == [1, 2]

    def test_invalid_point_errors_by_default(self, capsys):
        assert main(["sweep", "scaling", "bits=2", "cores=8",
                     "--base", "out_ch=8", "--no-cache", "--quiet"]) == 1
        assert "error" in capsys.readouterr().err

    def test_zero_points_rejected(self, capsys):
        assert main(["sweep", "scaling", "bits=2", "cores=8",
                     "--base", "out_ch=8", "--skip-invalid",
                     "--no-cache", "--quiet"]) == 1
        assert "zero valid points" in capsys.readouterr().err

    def test_bad_axis_spec_errors(self, capsys):
        assert main(["sweep", "scaling", "bits", "--no-cache",
                     "--quiet"]) == 1
        assert "bad axis" in capsys.readouterr().err


class TestExplore:
    def test_quick_space_runs_and_verifies(self, tmp_path, capsys):
        assert main(["explore", "--space", "quick", "--quiet",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        text = capsys.readouterr().out
        assert "staged search" in text
        assert "bit-identical" in text

    def test_report_and_trajectory_written(self, tmp_path, capsys):
        import json

        report = tmp_path / "explore.json"
        traj = tmp_path / "traj.json"
        assert main(["explore", "--space", "quick", "--quiet", "--no-cache",
                     "--no-verify", "--report", str(report),
                     "--trajectory", str(traj)]) == 0
        from repro.explore import validate_explore_report

        doc = json.loads(report.read_text())
        validate_explore_report(doc)
        entries = json.loads(traj.read_text())["entries"]
        assert any(k.startswith("explore/quick/") for k in entries)

    def test_axis_overrides(self, capsys):
        import json

        assert main(["explore", "--space", "quick", "--cores", "2",
                     "--tcdm", "64", "--points", "4:hw,4:sw",
                     "--quiet", "--no-cache", "--no-verify",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["space"]["cores"] == [2]
        assert {p["quant"] for p in doc["points"]} == {"hw", "sw"}

    def test_no_prune_simulates_everything(self, capsys):
        import json

        assert main(["explore", "--space", "quick", "--no-prune",
                     "--quiet", "--no-cache", "--no-verify",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["pruned"] == 0
        assert doc["stats"]["simulated"] == doc["stats"]["candidates"]

    def test_bad_point_spec_errors(self, capsys):
        assert main(["explore", "--space", "quick", "--points", "4hw",
                     "--quiet", "--no-cache"]) == 1
        assert "expected BITS:QUANT" in capsys.readouterr().err

    def test_unknown_space_errors(self, capsys):
        assert main(["explore", "--space", "warp", "--quiet",
                     "--no-cache"]) == 1
        assert "unknown search space" in capsys.readouterr().err

    def test_network_mode(self, tmp_path, capsys):
        assert main(["explore", "--network", "mixed3",
                     "--assign", "8,4,8", "--assign", "4,2,4",
                     "--quiet", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        text = capsys.readouterr().out
        assert "per-layer precision" in text
        assert "8/4/8" in text and "4/2/4" in text
