"""Banked TCDM: word interleaving and per-cycle conflict accounting."""

import pytest

from repro.cluster import Tcdm
from repro.soc.memmap import TCDM_BASE


@pytest.fixture
def tcdm():
    return Tcdm(num_banks=16)


class TestBankMapping:
    def test_word_interleaved(self, tcdm):
        assert tcdm.bank_of(TCDM_BASE) == 0
        assert tcdm.bank_of(TCDM_BASE + 4) == 1
        assert tcdm.bank_of(TCDM_BASE + 60) == 15
        assert tcdm.bank_of(TCDM_BASE + 64) == 0

    def test_sub_word_accesses_share_bank(self, tcdm):
        # All four bytes of a word live in the same bank.
        for offset in range(4):
            assert tcdm.bank_of(TCDM_BASE + offset) == 0

    def test_contains(self, tcdm):
        assert tcdm.contains(TCDM_BASE, 4)
        assert tcdm.contains(TCDM_BASE + tcdm.size - 4, 4)
        assert not tcdm.contains(TCDM_BASE + tcdm.size, 4)
        assert not tcdm.contains(TCDM_BASE - 4, 4)


class TestConflictAccounting:
    def test_distinct_banks_no_stall(self, tcdm):
        for i in range(16):
            stall, grant = tcdm.access(TCDM_BASE + 4 * i, when=100)
            assert stall == 0 and grant == 100
        assert tcdm.conflicts == 0

    def test_same_bank_same_cycle_serializes(self, tcdm):
        addr = TCDM_BASE + 4
        s0, g0 = tcdm.access(addr, when=100)
        s1, g1 = tcdm.access(addr, when=100)
        s2, g2 = tcdm.access(addr, when=100)
        assert (s0, g0) == (0, 100)
        assert (s1, g1) == (1, 101)
        assert (s2, g2) == (2, 102)
        assert tcdm.conflicts == 2
        assert tcdm.conflict_cycles == 3

    def test_bank_frees_next_cycle(self, tcdm):
        addr = TCDM_BASE
        tcdm.access(addr, when=100)
        stall, grant = tcdm.access(addr, when=101)
        assert stall == 0 and grant == 101
        assert tcdm.conflicts == 0

    def test_same_bank_different_words_conflict(self, tcdm):
        # Two words 64 B apart map to the same bank (16 banks).
        tcdm.access(TCDM_BASE, when=50)
        stall, _ = tcdm.access(TCDM_BASE + 64, when=50)
        assert stall == 1
        assert tcdm.conflicts_by_bank[0] == 1

    def test_conflict_rate(self, tcdm):
        tcdm.access(TCDM_BASE, when=0)
        tcdm.access(TCDM_BASE, when=0)
        assert tcdm.accesses == 2
        assert tcdm.conflict_rate == pytest.approx(0.5)

    def test_reset_timing_keeps_contents(self, tcdm):
        tcdm.mem.store(TCDM_BASE, 4, 0xDEADBEEF)
        tcdm.access(TCDM_BASE, when=0)
        tcdm.access(TCDM_BASE, when=0)
        tcdm.reset_timing()
        assert tcdm.accesses == 0 and tcdm.conflicts == 0
        assert tcdm.mem.load(TCDM_BASE, 4) == 0xDEADBEEF
        stall, _ = tcdm.access(TCDM_BASE, when=0)
        assert stall == 0
