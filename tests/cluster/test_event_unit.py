"""Event-unit barrier: correctness under every arrival order."""

import itertools

import pytest

from repro.cluster import Cluster, EventUnit
from repro.errors import SimError
from repro.soc.memmap import EU_BARRIER_WAIT, EU_NUM_CORES


class TestEventUnitBookkeeping:
    def test_all_arrival_orders_release_at_max(self):
        for order in itertools.permutations(range(3)):
            eu = EventUnit(3)
            times = {0: 100, 1: 250, 2: 170}
            complete = []
            for core in order:
                complete.append(eu.arrive(core, times[core]))
            assert complete == [False, False, True]
            assert eu.release_time == 250
            assert eu.release() == times
            assert eu.barriers_completed == 1

    def test_double_arrival_rejected(self):
        eu = EventUnit(2)
        eu.arrive(0, 10)
        with pytest.raises(SimError):
            eu.arrive(0, 11)

    def test_early_release_rejected(self):
        eu = EventUnit(2)
        eu.arrive(0, 10)
        with pytest.raises(SimError):
            eu.release()

    def test_reusable_after_release(self):
        eu = EventUnit(2)
        eu.arrive(0, 1)
        eu.arrive(1, 2)
        eu.release()
        assert eu.arrive(1, 5) is False
        assert eu.arrive(0, 9) is True
        assert eu.release_time == 9
        eu.release()
        assert eu.barriers_completed == 2


#: SPMD program: each core spins ``hart_id * 16`` iterations, hits the
#: barrier, then reads the cycle counter's stand-in (its own clock jump is
#: visible through idle_cycles instead).
_BARRIER_PROGRAM = f"""
    csrr  t0, 0xF14
    slli  t0, t0, 4
    beq   t0, zero, wait
spin:
    addi  t0, t0, -1
    bne   t0, zero, spin
wait:
    li    t1, {EU_BARRIER_WAIT:#x}
    lw    t2, 0(t1)
    ebreak
"""


class TestBarrierOnCluster:
    @pytest.mark.parametrize("num_cores", [2, 4, 8])
    def test_release_aligns_all_clocks(self, num_cores):
        from repro.asm import assemble

        cluster = Cluster(num_cores=num_cores)
        program = assemble(_BARRIER_PROGRAM, isa="xpulpnn", base=0x1000_0000)
        run = cluster.run_program(program)
        assert run.barriers == 1
        # All cores halt within a few cycles of each other: the barrier
        # jumped every clock to the slowest arrival.
        clocks = [p.cycles for p in run.per_core]
        assert max(clocks) - min(clocks) <= 4  # post-barrier skew only
        # Cores that spun less idled more; the busiest core idles least.
        idles = [p.idle_cycles for p in run.per_core]
        assert idles[0] == max(idles)
        assert idles[-1] == min(idles)
        assert all(p.active_cycles + p.idle_cycles == p.cycles
                   for p in run.per_core)

    def test_deadlock_detected(self):
        from repro.asm import assemble

        # Core 0 barriers; core 1 halts without arriving.
        src = f"""
            csrr  t0, 0xF14
            bne   t0, zero, out
            li    t1, {EU_BARRIER_WAIT:#x}
            lw    t2, 0(t1)
        out:
            ebreak
        """
        cluster = Cluster(num_cores=2)
        program = assemble(src, isa="xpulpnn", base=0x1000_0000)
        with pytest.raises(SimError, match="deadlock"):
            cluster.run_program(program)

    def test_num_cores_register(self):
        from repro.asm import assemble

        src = f"""
            li   t0, {EU_NUM_CORES:#x}
            lw   a0, 0(t0)
            ebreak
        """
        cluster = Cluster(num_cores=4)
        cluster.run_program(assemble(src, isa="xpulpnn", base=0x1000_0000))
        assert all(cpu.regs[10] == 4 for cpu in cluster.cores)
