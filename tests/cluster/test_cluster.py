"""Cluster execution: SPMD stepping, contention, and aggregation."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import SimError
from repro.soc.memmap import TCDM_BASE


def _assemble(src: str):
    from repro.asm import assemble

    return assemble(src, isa="xpulpnn", base=TCDM_BASE)


class TestConfig:
    def test_banking_factor(self):
        assert ClusterConfig(num_cores=8).num_banks == 16
        assert ClusterConfig(num_cores=4, banking_factor=4).num_banks == 16

    def test_rejects_empty_cluster(self):
        with pytest.raises(SimError):
            ClusterConfig(num_cores=0)


class TestSpmdExecution:
    def test_hart_ids_distinct(self):
        cluster = Cluster(num_cores=4)
        run = cluster.run_program(_assemble("csrr a0, 0xF14\nebreak"))
        assert [cpu.regs[10] for cpu in cluster.cores] == [0, 1, 2, 3]
        assert run.cycles > 0

    def test_sharded_stores_disjoint(self):
        # Each core writes its hart id to its own TCDM word.
        base = TCDM_BASE + 0x800
        src = f"""
            csrr t0, 0xF14
            slli t1, t0, 2
            li   t2, {base:#x}
            add  t2, t2, t1
            sw   t0, 0(t2)
            ebreak
        """
        cluster = Cluster(num_cores=8)
        cluster.run_program(_assemble(src))
        words = cluster.mem.read_words(base, 8)
        assert list(words) == list(range(8))

    def test_lockstep_same_word_staggers_once(self):
        # All cores hammer ONE shared word: the first encounter serializes
        # them (N-1 conflicts), after which the stagger persists and the
        # loop runs conflict-free.
        src = f"""
            li   t0, {TCDM_BASE + 0x700:#x}
            li   t1, 32
        loop:
            lw   t2, 0(t0)
            addi t1, t1, -1
            bne  t1, zero, loop
            ebreak
        """
        cluster = Cluster(num_cores=4)
        run = cluster.run_program(_assemble(src))
        assert run.tcdm_conflicts == 3
        assert run.tcdm_conflict_cycles == 6  # stalls of 1+2+3
        agg = run.aggregate
        assert agg.stall_tcdm_contention == 6

    def test_aggregate_merges_all_cores(self):
        cluster = Cluster(num_cores=4)
        run = cluster.run_program(_assemble("nop\nnop\nebreak"))
        agg = run.aggregate
        assert agg.instructions == sum(p.instructions for p in run.per_core)
        assert agg.instructions == 4 * 3
        assert run.cycles == max(p.cycles for p in run.per_core)

    def test_instruction_budget_enforced(self):
        src = """
        spin:
            j spin
        """
        cluster = Cluster(num_cores=2)
        program = _assemble(src)
        cluster.reset()
        cluster.load_program(program)
        with pytest.raises(SimError, match="exceeded"):
            cluster.run(entry=program.entry, max_instructions=1000)

    def test_single_core_cluster_matches_cpu(self):
        """A 1-core cluster on private data must count like a bare Cpu."""
        from repro.core import Cpu

        src = "li a0, 5\nli a1, 7\nadd a2, a0, a1\nebreak"
        cluster = Cluster(num_cores=1)
        run = cluster.run_program(_assemble(src))

        from repro.asm import assemble

        cpu = Cpu(isa="xpulpnn")
        cpu.load_program(assemble(src, isa="xpulpnn"))
        perf = cpu.run()
        assert run.per_core[0].cycles == perf.cycles
        assert run.per_core[0].instructions == perf.instructions
        assert cluster.cores[0].regs[12] == 12

    def test_l2_visible_to_cores(self, rng):
        from repro.soc.memmap import L2_BASE

        cluster = Cluster(num_cores=2)
        value = int(rng.integers(1, 2**31))
        cluster.mem.store(L2_BASE + 0x40, 4, value)
        src = f"""
            li t0, {L2_BASE + 0x40:#x}
            lw a0, 0(t0)
            ebreak
        """
        cluster.run_program(_assemble(src))
        assert all(cpu.regs[10] == value for cpu in cluster.cores)
