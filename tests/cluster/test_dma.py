"""Cluster DMA: byte-exact copies and the transfer-cycle model."""

import numpy as np
import pytest

from repro.cluster import (
    BYTES_PER_CYCLE,
    Cluster,
    DmaDescriptor,
    OVERLAP_CONTENTION_SHIFT,
    SETUP_CYCLES,
)
from repro.errors import SimError
from repro.soc.memmap import (
    DMA_BASE,
    L2_BASE,
    TCDM_BASE,
)


@pytest.fixture
def cluster():
    return Cluster(num_cores=2)


class TestFunctionalCopy:
    def test_1d_byte_exact_vs_direct_copy(self, cluster, rng):
        blob = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        cluster.mem.write_bytes(L2_BASE, blob)
        cluster.dma.transfer(L2_BASE, TCDM_BASE, len(blob))
        assert cluster.mem.read_bytes(TCDM_BASE, len(blob)) == blob

    def test_2d_strided_gather(self, cluster, rng):
        # Gather 8 rows of 32 B from a 128 B-pitch L2 image into a dense
        # TCDM tile; must equal the manual strided copy.
        image = rng.integers(0, 256, 8 * 128, dtype=np.uint8).tobytes()
        cluster.mem.write_bytes(L2_BASE, image)
        cluster.dma.transfer(L2_BASE, TCDM_BASE, length=32,
                             src_stride=128, reps=8)
        expected = b"".join(image[r * 128:r * 128 + 32] for r in range(8))
        assert cluster.mem.read_bytes(TCDM_BASE, 8 * 32) == expected

    def test_2d_strided_scatter(self, cluster, rng):
        tile = rng.integers(0, 256, 4 * 16, dtype=np.uint8).tobytes()
        cluster.mem.write_bytes(TCDM_BASE, tile)
        cluster.dma.transfer(TCDM_BASE, L2_BASE, length=16,
                             dst_stride=64, reps=4)
        for r in range(4):
            assert (cluster.mem.read_bytes(L2_BASE + r * 64, 16)
                    == tile[r * 16:(r + 1) * 16])

    def test_degenerate_descriptor_rejected(self, cluster):
        with pytest.raises(SimError):
            cluster.dma.transfer(L2_BASE, TCDM_BASE, 0)


class TestCycleModel:
    def test_descriptor_cycles(self):
        assert DmaDescriptor(length=64).cycles() == SETUP_CYCLES + 8
        assert DmaDescriptor(length=1).cycles() == SETUP_CYCLES + 1
        assert (DmaDescriptor(length=32, reps=4).cycles()
                == SETUP_CYCLES + 4 * (32 // BYTES_PER_CYCLE))

    def test_transfers_serialize(self, cluster):
        cluster.mem.write_bytes(L2_BASE, bytes(64))
        done1 = cluster.dma.transfer(L2_BASE, TCDM_BASE, 64, when=0)
        done2 = cluster.dma.transfer(L2_BASE, TCDM_BASE + 64, 64, when=0)
        assert done1 == SETUP_CYCLES + 8
        assert done2 == done1 + SETUP_CYCLES + 8
        assert cluster.dma.busy_until == done2

    def test_idle_engine_starts_at_request_time(self, cluster):
        cluster.mem.write_bytes(L2_BASE, bytes(8))
        done = cluster.dma.transfer(L2_BASE, TCDM_BASE, 8, when=1000)
        assert done == 1000 + SETUP_CYCLES + 1


class TestRegisterFrontEnd:
    def test_program_dma_from_assembly(self, cluster, rng):
        """A core programs a 1D descriptor, polls STATUS, then reads the
        data the DMA moved — all through the register file."""
        from repro.asm import assemble

        blob = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        cluster.mem.write_bytes(L2_BASE + 0x100, blob)
        src = f"""
            csrr  t0, 0xF14
            bne   t0, zero, done      # only core 0 drives the DMA
            li    t0, {DMA_BASE:#x}
            li    t1, {L2_BASE + 0x100:#x}
            sw    t1, 0(t0)           # SRC
            li    t1, {TCDM_BASE + 0x40:#x}
            sw    t1, 4(t0)           # DST
            li    t1, 64
            sw    t1, 8(t0)           # LEN
            sw    zero, 12(t0)        # SRC_STRIDE
            sw    zero, 16(t0)        # DST_STRIDE
            li    t1, 1
            sw    t1, 20(t0)          # REPS
            sw    t1, 24(t0)          # START
        poll:
            lw    t2, 28(t0)          # STATUS
            bne   t2, zero, poll
            li    t3, {TCDM_BASE + 0x40:#x}
            lw    a0, 0(t3)
        done:
            ebreak
        """
        program = assemble(src, isa="xpulpnn", base=TCDM_BASE + 0x1000)
        cluster.run_program(program)
        assert cluster.mem.read_bytes(TCDM_BASE + 0x40, 64) == blob
        expected_word = int.from_bytes(blob[:4], "little")
        assert cluster.cores[0].regs[10] == expected_word
        # The poll loop must have spun for the modeled transfer time.
        assert cluster.dma.total_cycles == SETUP_CYCLES + 8


class TestOverlapAccounting:
    """Compute/DMA concurrency: overlapped windows cost, disjoint don't."""

    def _stage(self, cluster, nbytes=1024):
        cluster.mem.write_bytes(L2_BASE, bytes(nbytes))
        return cluster.dma.transfer(L2_BASE, TCDM_BASE, nbytes)

    def test_concurrent_window_sees_contention(self, cluster):
        done = self._stage(cluster)
        overlap = cluster.dma.overlap_cycles(50, done + 100)
        assert overlap == done - 50
        assert cluster.dma.contention_cycles(50, done + 100) == \
            overlap >> OVERLAP_CONTENTION_SHIFT

    def test_serialized_window_is_free(self, cluster):
        done = self._stage(cluster)
        assert cluster.dma.overlap_cycles(done, done + 500) == 0
        assert cluster.dma.contention_cycles(done, done + 500) == 0

    def test_transfers_serialize_on_the_engine(self, cluster):
        first = self._stage(cluster)
        second = cluster.dma.transfer(L2_BASE, TCDM_BASE + 1024, 1024,
                                      when=first - 10)
        windows = cluster.dma.transfers
        assert windows[1].start == first
        assert second > first
        # Engine serialization keeps the overlap within the window.
        assert cluster.dma.overlap_cycles(0, second) == second

    def test_degenerate_window_is_free(self, cluster):
        self._stage(cluster)
        assert cluster.dma.overlap_cycles(100, 100) == 0
        assert cluster.dma.overlap_cycles(200, 100) == 0
