"""Cortex-M4/M7 CMSIS-NN cost model tests."""

import pytest

from repro.baselines import CORES, STM32H743, STM32L476, CmsisConvModel, conv_cycles
from repro.errors import ModelError
from repro.qnn import PAPER_LAYER
from tests.conftest import TINY_GEOMETRY


class TestCores:
    def test_operating_points(self):
        assert STM32L476.freq_hz == 80e6
        assert STM32H743.freq_hz == 400e6
        assert STM32H743.power_w > STM32L476.power_w

    def test_m7_faster_per_cycle(self):
        assert STM32H743.alu < STM32L476.alu
        assert STM32H743.load < STM32L476.load

    def test_cycles_for_mix(self):
        mix = {"alu": 10, "load": 5}
        assert STM32L476.cycles_for_mix(mix) == 10 + 10

    def test_unknown_class_raises(self):
        with pytest.raises(ModelError):
            STM32L476.cycles_for_mix({"teleport": 1})


class TestConvModel:
    def test_macs_per_cycle_plausible_8bit(self):
        """CMSIS-NN 8-bit conv on M4 runs at roughly 0.4-0.7 MAC/cycle."""
        model = CmsisConvModel(PAPER_LAYER, 8)
        assert 0.3 <= model.macs_per_cycle(STM32L476) <= 0.8

    def test_subbyte_slower_than_8bit(self):
        """Unpacking makes sub-byte kernels *slower* despite less data —
        the paper's core motivation (§I)."""
        for core in CORES.values():
            c8 = CmsisConvModel(PAPER_LAYER, 8).cycles(core)
            c4 = CmsisConvModel(PAPER_LAYER, 4).cycles(core)
            c2 = CmsisConvModel(PAPER_LAYER, 2).cycles(core)
            assert c4 > c8
            assert c2 > c8

    def test_m7_fewer_cycles_than_m4(self):
        for bits in (8, 4, 2):
            model = CmsisConvModel(PAPER_LAYER, bits)
            assert model.cycles(STM32H743) < model.cycles(STM32L476)

    def test_cycles_scale_with_geometry(self):
        small = CmsisConvModel(TINY_GEOMETRY, 8).cycles(STM32L476)
        large = CmsisConvModel(PAPER_LAYER, 8).cycles(STM32L476)
        assert large / small == pytest.approx(
            PAPER_LAYER.macs / TINY_GEOMETRY.macs, rel=0.3
        )

    def test_efficiency_orders_of_magnitude_below_xpulpnn(self):
        """Fig 9 shape: low single-digit GMAC/s/W at best."""
        for bits in (8, 4, 2):
            model = CmsisConvModel(PAPER_LAYER, bits)
            assert model.gmacs_per_watt(STM32L476) < 10
            assert model.gmacs_per_watt(STM32H743) < 5

    def test_l4_more_efficient_than_h7(self):
        """The low-power L4 wins on efficiency, the H7 on speed (paper
        Fig 9 vs Fig 8)."""
        model = CmsisConvModel(PAPER_LAYER, 2)
        assert model.gmacs_per_watt(STM32L476) > model.gmacs_per_watt(STM32H743)
        assert model.runtime_s(STM32H743) < model.runtime_s(STM32L476)

    def test_mix_is_positive(self):
        mix = CmsisConvModel(PAPER_LAYER, 4).total_mix()
        assert all(v > 0 for v in mix.values())
        assert mix["mac"] == PAPER_LAYER.macs / 2  # SMLAD = 2 MACs

    def test_bad_bits(self):
        with pytest.raises(ModelError):
            CmsisConvModel(PAPER_LAYER, 3)

    def test_convenience_wrapper(self):
        assert conv_cycles("STM32L4", TINY_GEOMETRY, 8) == \
            CmsisConvModel(TINY_GEOMETRY, 8).cycles(STM32L476)
