"""Functional Thumb-2 machine and the CMSIS MatMul validation kernel."""

import numpy as np
import pytest

from repro.baselines import (
    CmsisConvModel,
    CmsisMatmulKernel,
    STM32H743,
    STM32L476,
    Thumb2Builder,
    Thumb2Machine,
)
from repro.errors import KernelError, SimError
from repro.qnn import ConvGeometry


def run_ops(ops, regs=None, core=STM32L476):
    b = Thumb2Builder()
    for op in ops:
        b.emit(*op)
    machine = Thumb2Machine(core=core)
    for index, value in (regs or {}).items():
        machine.regs[index] = value & 0xFFFFFFFF
    machine.run(b)
    return machine


class TestDataProcessing:
    def test_mov_add_sub(self):
        m = run_ops([("mov", "r0", 5), ("add", "r0", "r0", 3),
                     ("sub", "r1", "r0", 10)])
        assert m.regs[0] == 8
        assert m.regs[1] == 0xFFFFFFFE

    def test_flags_from_subs(self):
        m = run_ops([("mov", "r0", 5), ("subs", "r0", "r0", 5)])
        assert m.z and not m.n
        m = run_ops([("mov", "r0", 3), ("subs", "r0", "r0", 5)])
        assert m.n and not m.z

    def test_shifts(self):
        m = run_ops([("mov", "r0", 0x80000000), ("lsr", "r1", "r0", 4),
                     ("asr", "r2", "r0", 4), ("lsl", "r3", "r0", 1)])
        assert m.regs[1] == 0x08000000
        assert m.regs[2] == 0xF8000000
        assert m.regs[3] == 0

    def test_logic(self):
        m = run_ops([("mov", "r0", 0b1100), ("mov", "r1", 0b1010),
                     ("and", "r2", "r0", "r1"), ("orr", "r3", "r0", "r1"),
                     ("eor", "r4", "r0", "r1"), ("bic", "r5", "r0", "r1")])
        assert (m.regs[2], m.regs[3], m.regs[4], m.regs[5]) == (8, 14, 6, 4)

    def test_usat(self):
        m = run_ops([("mov", "r0", 300), ("usat", "r1", 8, "r0"),
                     ("mov", "r2", -5 & 0xFFFFFFFF), ("usat", "r3", 8, "r2")])
        assert m.regs[1] == 255
        assert m.regs[3] == 0


class TestDspOps:
    def test_smlad_dual_mac(self):
        # rn = (3, -2), rm = (10, 5), ra = 100 -> 100 + 30 - 10 = 120
        rn = (0xFFFE << 16) | 3
        rm = (5 << 16) | 10
        m = run_ops([("smlad", "r0", "r1", "r2", "r3")],
                    regs={1: rn, 2: rm, 3: 100})
        assert m.regs[0] == 120

    def test_smuad(self):
        rn = (2 << 16) | 3
        rm = (4 << 16) | 5
        m = run_ops([("smuad", "r0", "r1", "r2")], regs={1: rn, 2: rm})
        assert m.regs[0] == 3 * 5 + 2 * 4

    def test_sxtb16(self):
        m = run_ops([("sxtb16", "r0", "r1")], regs={1: 0x1280FE7F})
        # bytes 0 and 2: 0x7F and 0x80 -> 0x007F and 0xFF80
        assert m.regs[0] == 0xFF80_007F

    def test_sxtb16_ror8(self):
        m = run_ops([("sxtb16", "r0", "r1", 8)], regs={1: 0x1280FE7F})
        # bytes 1 and 3: 0xFE and 0x12
        assert m.regs[0] == 0x0012_FFFE

    def test_uxtb16(self):
        m = run_ops([("uxtb16", "r0", "r1")], regs={1: 0x1280FE7F})
        # bytes 0 and 2 zero-extended: 0x7F and 0x80
        assert m.regs[0] == 0x0080_007F

    def test_pkhbt_pkhtb(self):
        m = run_ops([("pkhbt", "r0", "r1", "r2", 16),
                     ("pkhtb", "r3", "r1", "r2", 16)],
                    regs={1: 0xAAAA_BBBB, 2: 0xCCCC_DDDD})
        assert m.regs[0] == 0xDDDD_BBBB
        assert m.regs[3] == 0xAAAA_CCCC


class TestMemoryAndControl:
    def test_ldr_str_postindex(self):
        b = Thumb2Builder()
        b.emit("mov", "r0", 0x100)
        b.emit("mov", "r1", 42)
        b.emit("str", "r1", "r0", 4, True)
        b.emit("mov", "r2", 0x100)
        b.emit("ldr", "r3", "r2", 0)
        machine = Thumb2Machine()
        machine.run(b)
        assert machine.regs[3] == 42
        assert machine.regs[0] == 0x104

    def test_signed_loads(self):
        machine = Thumb2Machine()
        machine.mem.store(0x100, 2, 0x8001)
        b = Thumb2Builder()
        b.emit("mov", "r0", 0x100)
        b.emit("ldrsh", "r1", "r0", 0)
        b.emit("ldrh", "r2", "r0", 0)
        machine.run(b)
        assert machine.regs[1] == 0xFFFF8001
        assert machine.regs[2] == 0x8001

    def test_count_down_loop(self):
        b = Thumb2Builder()
        b.emit("mov", "r0", 0)
        b.emit("mov", "r1", 5)
        b.label("loop")
        b.emit("add", "r0", "r0", 2)
        b.emit("subs", "r1", "r1", 1)
        b.branch("ne", "loop")
        machine = Thumb2Machine()
        machine.run(b)
        assert machine.regs[0] == 10

    def test_branch_cycle_costs(self):
        b = Thumb2Builder()
        b.emit("mov", "r0", 2)
        b.label("loop")
        b.emit("subs", "r0", "r0", 1)
        b.branch("ne", "loop")
        machine = Thumb2Machine(core=STM32L476)
        perf = machine.run(b)
        # 1 mov + 2 subs + 1 taken (3) + 1 not-taken (1)
        assert perf.cycles == 1 + 2 + 3 + 1

    def test_runaway_guard(self):
        b = Thumb2Builder()
        b.label("forever")
        b.branch("al", "forever")
        with pytest.raises(SimError):
            Thumb2Machine().run(b, max_instructions=100)

    def test_unimplemented_raises(self):
        b = Thumb2Builder()
        b.emit("vfma.f32", "r0", "r1", "r2")
        with pytest.raises(SimError):
            Thumb2Machine().run(b)


class TestCmsisMatmulKernel:
    @pytest.fixture(scope="class")
    def case(self):
        rng = np.random.default_rng(9)
        K, CO = 64, 8
        w = rng.integers(-128, 128, (CO, K)).astype(np.int32)
        x0 = rng.integers(0, 256, K).astype(np.int32)
        x1 = rng.integers(0, 256, K).astype(np.int32)
        return K, CO, w, x0, x1

    def test_functional_vs_golden(self, case):
        K, CO, w, x0, x1 = case
        result = CmsisMatmulKernel(K, CO).run(w, x0, x1)
        expected = np.stack([x0.astype(np.int64) @ w.T,
                             x1.astype(np.int64) @ w.T])
        assert np.array_equal(result.output, expected)

    def test_cost_model_validated_m4(self, case):
        """The analytic matmul phase must agree with the executing kernel
        within 10 % — the cost model's key calibration check."""
        K, CO, w, x0, x1 = case
        result = CmsisMatmulKernel(K, CO).run(w, x0, x1, core=STM32L476)
        g = ConvGeometry(8, 8, 32, 16, 3, 3, 1, 1)
        model = CmsisConvModel(g, 8)
        model_cpm = STM32L476.cycles_for_mix(model.matmul_mix()) / g.macs
        measured_cpm = result.cycles / (K * CO * 2)
        assert measured_cpm == pytest.approx(model_cpm, rel=0.10)

    def test_cost_model_validated_m7(self, case):
        K, CO, w, x0, x1 = case
        result = CmsisMatmulKernel(K, CO).run(w, x0, x1, core=STM32H743)
        g = ConvGeometry(8, 8, 32, 16, 3, 3, 1, 1)
        model = CmsisConvModel(g, 8)
        model_cpm = STM32H743.cycles_for_mix(model.matmul_mix()) / g.macs
        measured_cpm = result.cycles / (K * CO * 2)
        assert measured_cpm == pytest.approx(model_cpm, rel=0.10)

    def test_m7_faster_than_m4(self, case):
        K, CO, w, x0, x1 = case
        kern = CmsisMatmulKernel(K, CO)
        m4 = kern.run(w, x0, x1, core=STM32L476).cycles
        m7 = kern.run(w, x0, x1, core=STM32H743).cycles
        assert m7 < m4

    def test_much_slower_than_xpulpnn(self, case):
        """Cross-stack check: the ARM q7 MatMul needs several times the
        cycles of the RISC-V 8-bit kernel (Fig 8's 8-bit column)."""
        from repro.kernels import MatmulConfig, MatmulKernel

        K, CO, w, x0, x1 = case
        arm = CmsisMatmulKernel(K, CO).run(w, x0, x1, core=STM32L476)
        riscv = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=8,
                                          quant="none")).run(w, x0, x1)
        assert arm.cycles > 2.0 * riscv.cycles

    def test_validation(self):
        with pytest.raises(KernelError):
            CmsisMatmulKernel(65, 8)
        with pytest.raises(KernelError):
            CmsisMatmulKernel(64, 7)


class TestCmsisSubbyteKernel:
    """Extended-CMSIS-NN int4/int2 kernels: functional + the paper's
    key qualitative claim that quantization does NOT speed up ARM MCUs."""

    @pytest.fixture(scope="class")
    def case(self):
        rng = np.random.default_rng(10)
        K, CO = 64, 8
        x0 = rng.integers(0, 256, K).astype(np.int32)
        x1 = rng.integers(0, 256, K).astype(np.int32)
        return K, CO, rng, x0, x1

    @pytest.mark.parametrize("bits", [4, 2])
    def test_functional_vs_golden(self, case, bits):
        from repro.baselines.cmsis_kernels import CmsisSubbyteMatmulKernel

        K, CO, rng, x0, x1 = case
        lo = -(1 << (bits - 1))
        w = rng.integers(lo, 1 << (bits - 1), (CO, K)).astype(np.int32)
        result = CmsisSubbyteMatmulKernel(K, CO, bits).run(w, x0, x1)
        expected = np.stack([x0.astype(np.int64) @ w.T,
                             x1.astype(np.int64) @ w.T])
        assert np.array_equal(result.output, expected)

    @pytest.mark.parametrize("bits", [4, 2])
    def test_subbyte_slower_than_8bit_per_mac(self, case, bits):
        """§I of the paper: without ISA support, quantization saves memory
        but costs time.  The widening amortizes over one pixel pair here
        (the memory-preserving configuration of ref [12])."""
        from repro.baselines.cmsis_kernels import (
            CmsisMatmulKernel,
            CmsisSubbyteMatmulKernel,
        )

        K, CO, rng, x0, x1 = case
        lo = -(1 << (bits - 1))
        w = rng.integers(lo, 1 << (bits - 1), (CO, K)).astype(np.int32)
        w8 = rng.integers(-128, 128, (CO, K)).astype(np.int32)
        sub = CmsisSubbyteMatmulKernel(K, CO, bits).run(w, x0, x1)
        ref = CmsisMatmulKernel(K, CO).run(w8, x0, x1)
        assert sub.cycles > 1.5 * ref.cycles

    def test_riscv_subbyte_goes_the_other_way(self, case):
        """The same comparison on the extended RISC-V core flips: 4-bit is
        FASTER than 8-bit — the whole point of XpulpNN."""
        from repro.kernels import MatmulConfig, MatmulKernel

        K, CO, rng, x0, x1 = case
        w4 = rng.integers(-8, 8, (CO, K)).astype(np.int32)
        w8 = rng.integers(-128, 128, (CO, K)).astype(np.int32)
        x0s = rng.integers(0, 16, K).astype(np.int32)
        x1s = rng.integers(0, 16, K).astype(np.int32)
        r4 = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                       quant="none")).run(w4, x0s, x1s)
        r8 = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=8,
                                       quant="none")).run(w8, x0s, x1s)
        assert r4.cycles < r8.cycles

    def test_cost_model_same_order(self, case):
        """The analytic sub-byte cost stays within 2x of the executing
        kernel (the micro kernel widens per pixel pair; the model's
        amortization matches the layer-level accounting)."""
        from repro.baselines.cmsis_kernels import CmsisSubbyteMatmulKernel

        K, CO, rng, x0, x1 = case
        w = rng.integers(-8, 8, (CO, K)).astype(np.int32)
        measured = CmsisSubbyteMatmulKernel(K, CO, 4).run(w, x0, x1)
        measured_cpm = measured.cycles / (K * CO * 2)
        model = CmsisConvModel(ConvGeometry(8, 8, 32, 16, 3, 3, 1, 1), 4)
        mix = model.matmul_mix()
        model_cpm = STM32L476.cycles_for_mix(mix) / model.geometry.macs
        assert 0.5 < measured_cpm / model_cpm < 2.0

    def test_validation(self):
        from repro.baselines.cmsis_kernels import CmsisSubbyteMatmulKernel

        with pytest.raises(KernelError):
            CmsisSubbyteMatmulKernel(60, 8, 4)
        with pytest.raises(KernelError):
            CmsisSubbyteMatmulKernel(64, 8, 8)
