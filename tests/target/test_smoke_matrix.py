"""CI smoke matrix: ``repro profile --kernel conv_4bit`` on every
registered RISC-V target (single cores and clusters alike)."""

import json

import pytest

from repro.cli import main
from repro.target import riscv_targets

TARGETS = [spec.name for spec in riscv_targets()]


@pytest.mark.parametrize("target", TARGETS)
def test_conv_4bit_profiles_on_target(target, capsys):
    assert main(["profile", "--kernel", "conv_4bit",
                 "--target", target, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kernel"] == "conv_4bit"
    assert payload["cycles"] > 0


def test_matrix_covers_clusters():
    assert {"ri5cy", "xpulpv2", "xpulpnn"} <= set(TARGETS)
    assert any(t.startswith("xpulpnn-cluster") for t in TARGETS)
