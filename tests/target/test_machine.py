"""Machine factory: specs build correctly wired simulators."""

import pytest

from repro.errors import TargetError
from repro.soc.memmap import L2_SIZE
from repro.target import arm_core, build_machine, get_target, names
from repro.trace import Tracer


class TestBuildMachine:
    def test_single_core(self):
        m = build_machine(names.RI5CY)
        assert m.cores == 1 and m.cluster is None and m.soc is None
        assert m.cpu.mem.size == L2_SIZE
        assert m.spec is get_target(names.RI5CY)

    def test_mem_request_grows_beyond_l2(self):
        m = build_machine(names.XPULPNN, mem_bytes=2 * L2_SIZE)
        assert m.cpu.mem.size == 2 * L2_SIZE

    def test_cluster(self):
        m = build_machine("xpulpnn-cluster4")
        assert m.cores == 4 and m.cpu is None
        assert m.cluster.config.num_cores == 4

    def test_cluster_tracer_attached(self):
        tracer = Tracer()
        m = build_machine("xpulpnn-cluster2", tracer=tracer)
        assert m.run_target() is m.cluster

    def test_soc(self):
        m = build_machine(names.XPULPNN, soc=True)
        assert m.soc is not None and m.run_target() is m.soc

    def test_arm_target_has_no_machine(self):
        with pytest.raises(TargetError, match="stm32h7"):
            build_machine(names.STM32H7)

    def test_arm_core_lookup(self):
        core = arm_core(names.STM32L4)
        assert core.name == names.STM32L4_DISPLAY
        with pytest.raises(TargetError):
            arm_core(names.RI5CY)
