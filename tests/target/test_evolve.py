"""``TargetSpec.evolve``: validated overrides with digest stability."""

import pytest

from repro.errors import TargetError
from repro.target import get_target, names, register_ephemeral


@pytest.fixture
def base():
    return get_target(names.CLUSTER_PREFIX + "8")


class TestEvolve:
    def test_noop_evolve_preserves_digest(self, base):
        assert base.evolve().digest() == base.digest()
        assert base.evolve() == base

    def test_identity_override_preserves_digest(self, base):
        assert base.evolve(cores=base.cores).digest() == base.digest()

    def test_equal_overrides_equal_digests(self, base):
        a = base.evolve(name="evolve-test", cores=4, tcdm_bytes=64 * 1024)
        b = base.evolve(name="evolve-test", cores=4, tcdm_bytes=64 * 1024)
        assert a.digest() == b.digest()
        assert a == b

    def test_different_overrides_different_digests(self, base):
        a = base.evolve(name="evolve-test", cores=4)
        b = base.evolve(name="evolve-test", cores=2)
        assert a.digest() != b.digest()

    def test_original_untouched(self, base):
        before = base.digest()
        base.evolve(name="evolve-test", cores=2)
        assert base.digest() == before

    def test_unknown_field_rejected(self, base):
        with pytest.raises(TargetError, match="unknown fields"):
            base.evolve(corez=4)

    def test_evolve_revalidates(self, base):
        with pytest.raises(TargetError):
            base.evolve(cores=0)

    def test_round_trips_through_dict(self, base):
        evolved = base.evolve(name="evolve-test", l2_bytes=256 * 1024)
        assert type(base).from_dict(evolved.to_dict()) == evolved


class TestCapabilities:
    def test_cluster_capabilities(self, base):
        caps = base.capabilities()
        assert caps["riscv"] and caps["cluster"]
        assert caps["subbyte_simd"] and caps["hw_quant"]

    def test_single_core_lacks_cluster(self):
        caps = get_target(names.XPULPNN).capabilities()
        assert not caps["cluster"]
        assert caps["hw_quant"]

    def test_baseline_lacks_subbyte(self):
        caps = get_target(names.RI5CY).capabilities()
        assert not caps["subbyte_simd"]
        assert not caps["hw_quant"]


class TestRegisterEphemeral:
    def test_resolvable_not_listed(self, base):
        from repro.target import list_targets

        spec = base.evolve(name="explore-ephemeral-test", cores=2)
        register_ephemeral(spec)
        assert get_target(spec.name) == spec
        assert spec.name not in {s.name for s in list_targets()}

    def test_same_digest_idempotent(self, base):
        spec = base.evolve(name="explore-ephemeral-idem", cores=2)
        assert register_ephemeral(spec) == register_ephemeral(spec)

    def test_content_collision_rejected(self, base):
        spec = base.evolve(name="explore-ephemeral-clash", cores=2)
        register_ephemeral(spec)
        other = base.evolve(name="explore-ephemeral-clash", cores=4)
        with pytest.raises(TargetError, match="different content"):
            register_ephemeral(other)

    def test_cannot_shadow_canonical_target(self, base):
        spec = base.evolve(cores=2)  # keeps the canonical name
        with pytest.raises(TargetError, match="shadow"):
            register_ephemeral(spec)
