"""Target registry: specs, lookup, round-trips, capability queries."""

import dataclasses

import pytest

from repro.errors import TargetError
from repro.target import (
    FAMILY_ARM,
    FAMILY_RISCV,
    TargetSpec,
    arm_targets,
    get_target,
    list_targets,
    riscv_targets,
    target_names,
)
from repro.target import names
from repro.soc.memmap import L2_SIZE, TCDM_SIZE


class TestRegistry:
    def test_lists_at_least_seven_targets(self):
        assert len(target_names()) >= 7

    def test_canonical_names_present(self):
        expected = {
            names.RI5CY, names.XPULPV2, names.XPULPNN,
            "xpulpnn-cluster2", "xpulpnn-cluster4", "xpulpnn-cluster8",
            names.STM32L4, names.STM32H7,
        }
        assert expected <= set(target_names())

    def test_arm_baselines_registered(self):
        arm = {spec.name for spec in arm_targets()}
        assert arm == {names.STM32L4, names.STM32H7}
        assert all(spec.family == FAMILY_ARM for spec in arm_targets())

    def test_riscv_targets_share_l2(self):
        for spec in riscv_targets():
            assert spec.l2_bytes == L2_SIZE

    def test_cluster_targets_have_tcdm(self):
        for cores in (2, 4, 8):
            spec = get_target(f"xpulpnn-cluster{cores}")
            assert spec.cluster and spec.cores == cores
            assert spec.tcdm_bytes == TCDM_SIZE

    def test_lookup_is_case_insensitive(self):
        assert get_target("XPULPNN") is get_target(names.XPULPNN)
        assert get_target("STM32L4").display == names.STM32L4_DISPLAY

    def test_parametric_cluster_names_resolve(self):
        spec = get_target("xpulpnn-cluster16")
        assert spec.cores == 16 and spec.cluster
        # ... without appearing in the canonical listing
        assert "xpulpnn-cluster16" not in target_names()

    def test_spec_passthrough(self):
        spec = get_target(names.RI5CY)
        assert get_target(spec) is spec

    def test_unknown_target_message_lists_known_names(self):
        with pytest.raises(TargetError, match="gpu"):
            get_target("gpu")
        with pytest.raises(TargetError, match="xpulpnn-cluster8"):
            get_target("gpu")

    def test_non_string_rejected(self):
        with pytest.raises(TargetError, match="TargetSpec"):
            get_target(42)


class TestSpec:
    def test_round_trip_every_registered_target(self):
        for spec in list_targets():
            assert TargetSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        payload = get_target(names.RI5CY).to_dict()
        payload["sparkle"] = True
        with pytest.raises(TargetError, match="sparkle"):
            TargetSpec.from_dict(payload)

    def test_specs_are_frozen(self):
        spec = get_target(names.XPULPNN)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.cores = 2

    def test_capability_queries(self):
        ext = get_target(names.XPULPNN)
        base = get_target(names.RI5CY)
        # prefix, exact mnemonic, and extension-set forms
        assert ext.has("pv.qnt") and ext.has("pv.qnt.n")
        assert ext.has(names.XPULPNN) and ext.subbyte_simd and ext.hw_quant
        assert not base.has("pv.qnt") and not base.subbyte_simd
        assert base.has(names.XPULPV2) and base.has("pv.sdotsp.b")
        assert not get_target(names.STM32L4).has("pv.qnt")

    def test_quant_for(self):
        ext = get_target(names.XPULPNN)
        base = get_target(names.RI5CY)
        assert ext.quant_for(8) == "shift" == base.quant_for(8)
        assert ext.quant_for(4) == "hw"
        assert base.quant_for(4) == "sw"

    def test_mem_bytes_floors_at_l2(self):
        spec = get_target(names.XPULPNN)
        assert spec.mem_bytes(0) == L2_SIZE
        assert spec.mem_bytes(2 * L2_SIZE) == 2 * L2_SIZE

    def test_validation(self):
        spec = get_target(names.XPULPNN)
        with pytest.raises(TargetError, match="family"):
            dataclasses.replace(spec, family="mips")
        with pytest.raises(TargetError, match="quant"):
            dataclasses.replace(spec, quant="fp")
        with pytest.raises(TargetError, match="cluster"):
            dataclasses.replace(spec, cores=4)
