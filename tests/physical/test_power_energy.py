"""Power and energy models: calibration points and derived metrics."""

import pytest

from repro.core.perf import PerfCounters
from repro.errors import ModelError
from repro.physical import (
    EfficiencyPoint,
    OPS_PER_MAC,
    cycle_fractions,
    efficiency,
    memory_accesses_per_cycle,
    model_for,
)


def _perf(**classes) -> PerfCounters:
    perf = PerfCounters()
    for cls, count in classes.items():
        perf.by_class[cls] = count
    weights = {"qnt_n": 9, "qnt_c": 5, "div": 35}
    perf.cycles = sum(count * weights.get(cls, 1) for cls, count in classes.items())
    perf.instructions = sum(classes.values())
    return perf


#: A MatMul-like mix: half loads, half dot products.
MATMUL_PERF = _perf(load=450, mul=450, alu=80, store=30, hwloop=10)


class TestFractions:
    def test_fractions_sum_close_to_one(self):
        fracs = cycle_fractions(MATMUL_PERF)
        assert sum(v for k, v in fracs.items() if k != "stall") == pytest.approx(1.0)

    def test_qnt_weighted_by_occupancy(self):
        perf = _perf(alu=1, qnt_n=1)
        fracs = cycle_fractions(perf)
        assert fracs["qnt_n"] == pytest.approx(9 / 10)

    def test_empty_perf_raises(self):
        with pytest.raises(ModelError):
            cycle_fractions(PerfCounters())

    def test_memory_accesses_include_qnt_reads(self):
        perf = _perf(load=10, store=5, qnt_n=2, qnt_c=1)
        accesses = memory_accesses_per_cycle(perf) * perf.cycles
        assert accesses == 10 + 5 + 16 + 4


class TestCalibration:
    """The model must reproduce the paper's Table III operating points
    when fed MatMul-shaped mixes (tolerances ~5 %)."""

    def test_extended_core_8bit_near_paper(self):
        bd = model_for("xpulpnn").evaluate(MATMUL_PERF, sub_byte_bits=8)
        assert bd.core_total_mw == pytest.approx(1.22, rel=0.06)

    def test_baseline_core_8bit_near_paper(self):
        bd = model_for("ri5cy").evaluate(MATMUL_PERF, sub_byte_bits=8)
        assert bd.core_total_mw == pytest.approx(1.15, rel=0.06)

    def test_soc_8bit_near_paper(self):
        bd = model_for("xpulpnn").evaluate(MATMUL_PERF, sub_byte_bits=8)
        assert bd.soc_total_mw == pytest.approx(6.04, rel=0.05)

    def test_nopm_overhead_on_8bit(self):
        pm = model_for("xpulpnn").evaluate(MATMUL_PERF, sub_byte_bits=8)
        nopm = model_for("xpulpnn", power_mgmt=False).evaluate(
            MATMUL_PERF, sub_byte_bits=8, workload_class="matmul8")
        assert nopm.core_total_mw - pm.core_total_mw == pytest.approx(0.20, abs=0.03)

    def test_nopm_subbyte_penalty_large(self):
        nopm = model_for("xpulpnn", power_mgmt=False)
        pm = model_for("xpulpnn")
        delta4 = (nopm.evaluate(MATMUL_PERF, 4, "matmul4").soc_total_mw
                  - pm.evaluate(MATMUL_PERF, 4, "matmul4").soc_total_mw)
        assert delta4 == pytest.approx(2.43, abs=0.05)

    def test_nibble_region_cheaper_than_byte(self):
        pm = model_for("xpulpnn")
        p8 = pm.evaluate(MATMUL_PERF, sub_byte_bits=8).core_total_mw
        p4 = pm.evaluate(MATMUL_PERF, sub_byte_bits=4).core_total_mw
        assert p4 < p8

    def test_crumb_region_above_nibble(self):
        """Paper: 2-bit MatMul measures *above* 4-bit (5.87 vs 5.71 mW)."""
        pm = model_for("xpulpnn")
        p4 = pm.evaluate(MATMUL_PERF, sub_byte_bits=4).soc_total_mw
        p2 = pm.evaluate(MATMUL_PERF, sub_byte_bits=2).soc_total_mw
        assert p2 > p4

    def test_unknown_core_raises(self):
        with pytest.raises(ModelError):
            model_for("cortex-a72")

    def test_unknown_workload_class_raises(self):
        with pytest.raises(ModelError):
            model_for("xpulpnn", power_mgmt=False).evaluate(
                MATMUL_PERF, 8, workload_class="crypto")


class TestEfficiency:
    def test_basic_metrics(self):
        point = efficiency("x", macs=1_000_000, cycles=500_000, power_w=0.005)
        assert point.macs_per_cycle == 2.0
        assert point.runtime_s == pytest.approx(500_000 / 250e6)
        assert point.gmacs_per_s == pytest.approx(0.5)
        assert point.gmacs_per_s_per_w == pytest.approx(100.0)

    def test_ops_double_macs(self):
        point = efficiency("x", macs=100, cycles=100, power_w=1.0)
        assert point.gops_per_s == OPS_PER_MAC * point.gmacs_per_s

    def test_ratio_and_speedup(self):
        fast = efficiency("fast", macs=100, cycles=100, power_w=0.001)
        slow = efficiency("slow", macs=100, cycles=1000, power_w=0.001)
        assert fast.speedup_over(slow) == pytest.approx(10.0)
        assert fast.efficiency_ratio(slow) == pytest.approx(10.0)

    def test_custom_frequency(self):
        point = EfficiencyPoint("stm", macs=100, cycles=100,
                                freq_hz=80e6, power_w=0.01)
        assert point.runtime_s == pytest.approx(100 / 80e6)

    def test_energy_per_inference(self):
        point = efficiency("x", macs=1, cycles=250_000, power_w=0.006)
        assert point.energy_per_inference_uj == pytest.approx(6.0)
