"""Area model: Table III composition must match the paper exactly."""

import pytest

from repro.physical import AreaModel

#: Paper Table III (area half): block -> (noPM um^2, PM um^2).
PAPER = {
    "total": (21424.9, 21912.8),
    "dotp_unit": (6755.8, 6844.4),
    "id_stage": (6530.2, 6677.8),
    "ex_stage": (11129.1, 11251.6),
    "lsu": (610.8, 591.2),
}


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestBaseline:
    def test_total(self, model):
        assert model.baseline().total == pytest.approx(19729.9)

    def test_blocks(self, model):
        base = model.baseline()
        assert base.blocks["dotp_unit"] == pytest.approx(5708.9)
        assert base.blocks["lsu"] == pytest.approx(518.0)


class TestExtended:
    @pytest.mark.parametrize("block", sorted(PAPER))
    def test_no_pm_matches_paper(self, model, block):
        report = model.extended(power_mgmt=False)
        value = report.total if block == "total" else report.blocks[block]
        assert value == pytest.approx(PAPER[block][0], abs=0.2)

    @pytest.mark.parametrize("block", sorted(PAPER))
    def test_pm_matches_paper(self, model, block):
        report = model.extended(power_mgmt=True)
        value = report.total if block == "total" else report.blocks[block]
        assert value == pytest.approx(PAPER[block][1], abs=0.2)

    def test_headline_overheads(self, model):
        rows = model.table3_area()
        assert rows["total"]["Ext_PM_overhead_%"] == pytest.approx(11.1, abs=0.1)
        assert rows["dotp_unit"]["Ext_PM_overhead_%"] == pytest.approx(19.9, abs=0.1)
        assert rows["total"]["Ext_noPM_overhead_%"] == pytest.approx(8.59, abs=0.05)

    def test_pm_shrinks_lsu(self, model):
        """Operand isolation lets synthesis shrink the LSU port (paper:
        610.8 -> 591.2 um^2)."""
        assert model.extended(True).blocks["lsu"] < \
            model.extended(False).blocks["lsu"]

    def test_core_area_mm2(self, model):
        assert model.core_area_mm2() == pytest.approx(0.022, abs=0.001)

    def test_soc_area(self, model):
        assert model.SOC_AREA_MM2 == pytest.approx(0.998)

    def test_overhead_vs_helper(self, model):
        overhead = model.extended(True).overhead_vs(model.baseline())
        assert overhead["total"] == pytest.approx(11.1, abs=0.1)
