"""Spans, fleet recorder, and the merged Perfetto timeline export."""

import json

from repro.telemetry import FleetRecorder, JobRecord, Span, worker_span
from repro.trace.perfetto import (
    FLEET_DEVICE_PID_BASE,
    FLEET_SERVICE_PID,
    FLEET_WORKER_PID_BASE,
    fleet_trace,
    validate_chrome_trace,
    write_fleet_trace,
)


class TestSpans:
    def test_child_inherits_trace_id(self):
        root = Span.root("sweep:test", total=3)
        child = root.start_child("job")
        assert child.context.trace_id == root.context.trace_id
        assert child.context.parent_id == root.context.span_id
        assert child.context.span_id != root.context.span_id

    def test_round_trips_through_json(self):
        root = Span.root("sweep:test")
        root.finish(ok=True)
        restored = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert restored.name == root.name
        assert restored.context == root.context
        assert restored.attrs == {"ok": True}
        assert restored.duration_s == root.duration_s

    def test_worker_span_joins_parent_context(self):
        root = Span.root("sweep:test")
        shipped = worker_span(root.context.to_dict(), "run:scaling")
        assert shipped.context.trace_id == root.context.trace_id
        assert shipped.context.parent_id == root.context.span_id

    def test_worker_span_without_context_is_detached_root(self):
        span = worker_span(None, "run:selftest")
        assert span.context.trace_id
        assert span.context.parent_id == ""


def _recorder(device_trace=None):
    recorder = FleetRecorder()
    root = recorder.begin("demo", workers=2, total=3)
    base = root.start_s
    worker = root.start_child("run:scaling")
    worker.start_s, worker.end_s = base + 0.01, base + 0.05
    recorder.record(JobRecord(
        index=0, kind="scaling", digest="a" * 64, status="done", lane=0,
        worker_pid=4242, queue_wait_s=0.002, start_s=base + 0.01,
        end_s=base + 0.05, span=worker.to_dict()))
    recorder.record(JobRecord(
        index=1, kind="scaling", digest="b" * 64, status="failed", lane=1,
        worker_pid=4243, start_s=base + 0.01, end_s=base + 0.03,
        error_type="ServeError"))
    recorder.record(JobRecord(
        index=2, kind="scaling", digest="c" * 64, status="cached",
        start_s=base + 0.001, end_s=base + 0.001))
    if device_trace is not None:
        recorder.attach_device_trace(0, device_trace)
    recorder.finish(ok=False)
    return recorder


DEVICE = {"traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 7, "tid": 3,
     "args": {"name": "core 3"}},
    {"name": "dma", "cat": "dma", "ph": "X", "ts": 0, "dur": 400,
     "pid": 7, "tid": 0, "args": {"bytes": 64}},
    {"name": "mac", "cat": "compute", "ph": "X", "ts": 400, "dur": 600,
     "pid": 7, "tid": 3},
]}


class TestRecorder:
    def test_lanes_skip_inline_and_cached(self):
        assert _recorder().lanes == [0, 1]

    def test_job_lookup_and_span_attach(self):
        recorder = _recorder()
        recorder.attach_span(1, {"name": "late", "span_id": "x"})
        assert recorder.job(1).span["name"] == "late"
        assert recorder.job(99) is None

    def test_device_trace_from_path(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(DEVICE))
        recorder = _recorder()
        recorder.attach_device_trace(0, str(path))
        assert recorder.job(0).device_trace is not None

    def test_bad_device_payloads_ignored(self, tmp_path):
        recorder = _recorder()
        recorder.attach_device_trace(0, str(tmp_path / "missing.json"))
        recorder.attach_device_trace(0, {"no": "traceEvents"})
        assert recorder.job(0).device_trace is None

    def test_to_dict_is_json_safe(self):
        recorder = _recorder(DEVICE)
        doc = json.loads(json.dumps(recorder.to_dict()))
        assert doc["label"] == "demo"
        assert [j["status"] for j in doc["jobs"]] == \
            ["done", "failed", "cached"]
        assert doc["jobs"][0]["has_device_trace"] is True


class TestFleetTrace:
    def test_export_passes_trace_validator(self):
        payload = fleet_trace(_recorder(DEVICE), title="demo")
        assert validate_chrome_trace(payload) > 0

    def test_pid_layout(self):
        payload = fleet_trace(_recorder(DEVICE), title="demo")
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert FLEET_SERVICE_PID in pids
        assert FLEET_WORKER_PID_BASE in pids        # lane 0 track
        assert FLEET_WORKER_PID_BASE + 1 in pids    # lane 1 track
        assert FLEET_DEVICE_PID_BASE + 0 in pids    # job 0 device track

    def test_service_track_has_root_and_job_rows(self):
        payload = fleet_trace(_recorder(), title="demo")
        service = [e for e in payload["traceEvents"]
                   if e["pid"] == FLEET_SERVICE_PID and e["ph"] == "X"]
        names = {e["name"] for e in service}
        assert "sweep:demo" in names
        cats = {e["cat"] for e in service}
        assert {"service", "job.done", "job.failed",
                "job.cached", "queue"} <= cats

    def test_worker_track_carries_span_identity(self):
        recorder = _recorder()
        payload = fleet_trace(recorder, title="demo")
        (row,) = [e for e in payload["traceEvents"]
                  if e["pid"] == FLEET_WORKER_PID_BASE and e["ph"] == "X"]
        assert row["name"] == "run:scaling"
        assert row["args"]["span_id"] == \
            recorder.job(0).span["span_id"]

    def test_device_events_rebased_into_wall_window(self):
        recorder = _recorder(DEVICE)
        payload = fleet_trace(recorder, title="demo")
        job = recorder.job(0)
        window_start = int(round((job.start_s - recorder.root.start_s)
                                 * 1e6))
        window_us = int(round((job.end_s - job.start_s) * 1e6))
        rows = [e for e in payload["traceEvents"]
                if e["pid"] == FLEET_DEVICE_PID_BASE and e["ph"] == "X"]
        assert len(rows) == 2
        for row in rows:
            assert row["ts"] >= window_start
            assert row["ts"] + row["dur"] <= window_start + window_us + 1
        # Original cycle stamps survive in args for exact reading.
        dma = next(r for r in rows if r["name"] == "dma")
        assert dma["args"]["cycle"] == 0
        assert dma["args"]["cycles"] == 400
        assert dma["args"]["bytes"] == 64
        assert dma["cat"] == "device.dma"

    def test_write_fleet_trace_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        payload = write_fleet_trace(_recorder(DEVICE), str(path),
                                    title="demo")
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert validate_chrome_trace(on_disk) > 0
