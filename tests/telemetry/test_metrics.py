"""Metrics registry: determinism, merge semantics, exposition."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    MetricsError,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
    metric_key,
    render_prom,
    split_key,
    use_registry,
    validate_metrics_snapshot,
)


class TestKeys:
    def test_bare_name(self):
        assert metric_key("serve.jobs", {}) == "serve.jobs"

    def test_labels_sorted(self):
        key = metric_key("pool.jobs", {"lane": 2, "kind": "scaling"})
        assert key == "pool.jobs{kind=scaling,lane=2}"

    @pytest.mark.parametrize("bad", ["", "a{b", "a}b", "a=b", "a,b", "a\nb"])
    def test_reserved_characters_rejected(self, bad):
        with pytest.raises(MetricsError):
            metric_key(bad, {})

    def test_split_is_inverse(self):
        key = metric_key("pool.jobs", {"lane": 2, "kind": "scaling"})
        name, labels = split_key(key)
        assert name == "pool.jobs"
        assert labels == {"kind": "scaling", "lane": "2"}
        assert split_key("bare") == ("bare", {})


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter_value("c") == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("c").inc(-1)

    def test_counter_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("jobs", kind="a").inc(2)
        registry.counter("jobs", kind="b").inc(3)
        registry.counter("other").inc(100)
        assert registry.counter_total("jobs") == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7)
        registry.gauge("g").set(3)
        assert registry.snapshot()["gauges"]["g"] == 3

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 9.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]    # <=1, <=2, +inf
        assert hist.count == 4
        assert hist.sum == 12.0

    @pytest.mark.parametrize("bounds", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_histogram_rejects_bad_boundaries(self, bounds):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", buckets=bounds)

    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1) is registry.counter("c", a=1)
        assert registry.counter("c", a=1) is not registry.counter("c", a=2)

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


class TestSnapshot:
    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b").inc(2)
            registry.counter("a", k="v").inc(1)
            registry.gauge("g").set(0.5)
            registry.histogram("h", buckets=(1.0,)).observe(0.25)
            return registry.snapshot()

        assert json.dumps(build(), sort_keys=True) == \
            json.dumps(build(), sort_keys=True)

    def test_snapshot_validates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        assert validate_metrics_snapshot(registry.snapshot()) == 2

    def test_validator_rejects_wrong_schema(self):
        with pytest.raises(MetricsError):
            validate_metrics_snapshot({"schema": "repro-metrics/0"})

    def test_validator_rejects_count_mismatch(self):
        snapshot = {
            "schema": METRICS_SCHEMA,
            "histograms": {"h": {"boundaries": [1.0], "counts": [1, 0],
                                 "sum": 0.5, "count": 2}},
        }
        with pytest.raises(MetricsError):
            validate_metrics_snapshot(snapshot)


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(2)
        b.histogram("h", buckets=(1.0,)).observe(2.0)

        a.merge_snapshot(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["counters"]["c"] == 5
        assert snapshot["gauges"]["g"] == 5
        assert snapshot["histograms"]["h"]["counts"] == [1, 1]
        assert snapshot["histograms"]["h"]["count"] == 2

    def test_boundary_mismatch_is_hard_error(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(MetricsError):
            a.merge_snapshot(b.snapshot())

    def test_sharded_equals_serial(self):
        """The process-safety contract: splitting deterministic
        observations across N registries and merging the snapshots is
        bit-identical to recording them all in one registry."""
        values = list(range(12))
        serial = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(4)]
        for i, value in enumerate(values):
            for registry in (serial, shards[i % 4]):
                registry.counter("jobs", kind="x").inc()
                registry.counter("cycles").inc(value * 100)
                registry.histogram("h").observe(float(value))
        merged = merge_snapshots(*[s.snapshot() for s in shards])
        assert merged == serial.snapshot()


def _snapshots(draw_values):
    registry = MetricsRegistry()
    for value in draw_values:
        registry.counter("n").inc(value)
        registry.histogram("h").observe(float(value))
    return registry.snapshot()


# Integer observations keep float sums exact, so merged snapshots can be
# compared bit-for-bit rather than approximately.
observations = st.lists(st.integers(min_value=0, max_value=10**6),
                        max_size=30)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(a=observations, b=observations, c=observations)
    def test_histogram_merge_is_associative(self, a, b, c):
        sa, sb, sc = _snapshots(a), _snapshots(b), _snapshots(c)
        left = merge_snapshots(merge_snapshots(sa, sb), sc)
        right = merge_snapshots(sa, merge_snapshots(sb, sc))
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(a=observations, b=observations)
    def test_histogram_merge_is_commutative(self, a, b):
        sa, sb = _snapshots(a), _snapshots(b)
        assert merge_snapshots(sa, sb) == merge_snapshots(sb, sa)

    @settings(max_examples=50, deadline=None)
    @given(a=observations)
    def test_empty_snapshot_is_identity(self, a):
        sa = _snapshots(a)
        empty = MetricsRegistry().snapshot()
        assert merge_snapshots(sa, empty) == sa
        assert merge_snapshots(empty, sa) == sa


class TestProm:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("serve.jobs", status="done").inc(3)
        registry.gauge("serve.dedupe_ratio").set(0.5)
        registry.histogram("pool.wait", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("pool.wait", buckets=(1.0, 2.0)).observe(1.5)
        text = render_prom(registry.snapshot())
        assert '# TYPE repro_serve_jobs counter' in text
        assert 'repro_serve_jobs{status="done"} 3' in text
        assert 'repro_serve_dedupe_ratio 0.5' in text
        # buckets are cumulative; +Inf equals the total count
        assert 'repro_pool_wait_bucket{le="1.0"} 1' in text
        assert 'repro_pool_wait_bucket{le="2.0"} 2' in text
        assert 'repro_pool_wait_bucket{le="+Inf"} 2' in text
        assert 'repro_pool_wait_count 2' in text


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = default_registry()
        with use_registry() as scoped:
            assert default_registry() is scoped
            assert scoped is not before
        assert default_registry() is before

    def test_module_helpers_hit_current_default(self):
        from repro.telemetry import metrics as tmetrics

        with use_registry() as scoped:
            tmetrics.counter("x").inc()
            assert scoped.counter_value("x") == 1

    def test_default_buckets_are_fixed_and_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
