"""Perf-regression sentinel: exact vs banded series, verdicts."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_BAND,
    PERFDIFF_SCHEMA,
    PerfDiffError,
    diff_files,
    diff_trajectories,
    load_tolerances,
    load_trajectory,
    render_verdict,
    series_tolerance,
)

TRAJ = {"schema": "repro-trajectory/1", "entries": {
    "cluster/points/0/cycles": 125000,
    "cluster/points/0/speedup": 3.72,
    "serve/throughput_jobs_per_s": 40.0,
    "bench/sim_ips": 210000.0,
}}


def _doc(**overrides):
    doc = json.loads(json.dumps(TRAJ))
    doc["entries"].update(overrides)
    return doc


class TestTolerancePolicy:
    def test_cycle_series_default_exact(self):
        assert series_tolerance("cluster/points/0/cycles") == ("exact", 0.0)

    def test_throughput_prefixes_get_band(self):
        assert series_tolerance("serve/x") == ("band", DEFAULT_BAND)
        assert series_tolerance("bench/x", band=0.1) == ("band", 0.1)

    def test_override_longest_pattern_wins(self):
        tol = {"serve/*": 0.5, "serve/through*": 0.1}
        assert series_tolerance("serve/throughput", tolerances=tol) == \
            ("band", 0.1)
        assert series_tolerance("serve/other", tolerances=tol) == \
            ("band", 0.5)

    def test_zero_tolerance_forces_exact(self):
        assert series_tolerance("serve/x", tolerances={"serve/*": 0}) == \
            ("exact", 0.0)

    def test_override_can_band_a_cycle_series(self):
        kind, tol = series_tolerance("cluster/points/0/cycles",
                                     tolerances={"cluster/*": 0.05})
        assert (kind, tol) == ("band", 0.05)


class TestDiff:
    def test_identical_documents_are_clean(self):
        verdict = diff_trajectories(TRAJ, _doc())
        assert verdict["ok"] is True
        assert verdict["schema"] == PERFDIFF_SCHEMA
        assert verdict["checked"] == 4
        assert verdict["exact_checked"] == 2
        assert verdict["band_checked"] == 2
        assert verdict["regressions"] == []

    def test_cycle_drift_of_one_is_a_regression(self):
        verdict = diff_trajectories(
            TRAJ, _doc(**{"cluster/points/0/cycles": 125001}))
        assert verdict["ok"] is False
        (reg,) = verdict["regressions"]
        assert reg["series"] == "cluster/points/0/cycles"
        assert reg["kind"] == "exact"

    def test_throughput_inside_band_passes(self):
        verdict = diff_trajectories(
            TRAJ, _doc(**{"serve/throughput_jobs_per_s": 32.0}))
        assert verdict["ok"] is True

    def test_throughput_outside_band_fails(self):
        verdict = diff_trajectories(
            TRAJ, _doc(**{"serve/throughput_jobs_per_s": 20.0}))
        assert verdict["ok"] is False
        (reg,) = verdict["regressions"]
        assert reg["kind"] == "band"
        assert reg["tolerance"] == DEFAULT_BAND

    def test_band_is_symmetric(self):
        faster = diff_trajectories(
            TRAJ, _doc(**{"serve/throughput_jobs_per_s": 60.0}))
        assert faster["ok"] is False  # +50% also flags (machine anomaly)

    def test_added_series_never_fail(self):
        verdict = diff_trajectories(TRAJ, _doc(**{"new/series": 1}))
        assert verdict["ok"] is True
        assert verdict["added"] == ["new/series"]

    def test_missing_series_fail_only_in_strict_mode(self):
        new = _doc()
        del new["entries"]["bench/sim_ips"]
        assert diff_trajectories(TRAJ, new)["ok"] is True
        strict = diff_trajectories(TRAJ, new, strict_missing=True)
        assert strict["ok"] is False
        assert strict["missing"] == ["bench/sim_ips"]

    def test_tolerances_override_applies(self):
        new = _doc(**{"serve/throughput_jobs_per_s": 39.0})
        tight = diff_trajectories(TRAJ, new,
                                  tolerances={"serve/*": 0.01})
        assert tight["ok"] is False
        loose = diff_trajectories(TRAJ, new,
                                  tolerances={"serve/*": 0.1})
        assert loose["ok"] is True


class TestFilesAndRender:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_diff_files_round_trip(self, tmp_path):
        old = self._write(tmp_path, "old.json", TRAJ)
        new = self._write(tmp_path, "new.json", _doc())
        assert diff_files(old, new)["ok"] is True

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PerfDiffError, match="no such file"):
            load_trajectory(str(tmp_path / "gone.json"))

    def test_wrong_schema_raises(self, tmp_path):
        path = self._write(tmp_path, "bad.json", {"schema": "other/1"})
        with pytest.raises(PerfDiffError, match="expected"):
            load_trajectory(path)

    def test_load_tolerances_rejects_negatives(self, tmp_path):
        path = self._write(tmp_path, "tol.json", {"serve/*": -1})
        with pytest.raises(PerfDiffError):
            load_tolerances(path)

    def test_render_clean_and_regressed(self):
        clean = render_verdict(diff_trajectories(TRAJ, _doc()))
        assert clean.endswith("verdict: OK")
        bad = render_verdict(diff_trajectories(
            TRAJ, _doc(**{"cluster/points/0/cycles": 1})))
        assert "bit-identical" in bad
        assert bad.endswith("verdict: REGRESSED")

    def test_committed_baseline_is_self_consistent(self):
        """The CI gate's happy path: the repo baseline vs itself."""
        from pathlib import Path

        baseline = str(Path(__file__).resolve().parents[2]
                       / "benchmarks" / "results" / "trajectory.json")
        verdict = diff_files(baseline, baseline)
        assert verdict["ok"] is True
        assert verdict["checked"] > 0
        assert verdict["regressions"] == []
