"""End-to-end telemetry through the batch service and worker pool.

The acceptance criteria live here: deterministic counters aggregate
identically whether a sweep ran inline or sharded across 4 workers,
the metrics snapshot reconciles with the SweepReport, and failures
(including timed-out workers) are fully attributable from the event
log alone.
"""

import io
import json

import pytest

from repro.serve import (
    ResultCache,
    ScalingJob,
    SelfTestJob,
    SimulationService,
    run_jobs,
)
from repro.telemetry import (
    EventLog,
    FleetRecorder,
    use_registry,
    validate_events,
    validate_metrics_snapshot,
)
from repro.trace.perfetto import validate_chrome_trace

JOBS = [ScalingJob(bits=bits, cores=cores, out_ch=32, reduction=64)
        for bits in (8, 4) for cores in (1, 2)]


def _run(workers):
    with use_registry() as registry:
        service = SimulationService(workers=workers)
        report = service.run(JOBS, label=f"w{workers}")
        return report, registry.snapshot()


class TestShardedEqualsSerial:
    """Counters fed deterministic quantities must not depend on how the
    batch was sharded: 4 workers' shipped snapshots fold into exactly
    the serial run's numbers."""

    def test_counters_identical_serial_vs_four_workers(self):
        serial_report, serial = _run(0)
        pool_report, pool = _run(4)
        assert serial_report.ok and pool_report.ok
        # Every counter series — runner.*, executor.*, serve.* — agrees
        # bit-for-bit.  (Histograms carry wall-clock and differ by
        # construction; they are deliberately not compared.)
        assert serial["counters"] == pool["counters"]
        assert serial["counters"]["runner.jobs{kind=scaling}"] == len(JOBS)
        assert serial["counters"]["runner.simulated_cycles"] > 0

    def test_report_snapshot_matches_live_registry(self):
        report, snapshot = _run(2)
        assert report.metrics == snapshot
        assert validate_metrics_snapshot(snapshot) > 0


class TestReconciliation:
    def test_snapshot_reconciles_with_sweep_report(self, tmp_path):
        jobs = JOBS + [JOBS[0]]  # one dedupe clone
        with use_registry() as registry:
            service = SimulationService(cache=ResultCache(tmp_path / "c"))
            first = service.run(jobs, label="cold")
            second = service.run(jobs, label="warm")
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        for report in (first, second):
            assert report.ok
        assert counters["serve.batches"] == 2
        assert counters["serve.jobs{status=executed}"] == \
            first.stats["executed"] + second.stats["executed"]
        # Warm run: every job (including the cold run's dedupe clone)
        # is answered straight from the cache.
        assert counters["serve.jobs{status=cached}"] == \
            second.stats["cached"] == len(jobs)
        assert counters["serve.jobs{status=deduped}"] == \
            first.stats["deduped"] == 1
        assert counters["serve.jobs{status=failed}"] == 0
        # Cache-side counters agree with the cache's own ledger.
        cache_stats = second.stats["cache"]
        assert counters["serve.cache.hits"] == cache_stats["hits"]
        assert counters["serve.cache.misses"] == cache_stats["misses"]

    def test_failed_jobs_counted(self):
        with use_registry() as registry:
            service = SimulationService()
            report = service.run([SelfTestJob(value=1),
                                  SelfTestJob(mode="raise", value=2)])
        assert not report.ok
        counters = registry.snapshot()["counters"]
        assert counters["serve.jobs{status=failed}"] == 1
        assert counters["serve.jobs{status=executed}"] == 2


class TestPoolTelemetry:
    def test_worker_lane_histograms_use_logical_lanes(self):
        with use_registry() as registry:
            outcomes = run_jobs([SelfTestJob(value=i) for i in range(6)],
                                workers=2)
        assert all(o.ok for o in outcomes)
        histograms = registry.snapshot()["histograms"]
        lanes = {key for key in histograms
                 if key.startswith("pool.job_seconds")}
        assert lanes == {"pool.job_seconds{lane=0}",
                         "pool.job_seconds{lane=1}"}
        total = sum(histograms[k]["count"] for k in lanes)
        assert total == 6
        waits = [k for k in histograms
                 if k.startswith("pool.queue_wait_seconds")]
        assert sum(histograms[k]["count"] for k in waits) == 6

    def test_timeout_failure_attributable_from_details(self):
        with use_registry() as registry:
            (outcome,) = run_jobs(
                [SelfTestJob(mode="sleep", duration=30.0)],
                workers=1, timeout=0.5)
        assert not outcome.ok
        assert outcome.error_type == "JobTimeout"
        details = outcome.details
        assert details["digest"] == outcome.job.digest()
        assert details["deadline_s"] == 0.5
        assert details["elapsed_wall_s"] >= 0.5
        counters = registry.snapshot()["counters"]
        assert counters["pool.timeouts{lane=0}"] == 1

    def test_crash_failure_carries_exit_code(self):
        (outcome,) = run_jobs([SelfTestJob(mode="crash")], workers=1)
        assert outcome.error_type == "WorkerCrash"
        assert outcome.details["exit_code"] == 13
        assert outcome.details["digest"] == outcome.job.digest()


class TestEventLogIntegration:
    def _sweep(self, jobs, **kwargs):
        sink = io.StringIO()
        with use_registry():
            service = SimulationService(events=EventLog(sink), **kwargs)
            report = service.run(jobs, label="ev")
        records = [json.loads(line) for line in
                   sink.getvalue().splitlines()]
        return report, records

    def test_lifecycle_counts(self):
        jobs = [SelfTestJob(value=i) for i in range(3)]
        report, records = self._sweep(jobs, workers=2)
        counts = validate_events(records)
        assert counts == {"sweep_start": 1, "job_start": 3, "job_done": 3,
                          "sweep_done": 1, "metrics": 1}
        assert report.ok

    def test_trace_id_threads_through(self):
        _, records = self._sweep([SelfTestJob(value=1)])
        start = next(r for r in records if r["event"] == "sweep_start")
        assert start["trace_id"]

    def test_timeout_attributable_from_log_alone(self):
        """The satellite contract: error type, digest, elapsed wall time
        and deadline are all in the job_failed record."""
        job = SelfTestJob(mode="sleep", duration=30.0)
        report, records = self._sweep([job], workers=1, timeout=0.5)
        assert not report.ok
        (failed,) = [r for r in records if r["event"] == "job_failed"]
        assert failed["error_type"] == "JobTimeout"
        assert failed["digest"] == job.digest()
        assert failed["details"]["digest"] == job.digest()
        assert failed["details"]["deadline_s"] == 0.5
        assert failed["details"]["elapsed_wall_s"] >= 0.5
        validate_events(records)

    def test_final_metrics_event_matches_report(self):
        report, records = self._sweep([SelfTestJob(value=1)])
        (metrics,) = [r for r in records if r["event"] == "metrics"]
        assert metrics["snapshot"] == report.metrics


class TestFleetIntegration:
    def test_sharded_sweep_builds_valid_timeline(self):
        fleet = FleetRecorder()
        with use_registry():
            service = SimulationService(workers=2, fleet=fleet)
            report = service.run([SelfTestJob(value=i) for i in range(4)],
                                 label="fleet")
        assert report.ok
        assert len(fleet.jobs) == 4
        assert fleet.lanes == [0, 1]
        for job in fleet.jobs:
            assert job.status == "done"
            assert job.span is not None
            assert job.span["trace_id"] == fleet.root.context.trace_id
        from repro.trace.perfetto import fleet_trace

        trace = fleet_trace(fleet, title="fleet")
        assert validate_chrome_trace(trace) >= 5  # root + 4 job rows

    def test_cached_jobs_recorded_with_device_traces(self, tmp_path):
        from repro.serve import ProfileJob

        fleet = FleetRecorder()
        job = ProfileJob(kernel="matmul_4bit", trace=True)
        with use_registry():
            cache = ResultCache(tmp_path / "c")
            SimulationService(cache=cache).run([job])
            service = SimulationService(cache=cache, fleet=fleet)
            report = service.run([job], label="warm")
        assert report.cached_count == 1
        record = fleet.job(0)
        assert record.status == "cached"
        # The device timeline is re-attached from the cached artifact.
        assert record.device_trace is not None
        trace = fleet.write(str(tmp_path / "fleet.json"), title="warm")
        assert validate_chrome_trace(trace) > 0

    def test_fresh_jobs_attach_device_traces(self):
        from repro.serve import ProfileJob

        fleet = FleetRecorder()
        with use_registry():
            service = SimulationService(fleet=fleet)
            report = service.run(
                [ProfileJob(kernel="matmul_4bit", trace=True)])
        assert report.ok
        assert fleet.job(0).device_trace is not None
