"""Service-level telemetry: metrics, events, fleet timeline, perf diff."""
