"""Event log: schema enforcement at write time and validation time."""

import io
import json

import pytest

from repro.telemetry import (
    EVENTS_SCHEMA,
    EventLog,
    EventLogError,
    MetricsRegistry,
    read_events,
    validate_events,
    validate_events_file,
)


def _emit_minimal(log):
    log.emit("sweep_start", label="t", total=1, workers=0, trace_id="abc")
    log.emit("job_start", index=0, kind="selftest", digest="d" * 64)
    log.emit("job_done", index=0, kind="selftest", digest="d" * 64,
             elapsed_s=0.01, worker=1234)
    log.emit("sweep_done", label="t", ok=True, wall_s=0.02,
             stats={"total": 1})


class TestEmit:
    def test_records_carry_schema_seq_ts(self):
        sink = io.StringIO()
        log = EventLog(sink)
        _emit_minimal(log)
        records = [json.loads(line) for line in
                   sink.getvalue().splitlines()]
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert all(r["schema"] == EVENTS_SCHEMA for r in records)
        assert all(isinstance(r["ts"], float) for r in records)

    def test_unknown_event_rejected(self):
        with pytest.raises(EventLogError):
            EventLog(io.StringIO()).emit("job_exploded", index=0)

    def test_missing_required_field_rejected(self):
        with pytest.raises(EventLogError, match="missing fields"):
            EventLog(io.StringIO()).emit("job_start", index=0,
                                         kind="selftest")

    def test_extra_fields_allowed(self):
        record = EventLog(io.StringIO()).emit(
            "job_start", index=0, kind="selftest", digest="d",
            note="anything")
        assert record["note"] == "anything"

    def test_path_sink_owns_and_closes(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(str(path))
        _emit_minimal(log)
        log.close()
        assert validate_events_file(str(path)) == {
            "sweep_start": 1, "job_start": 1, "job_done": 1,
            "sweep_done": 1}


class TestValidate:
    def _records(self):
        sink = io.StringIO()
        _emit_minimal(EventLog(sink))
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def test_counts_by_event(self):
        assert validate_events(self._records()) == {
            "sweep_start": 1, "job_start": 1, "job_done": 1,
            "sweep_done": 1}

    def test_broken_seq_rejected(self):
        records = self._records()
        records[2]["seq"] = 99
        with pytest.raises(EventLogError, match="monotonic"):
            validate_events(records)

    def test_wrong_schema_rejected(self):
        records = self._records()
        records[0]["schema"] = "repro-events/0"
        with pytest.raises(EventLogError, match="schema"):
            validate_events(records)

    def test_job_failed_details_must_be_object(self):
        log = EventLog(io.StringIO())
        record = log.emit("job_failed", index=0, kind="selftest",
                          digest="d", elapsed_s=0.1,
                          error_type="ServeError", message="boom",
                          details="not-a-dict")
        with pytest.raises(EventLogError, match="details"):
            validate_events([record])

    def test_metrics_event_snapshot_is_validated(self):
        log = EventLog(io.StringIO())
        good = log.emit("metrics", snapshot=MetricsRegistry().snapshot())
        assert validate_events([good]) == {"metrics": 1}
        log2 = EventLog(io.StringIO())
        bad = log2.emit("metrics", snapshot={"schema": "nope"})
        bad["seq"] = 0
        with pytest.raises(EventLogError, match="snapshot"):
            validate_events([bad])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(EventLogError, match="empty"):
            validate_events_file(str(path))

    def test_non_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(EventLogError, match="bad.jsonl:2"):
            validate_events_file(str(path))


class TestRead:
    def test_filter_by_event(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(str(path))
        _emit_minimal(log)
        log.close()
        done = read_events(str(path), event="job_done")
        assert len(done) == 1
        assert done[0]["worker"] == 1234
        assert len(read_events(str(path))) == 4
