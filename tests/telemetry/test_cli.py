"""CLI surfaces: sweep telemetry flags, cache, metrics, perf diff."""

import json

import pytest

from repro.cli import main
from repro.telemetry import use_registry, validate_events_file
from repro.trace.perfetto import validate_chrome_trace_file

TRAJ = {"schema": "repro-trajectory/1", "entries": {
    "cluster/cycles": 1000,
    "serve/jobs_per_s": 40.0,
}}


@pytest.fixture(autouse=True)
def scoped_registry():
    """Keep CLI-driven sweeps from polluting the process registry."""
    with use_registry():
        yield


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestSweepTelemetryFlags:
    def test_sweep_emits_all_three_sinks(self, tmp_path, capsys):
        events = tmp_path / "ev.jsonl"
        fleet = tmp_path / "fleet.json"
        metrics = tmp_path / "met.json"
        code = main(["sweep", "selftest", "value=1,2,3",
                     "--workers", "2", "--no-cache", "--quiet",
                     "--events", str(events),
                     "--fleet-timeline", str(fleet),
                     "--metrics-out", str(metrics)])
        assert code == 0
        counts = validate_events_file(str(events))
        assert counts["job_done"] == 3
        assert counts["metrics"] == 1
        assert validate_chrome_trace_file(str(fleet)) > 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["runner.jobs{kind=selftest}"] == 3

    def test_metrics_renders_event_log(self, tmp_path, capsys):
        events = tmp_path / "ev.jsonl"
        main(["sweep", "selftest", "value=1", "--no-cache", "--quiet",
              "--events", str(events)])
        capsys.readouterr()
        assert main(["metrics", str(events), "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert 'repro_runner_jobs{kind="selftest"} 1' in text
        assert "# TYPE repro_serve_batches counter" in text


class TestMetricsCommand:
    def test_snapshot_file_json(self, tmp_path, capsys):
        metrics = tmp_path / "met.json"
        main(["sweep", "selftest", "value=1,2", "--no-cache", "--quiet",
              "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["metrics", str(metrics)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-metrics/1"
        assert doc["counters"]["serve.jobs{status=executed}"] == 2

    def test_rejects_non_metrics_json(self, tmp_path, capsys):
        path = _write(tmp_path, "other.json", {"hello": 1})
        assert main(["metrics", path]) == 1
        assert "error" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_prune(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "scaling", "bits=4,8", "cores=1", "out_ch=32",
              "reduction=64", "--cache-dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert main(["cache", "prune", "--cache-dir", cache_dir,
                     "--max-bytes", "1", "--json"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["removed"] == 2
        assert outcome["bytes_kept"] == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_prune_requires_budget(self, tmp_path, capsys):
        assert main(["cache", "prune",
                     "--cache-dir", str(tmp_path / "c")]) == 1
        assert "--max-bytes" in capsys.readouterr().err

    def test_byte_suffixes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "prune", "--cache-dir", cache_dir,
                     "--max-bytes", "10M", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["max_bytes"] == \
            10 * 1024 * 1024


class TestPerfDiff:
    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        assert main(["perf", "diff", old, old]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_cycle_regression_exits_nonzero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        perturbed = json.loads(json.dumps(TRAJ))
        perturbed["entries"]["cluster/cycles"] = 1001
        new = _write(tmp_path, "new.json", perturbed)
        assert main(["perf", "diff", old, new, "--json"]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert verdict["regressions"][0]["series"] == "cluster/cycles"

    def test_throughput_band_flag(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        wobbled = json.loads(json.dumps(TRAJ))
        wobbled["entries"]["serve/jobs_per_s"] = 36.0  # -10%
        new = _write(tmp_path, "new.json", wobbled)
        assert main(["perf", "diff", old, new]) == 0
        capsys.readouterr()
        assert main(["perf", "diff", old, new, "--band", "0.05"]) == 1

    def test_tolerances_file(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        wobbled = json.loads(json.dumps(TRAJ))
        wobbled["entries"]["serve/jobs_per_s"] = 36.0
        new = _write(tmp_path, "new.json", wobbled)
        tol = _write(tmp_path, "tol.json", {"serve/*": 0})
        assert main(["perf", "diff", old, new, "--tolerances", tol]) == 1

    def test_strict_missing(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        shrunk = json.loads(json.dumps(TRAJ))
        del shrunk["entries"]["serve/jobs_per_s"]
        new = _write(tmp_path, "new.json", shrunk)
        assert main(["perf", "diff", old, new]) == 0
        capsys.readouterr()
        assert main(["perf", "diff", old, new, "--strict-missing"]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_unreadable_input_is_an_error(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", TRAJ)
        assert main(["perf", "diff", old,
                     str(tmp_path / "gone.json")]) == 1
        assert "error" in capsys.readouterr().err
