"""Static-model tile ranking: agreement with the simulator + accounting.

The acceptance bar for wiring the static cost analyzer into the tile
search: on the ``mixed3`` reference network the static ranking of the
top candidates must agree with the simulated ranking (here the per-tile
estimates are in fact bit-identical), and the compile report must log
how many ranking simulations the static model made unnecessary.
"""

import pytest

from repro.compiler import (
    NetworkCompiler,
    build_network,
    conv_tile_candidates,
    search_conv_tiling,
    simulate_conv_cycles,
    static_conv_cycles,
)
from repro.errors import KernelError
from repro.qnn.network import QuantizedConv
from repro.target.names import XPULPNN

CORES = 2


def mixed3_conv_layers():
    """``(geometry, bits, quant)`` for every conv layer of mixed3."""
    built = build_network("mixed3")
    shape = built.input_shape
    out = []
    for layer in built.network.layers:
        if not isinstance(layer, QuantizedConv):
            break                   # mixed3's convs lead the network
        g = layer.geometry(shape[0], shape[1])
        quant = "shift" if layer.out_bits == 8 else "hw"
        out.append((g, layer.weight_bits, quant, built.tcdm_budget))
        shape = (g.out_h, g.out_w, g.out_ch)
    return out


class TestRankingAgreement:
    @pytest.mark.parametrize("index", [0, 1])
    def test_static_ranking_matches_simulated_ranking(self, index):
        g, bits, quant, budget = mixed3_conv_layers()[index]
        top = conv_tile_candidates(g, bits, quant, CORES, budget)[:4]
        assert len(top) >= 2
        static = [static_conv_cycles(g, bits, quant, XPULPNN, c)
                  for c in top]
        simulated = [simulate_conv_cycles(g, bits, quant, XPULPNN, c)
                     for c in top]
        # Stronger than rank agreement: the static estimate of every
        # candidate is bit-identical to its simulated active cycles.
        assert static == simulated

    def test_search_picks_the_statically_cheapest_candidate(self):
        g, bits, quant, budget = mixed3_conv_layers()[0]
        tiling = search_conv_tiling(g, bits, quant, CORES, budget)
        top = conv_tile_candidates(g, bits, quant, CORES, budget)[:4]
        best = min(static_conv_cycles(g, bits, quant, XPULPNN, c)
                   for c in top)
        assert tiling.static_cycles == best


class TestSearchAccounting:
    def test_stats_count_avoided_simulations(self):
        g, bits, quant, budget = mixed3_conv_layers()[0]
        tiling = search_conv_tiling(g, bits, quant, CORES, budget)
        stats = tiling.search
        assert stats.ranked >= 2
        assert stats.candidates >= stats.ranked
        assert stats.simulations == 0
        assert stats.simulations_avoided == stats.ranked

    def test_verify_spends_exactly_one_simulation(self):
        g, bits, quant, budget = mixed3_conv_layers()[0]
        tiling = search_conv_tiling(g, bits, quant, CORES, budget,
                                    verify=True)
        assert tiling.search.simulations == 1
        assert (tiling.search.simulations_avoided
                == tiling.search.ranked - 1)

    def test_compile_report_logs_the_search_stats(self):
        built = build_network("mixed3")
        compiled = NetworkCompiler(
            built.network, built.input_shape,
            input_bits=built.input_bits, num_cores=CORES,
            tcdm_budget=built.tcdm_budget).compile()
        doc = compiled.to_dict()
        totals = doc["tile_search"]
        assert totals["simulations"] == 0
        assert totals["simulations_avoided"] > 0
        conv_layers = [layer for layer in doc["layers"]
                       if layer["kind"] == "conv"]
        assert conv_layers
        for layer in conv_layers:
            assert layer["static_cycles"] > 0
            assert layer["tile_search"]["ranked"] >= 2
        assert "simulations avoided" in compiled.render()

    def test_impossible_budget_still_raises(self):
        g, bits, quant, _ = mixed3_conv_layers()[0]
        with pytest.raises(KernelError, match="no tile shape"):
            search_conv_tiling(g, bits, quant, CORES, 4096)
