"""Tile-size search: budget fitting, coverage, and monotonicity."""

import pytest

from repro.compiler import (
    search_conv_tiling,
    search_linear_tiling,
    search_pool_tiling,
)
from repro.compiler.tiling import CODE_ALLOWANCE, conv_tile_geometry
from repro.errors import KernelError
from repro.qnn.layers import ConvGeometry

PAPER = ConvGeometry(in_h=16, in_w=16, in_ch=32, out_ch=64,
                     kh=3, kw=3, stride=1, pad=1)


class TestConvSearch:
    def test_large_budget_is_single_tile(self):
        tiling = search_conv_tiling(PAPER, 4, "hw", 8, 128 * 1024)
        assert tiling.tile_count == 1
        assert tiling.th == 16 and tiling.cg == 64
        assert tiling.cores == 8

    def test_small_budget_forces_tiling(self):
        tiling = search_conv_tiling(PAPER, 4, "hw", 8, 24 * 1024)
        assert tiling.tile_count > 1
        assert tiling.plan_bytes <= 24 * 1024

    def test_tiles_cover_the_output_exactly(self):
        tiling = search_conv_tiling(PAPER, 4, "hw", 8, 24 * 1024)
        assert sum(s for _, s in tiling.row_tiles) == PAPER.out_h
        assert sum(s for _, s in tiling.col_tiles) == PAPER.out_w
        assert sum(s for _, s in tiling.groups) == PAPER.out_ch

    def test_smaller_budget_never_scores_higher(self):
        big = search_conv_tiling(PAPER, 4, "hw", 8, 128 * 1024)
        small = search_conv_tiling(PAPER, 4, "hw", 8, 24 * 1024)
        assert small.score <= big.score
        assert small.dma_bytes >= big.dma_bytes

    def test_impossible_budget_raises(self):
        with pytest.raises(KernelError, match="no tile shape"):
            search_conv_tiling(PAPER, 4, "hw", 8, CODE_ALLOWANCE + 64)

    def test_tile_geometry_adds_halo(self):
        tg = conv_tile_geometry(PAPER, 4, 16, 64)
        # 4 output rows at stride 1 need kh - 1 = 2 halo rows.
        assert tg.in_h == 6
        assert tg.pad == 0

    def test_8bit_shift_search(self):
        g = ConvGeometry(in_h=16, in_w=16, in_ch=8, out_ch=16,
                         kh=3, kw=3, stride=1, pad=1)
        tiling = search_conv_tiling(g, 8, "shift", 8, 16 * 1024)
        assert tiling.tile_count >= 1
        assert tiling.plan_bytes <= 16 * 1024

    def test_score_is_macs_per_dma_byte(self):
        tiling = search_conv_tiling(PAPER, 4, "hw", 8, 128 * 1024)
        assert tiling.score == pytest.approx(
            PAPER.macs / tiling.dma_bytes)


class TestLinearSearch:
    def test_tiles_cover_all_neurons(self):
        tiling = search_linear_tiling(128, 4112, 8, 128 * 1024)
        assert sum(c for _, c in tiling.tiles) == 4112
        assert all(c % 2 == 0 for _, c in tiling.tiles)
        assert len(tiling.tiles) > 1

    def test_single_tile_when_it_fits(self):
        tiling = search_linear_tiling(256, 16, 8, 128 * 1024)
        assert tiling.tn == 16
        assert len(tiling.tiles) == 1

    def test_weight_tile_bytes(self):
        tiling = search_linear_tiling(128, 64, 8, 128 * 1024)
        assert tiling.weight_tile_bytes(10) == 10 * 128

    def test_impossible_budget_raises(self):
        with pytest.raises(KernelError, match="no neuron tile"):
            search_linear_tiling(1024, 64, 8, CODE_ALLOWANCE + 1024)


class TestPoolSearch:
    def test_tiles_cover_output_rows(self):
        tiling = search_pool_tiling(16, 16, 16, 4, 128 * 1024)
        assert sum(r for _, r in tiling.tiles) == 8

    def test_tight_budget_splits_rows(self):
        row_cost = 2 * tiling_row(64, 32, 8) + tiling_row(32, 32, 8)
        budget = CODE_ALLOWANCE + 2 * row_cost + 512
        tiling = search_pool_tiling(64, 64, 32, 8, budget)
        assert tiling.th < 32
        assert tiling.plan_bytes <= budget

    def test_unalignable_channels_rejected(self):
        with pytest.raises(KernelError, match="whole 32-bit words"):
            search_pool_tiling(8, 8, 3, 4, 128 * 1024)


def tiling_row(width: int, channels: int, bits: int) -> int:
    return width * channels * bits // 8
