"""Static TCDM memory planner: placement, validation, rendering."""

import pytest

from repro.compiler import PlannedRegion, TcdmPlan, TcdmPlanner
from repro.errors import KernelError
from repro.soc.memmap import TCDM_BASE


class TestPlacement:
    def test_bump_allocation_in_order(self):
        planner = TcdmPlanner(budget=1024)
        a = planner.place("a", 100)
        b = planner.place("b", 200)
        assert a == TCDM_BASE
        assert b == TCDM_BASE + 100
        plan = planner.plan()
        assert plan.addr("a") == a and plan.size_of("b") == 200
        assert plan.used_bytes == 300
        assert plan.free_bytes == 1024 - 300

    def test_alignment_respected(self):
        planner = TcdmPlanner(budget=1024)
        planner.place("odd", 3)
        aligned = planner.place("vec", 64, align=32)
        assert aligned % 32 == 0
        assert aligned >= TCDM_BASE + 3

    def test_duplicate_slot_rejected(self):
        planner = TcdmPlanner(budget=1024)
        planner.place("x", 16)
        with pytest.raises(KernelError, match="duplicate"):
            planner.place("x", 16)

    def test_budget_exhaustion_rejected(self):
        planner = TcdmPlanner(budget=128)
        planner.place("big", 100)
        with pytest.raises(KernelError, match="budget"):
            planner.place("more", 100)


class TestValidation:
    def test_overlapping_regions_rejected(self):
        plan = TcdmPlan(base=TCDM_BASE, budget=1024, regions={
            "a": PlannedRegion("a", TCDM_BASE, 100),
            "b": PlannedRegion("b", TCDM_BASE + 50, 100),
        })
        with pytest.raises(KernelError, match="overlap"):
            plan.validate()

    def test_out_of_budget_region_rejected(self):
        plan = TcdmPlan(base=TCDM_BASE, budget=128, regions={
            "a": PlannedRegion("a", TCDM_BASE + 64, 100),
        })
        with pytest.raises(KernelError, match="outside budget"):
            plan.validate()

    def test_disjoint_plan_passes(self):
        plan = TcdmPlan(base=TCDM_BASE, budget=1024, regions={
            "a": PlannedRegion("a", TCDM_BASE, 100),
            "b": PlannedRegion("b", TCDM_BASE + 100, 100),
        })
        plan.validate()

    def test_render_lists_slots(self):
        planner = TcdmPlanner(budget=1024)
        planner.place("weights", 256)
        planner.place("in0", 64)
        text = planner.plan().render()
        assert "weights" in text and "in0" in text
