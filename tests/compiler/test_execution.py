"""Compiled whole-network execution: bit-exactness, overlap, tracing.

The module-scoped fixtures compile and run each reference network once;
the tests then assert different properties of the same run.
"""

import numpy as np
import pytest

from repro.compiler import (
    MasterTimeline,
    NetworkCompiler,
    PlanExecutor,
    build_network,
    network_names,
)
from repro.compiler.timeline import SCHEDULE_TRACK
from repro.errors import KernelError
from repro.qnn.deploy import NetworkDeployer


@pytest.fixture(scope="module")
def mixed3_compiled():
    built = build_network("mixed3")
    compiled = NetworkCompiler(
        built.network, built.input_shape, input_bits=built.input_bits,
        num_cores=8, tcdm_budget=built.tcdm_budget,
    ).compile()
    return built, compiled


@pytest.fixture(scope="module")
def mixed3_result(mixed3_compiled):
    built, compiled = mixed3_compiled
    executor = PlanExecutor(compiled, trace=True)
    return executor.run(built.input)


@pytest.fixture(scope="module")
def mixed3_deployed():
    built = build_network("mixed3")
    deployer = NetworkDeployer(
        built.network, built.input_shape, input_bits=built.input_bits,
        isa="xpulpnn", target="cluster", num_cores=8)
    return deployer.run(built.input)


class TestCompile:
    def test_catalog_names(self):
        assert set(network_names()) >= {"mixed3", "over-l2", "paper"}

    def test_layers_lowered_in_order(self, mixed3_compiled):
        _, compiled = mixed3_compiled
        assert [p.kind for p in compiled.layers] == [
            "conv", "conv", "pool", "linear"]

    def test_tight_budget_forces_multiple_tiles(self, mixed3_compiled):
        _, compiled = mixed3_compiled
        assert compiled.total_tiles > len(compiled.layers)

    def test_every_plan_fits_and_validates(self, mixed3_compiled):
        _, compiled = mixed3_compiled
        for plan in compiled.layers:
            plan.plan.validate()
            assert plan.plan.used_bytes <= compiled.tcdm_budget

    def test_tiles_reference_existing_kernel_variants(self, mixed3_compiled):
        _, compiled = mixed3_compiled
        for plan in compiled.layers:
            for tile in plan.tiles:
                assert tile.key in plan.kernels

    def test_emitted_programs_lint_clean(self, mixed3_compiled):
        from repro.analysis import lint_program

        _, compiled = mixed3_compiled
        for name, program in compiled.programs():
            report = lint_program(program, name=name)
            assert report.ok, f"{name}: {report.render()}"

    def test_non_xpulpnn_isa_rejected(self):
        built = build_network("mixed3")
        with pytest.raises(KernelError, match="XpulpNN"):
            NetworkCompiler(built.network, built.input_shape,
                            input_bits=built.input_bits, isa="ri5cy")

    def test_hopeless_budget_rejected(self):
        built = build_network("mixed3")
        with pytest.raises(KernelError):
            NetworkCompiler(built.network, built.input_shape,
                            input_bits=built.input_bits,
                            tcdm_budget=4096).compile()

    def test_render_mentions_every_layer(self, mixed3_compiled):
        _, compiled = mixed3_compiled
        text = compiled.render()
        for plan in compiled.layers:
            assert plan.name in text


class TestExecution:
    def test_every_tile_verified(self, mixed3_result):
        assert mixed3_result.verified
        assert all(layer.verified for layer in mixed3_result.layers)

    def test_matches_single_shot_deployment(self, mixed3_result,
                                            mixed3_deployed):
        assert mixed3_deployed.verified
        assert np.array_equal(mixed3_result.output, mixed3_deployed.output)

    def test_layers_progress_on_one_clock(self, mixed3_result):
        starts = [layer.start for layer in mixed3_result.layers]
        ends = [layer.end for layer in mixed3_result.layers]
        assert starts == sorted(starts)
        assert all(s >= e for s, e in zip(starts[1:], ends))
        assert mixed3_result.cycles == ends[-1]

    def test_double_buffering_hides_dma(self, mixed3_result):
        # The headline acceptance number: a meaningful share of DMA
        # cycles must be hidden under compute windows.
        assert mixed3_result.overlap_pct >= 0.40

    def test_contention_is_bounded_by_overlap(self, mixed3_result):
        for layer in mixed3_result.layers:
            assert layer.contention_cycles <= layer.overlap_cycles
            assert layer.overlap_cycles <= layer.dma_cycles

    def test_energy_and_macs_accumulate(self, mixed3_result):
        assert mixed3_result.total_energy_uj > 0
        conv_macs = [layer.macs for layer in mixed3_result.layers
                     if layer.kind == "conv"]
        assert all(m > 0 for m in conv_macs)

    def test_report_dict_has_network_metrics(self, mixed3_result):
        doc = mixed3_result.to_dict()
        assert doc["verified"] is True
        assert doc["cycles"] == mixed3_result.cycles
        for layer in doc["layers"]:
            assert {"tiles", "dma_bytes", "overlap_pct", "cycles",
                    "energy_uj"} <= set(layer)


class TestTimeline:
    def test_schedule_track_names_every_tile(self, mixed3_compiled,
                                             mixed3_result):
        _, compiled = mixed3_compiled
        spans = [s for s in mixed3_result.timeline.tracer.region_spans
                 if s.core == SCHEDULE_TRACK]
        assert len(spans) == compiled.total_tiles

    def test_dma_lane_filled_from_engine(self, mixed3_result):
        events = mixed3_result.timeline.tracer.dma_events
        assert events
        assert all(e.end > e.start for e in events)

    def test_written_trace_validates(self, mixed3_result, tmp_path):
        from repro.trace import validate_chrome_trace_file

        out = tmp_path / "net.json"
        mixed3_result.timeline.write(str(out))
        assert validate_chrome_trace_file(str(out)) > 0

    def test_merge_shifts_spans(self):
        from repro.trace.events import RegionSpan
        from repro.trace.tracer import EventTracer

        tile = EventTracer()
        tile.region_spans.append(RegionSpan(core=0, name="dotprod",
                                            start=5, end=10))
        tile.end_cycles[0] = 10
        master = MasterTimeline()
        master.merge_tile(tile, offset=1000)
        span = master.tracer.region_spans[0]
        assert (span.start, span.end) == (1005, 1010)
        assert master.tracer.end_cycles[0] == 1010


class TestOverL2:
    @pytest.fixture(scope="class")
    def over_l2(self):
        built = build_network("over-l2")
        compiled = NetworkCompiler(
            built.network, built.input_shape, input_bits=built.input_bits,
            num_cores=8, tcdm_budget=built.tcdm_budget,
        ).compile()
        result = PlanExecutor(compiled).run(built.input)
        return built, compiled, result

    def test_classifier_weights_exceed_l2(self, over_l2):
        built, _, _ = over_l2
        from repro.qnn.deploy import L2_BUDGET_BYTES

        weights = built.network.layers[-1].weights
        assert weights.size > L2_BUDGET_BYTES

    def test_compiles_and_runs_bit_exactly(self, over_l2):
        _, compiled, result = over_l2
        assert result.verified
        assert compiled.layers[-1].tiles and len(compiled.layers[-1].tiles) > 1

    def test_streams_more_bytes_than_l2_holds(self, over_l2):
        from repro.qnn.deploy import L2_BUDGET_BYTES

        _, _, result = over_l2
        assert result.total_dma_bytes > L2_BUDGET_BYTES

    def test_overlap_acceptance_threshold(self, over_l2):
        _, _, result = over_l2
        assert result.overlap_pct >= 0.40


class TestPaperWorkload:
    def test_compiled_matches_single_shot_within_5pct(self):
        built = build_network("paper")
        compiled = NetworkCompiler(
            built.network, built.input_shape, input_bits=built.input_bits,
            num_cores=8, tcdm_budget=built.tcdm_budget,
        ).compile()
        result = PlanExecutor(compiled).run(built.input)
        assert result.verified

        built2 = build_network("paper")
        deployed = NetworkDeployer(
            built2.network, built2.input_shape,
            input_bits=built2.input_bits, isa="xpulpnn",
            target="cluster", num_cores=8).run(built2.input)
        assert deployed.verified
        assert np.array_equal(result.output.ravel(),
                              np.asarray(deployed.output).ravel())
        delta = abs(result.cycles - deployed.total_cycles)
        assert delta / deployed.total_cycles < 0.05
