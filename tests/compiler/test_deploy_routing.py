"""NetworkDeployer routing: over-budget layers go through the compiler."""

import numpy as np
import pytest

from repro.compiler import build_network
from repro.errors import KernelError
from repro.qnn import (
    NetworkDeployer,
    QnnNetwork,
    QuantizedConv,
    random_activations,
    random_weights,
)
from repro.qnn.deploy import L2_BUDGET_BYTES


@pytest.fixture(scope="module")
def small8():
    rng = np.random.default_rng(77)
    net = QnnNetwork(name="routing-test")
    net.add(QuantizedConv(
        weights=random_weights((8, 3, 3, 8), 8, rng), weight_bits=8,
        in_bits=8, out_bits=8, pad=1, name="conv8"))
    x = random_activations((8, 8, 8), 8, rng)
    return net, x


class TestOverL2Routing:
    @pytest.fixture(scope="class")
    def routed(self):
        built = build_network("over-l2")
        deployer = NetworkDeployer(
            built.network, built.input_shape, input_bits=built.input_bits,
            target="xpulpnn-cluster8")
        return deployer.run(built.input)

    def test_network_verified_end_to_end(self, routed):
        assert routed.verified

    def test_only_the_oversized_layer_is_tiled(self, routed):
        tiles = [layer.tiles for layer in routed.layers]
        assert tiles[:-1] == [1] * (len(tiles) - 1)
        assert tiles[-1] > 1

    def test_classifier_weights_motivated_the_routing(self, routed):
        built = build_network("over-l2")
        assert built.network.layers[-1].weights.size > L2_BUDGET_BYTES

    def test_ri5cy_still_rejects_oversized_layers(self):
        built = build_network("over-l2")
        deployer = NetworkDeployer(
            built.network, built.input_shape, input_bits=built.input_bits,
            target="ri5cy")
        with pytest.raises(KernelError, match="L2"):
            deployer.run(built.input)

    def test_single_core_xpulpnn_rejects_oversized_layers_too(self):
        # The silent tiled fallback was a cluster feature; on the
        # single-core XpulpNN target the structured error names the
        # target, same as the baseline core.
        built = build_network("over-l2")
        deployer = NetworkDeployer(
            built.network, built.input_shape, input_bits=built.input_bits,
            target="xpulpnn")
        with pytest.raises(KernelError, match="xpulpnn"):
            deployer.run(built.input)


class TestBudgetRouting:
    def test_tight_budget_routes_and_matches_single_shot(self, small8):
        net, x = small8
        reference = NetworkDeployer(net, input_shape=x.shape,
                                    input_bits=8).run(x)
        assert reference.verified
        assert all(layer.tiles == 1 for layer in reference.layers)

        routed = NetworkDeployer(net, input_shape=x.shape, input_bits=8,
                                 target="xpulpnn-cluster8",
                                 l2_budget=5000).run(x)
        assert routed.verified
        assert np.array_equal(routed.output, reference.output)

    def test_tight_budget_raises_on_single_core(self, small8):
        # Single-core targets no longer tile silently: the same tight
        # budget is a structured error naming the target.
        net, x = small8
        deployer = NetworkDeployer(net, input_shape=x.shape, input_bits=8,
                                   l2_budget=5000)
        with pytest.raises(KernelError, match="xpulpnn"):
            deployer.run(x)

    def test_same_budget_raises_without_the_compiler(self, small8):
        # Proof the tight budget actually trips the check: the baseline
        # core has no tiled fallback and must reject the layer.
        net, x = small8
        deployer = NetworkDeployer(net, input_shape=x.shape, input_bits=8,
                                   target="ri5cy", l2_budget=5000)
        with pytest.raises(KernelError, match="L2"):
            deployer.run(x)
