"""Experiment harnesses, run on the tiny geometry for speed.

These check that every figure/table module runs end-to-end and that the
reproduced relationships have the paper's *shape* (the full-scale numbers
live in the benchmark harness / EXPERIMENTS.md).
"""

import pytest

from repro.eval import conv_suite, fig6, fig7, fig8, fig9, table1, table3
from tests.conftest import TINY_GEOMETRY

G = TINY_GEOMETRY


@pytest.fixture(scope="module")
def suite():
    return conv_suite(G)


class TestConvSuite:
    def test_all_points_verified(self, suite):
        assert all(point.verified for point in suite.values())

    def test_expected_matrix(self, suite):
        assert (8, "xpulpnn", "shift") in suite
        assert (8, "ri5cy", "shift") in suite
        assert (4, "ri5cy", "sw") in suite
        assert (2, "xpulpnn", "hw") in suite

    def test_cached_across_calls(self, suite):
        again = conv_suite(G)
        assert again[(4, "xpulpnn", "hw")] is suite[(4, "xpulpnn", "hw")]


class TestFig6:
    def test_runs_and_renders(self):
        result = fig6.run(G)
        text = fig6.render(result)
        assert "pv.qnt" in text and "quant share" in text

    def test_hw_quant_speedup_positive(self):
        result = fig6.run(G)
        assert result.speedup_hw_quant[4] > 1.05
        assert result.speedup_hw_quant[2] > 1.05

    def test_quant_share_ordering(self):
        result = fig6.run(G)
        assert result.quant_share[(4, "hw")] < result.quant_share[(4, "sw")]
        assert result.quant_share[(2, "hw")] < result.quant_share[(2, "sw")]

    def test_subbyte_scaling_toward_linear(self):
        result = fig6.run(G)
        assert result.scaling_vs_8bit[(4, "hw")] > 1.4
        assert result.scaling_vs_8bit[(2, "hw")] > 2.2


class TestFig7:
    def test_gains_shape(self):
        result = fig7.run(G)
        assert result.gain[8] == pytest.approx(1.0, abs=0.05)
        assert 4.0 <= result.gain[4] <= 7.0
        assert 7.0 <= result.gain[2] <= 12.0

    def test_power_in_milliwatt_band(self):
        result = fig7.run(G)
        for power in result.soc_power_mw.values():
            assert 5.0 <= power <= 7.0

    def test_render(self):
        assert "GMAC/s/W" in fig7.render(fig7.run(G))


class TestFig8:
    def test_platform_ordering_subbyte(self):
        result = fig8.run(G)
        for bits in (4, 2):
            assert result.cycles[(bits, "xpulpnn")] < result.cycles[(bits, "ri5cy")]
            assert result.cycles[(bits, "ri5cy")] < result.cycles[(bits, "STM32L4")]

    def test_stm32_order_of_magnitude(self):
        result = fig8.run(G)
        for bits in (4, 2):
            assert result.speedup_vs_stm32[(bits, "STM32L4")] > 5

    def test_8bit_cores_equal(self):
        result = fig8.run(G)
        assert result.cycles[(8, "xpulpnn")] == result.cycles[(8, "ri5cy")]

    def test_render(self):
        assert "cycles" in fig8.render(fig8.run(G))


class TestFig9:
    def test_efficiency_hierarchy(self):
        result = fig9.run(G)
        for bits in (4, 2):
            ext = result.points[(bits, "xpulpnn")].gmacs_per_s_per_w
            base = result.points[(bits, "ri5cy")].gmacs_per_s_per_w
            l4 = result.points[(bits, "STM32L4")].gmacs_per_s_per_w
            h7 = result.points[(bits, "STM32H7")].gmacs_per_s_per_w
            assert ext > base > l4 > h7

    def test_two_orders_of_magnitude_vs_stm32(self):
        result = fig9.run(G)
        assert result.gain_vs_stm32_2bit["STM32L4"] > 50
        assert result.gain_vs_stm32_2bit["STM32H7"] > 200

    def test_peak_efficiency_band(self):
        """Paper: 279 GMAC/s/W peak; geometry-dependent band."""
        result = fig9.run(G)
        assert 150 <= result.peak_gmacs_w <= 350

    def test_render(self):
        assert "peak" in fig9.render(fig9.run(G))


class TestTable1:
    def test_this_work_in_paper_band(self):
        result = table1.run(G)
        lo_e, hi_e = result.eff_range
        assert hi_e > 80   # Gop/s/W, paper band 80-550
        assert hi_e < 700

    def test_render_contains_rows(self):
        text = table1.render(table1.run(G))
        assert "ASICs" in text and "This Work" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(G)

    def test_area_headline(self, result):
        assert result.area_rows["total"]["Ext_PM_overhead_%"] == pytest.approx(
            11.1, abs=0.1)

    def test_core_power_overhead_near_paper(self, result):
        assert result.core_overhead_pm_pct == pytest.approx(5.9, abs=2.0)

    def test_pm_savings_near_paper(self, result):
        assert result.pm_savings_pct == pytest.approx(13.5, abs=3.0)

    def test_soc_power_points(self, result):
        assert result.soc_power[("matmul8", "ext-pm")] == pytest.approx(6.04, rel=0.04)
        assert result.soc_power[("matmul4", "ext-pm")] == pytest.approx(5.71, rel=0.04)
        assert result.soc_power[("matmul2", "ext-pm")] == pytest.approx(5.87, rel=0.04)

    def test_gp_app_envelope(self, result):
        """PM keeps the GP mix in the baseline power envelope (paper §IV-A)."""
        gp_ext = result.soc_power[("gp", "ext-pm")]
        gp_base = result.soc_power[("gp", "ri5cy")]
        assert gp_ext == pytest.approx(gp_base, rel=0.05)
        assert result.soc_power[("gp", "ext-nopm")] > gp_ext + 1.5

    def test_render(self, result):
        text = table3.render(result)
        assert "Table III" in text and "paper" in text
