"""Roofline utilization analysis tests."""

import pytest

from repro.eval import roofline
from tests.conftest import TINY_GEOMETRY


class TestPeaks:
    def test_unit_peak(self):
        assert roofline.unit_peak_macs_per_cycle(8) == 4
        assert roofline.unit_peak_macs_per_cycle(4) == 8
        assert roofline.unit_peak_macs_per_cycle(2) == 16

    def test_matmul_peak_is_half_unit_peak(self):
        for bits in (8, 4, 2):
            assert roofline.matmul_peak_macs_per_cycle(bits, native=True) == \
                pytest.approx(roofline.unit_peak_macs_per_cycle(bits) / 2)

    def test_baseline_peak_below_one(self):
        assert roofline.matmul_peak_macs_per_cycle(4, native=False) < 1.0
        assert roofline.matmul_peak_macs_per_cycle(2, native=False) < 1.0


class TestAnalysis:
    @pytest.fixture(scope="class")
    def points(self):
        return roofline.run(TINY_GEOMETRY)

    def test_achieved_below_peak(self, points):
        for point in points.values():
            assert point.achieved <= point.matmul_peak
            assert point.matmul_peak <= point.unit_peak

    def test_utilization_reasonable(self, points):
        """The generated kernels should reach >50 % of the structural
        inner-loop peak — a regression guard on code quality."""
        for point in points.values():
            assert point.utilization > 0.5, point.name

    def test_render(self, points):
        text = roofline.render(points)
        assert "utilization" in text and "unit peak" in text
