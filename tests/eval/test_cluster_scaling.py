"""Cluster scaling experiment: table shape and acceptance thresholds."""

import json

import pytest

from repro.eval import cluster_scaling


@pytest.fixture(scope="module")
def result():
    # Small workload keeps the 12-point sweep fast; 32 channels still
    # split across 8 cores at every bitwidth (2-bit needs 4 per core).
    return cluster_scaling.run(out_ch=32, reduction=64)


class TestScalingSweep:
    def test_all_points_present(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            for n in cluster_scaling.CORE_COUNTS:
                assert (bits, n) in result.points

    def test_single_core_is_baseline(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            p = result.points[(bits, 1)]
            assert p.speedup == pytest.approx(1.0)
            assert p.efficiency == pytest.approx(1.0)

    def test_speedup_monotonic_in_cores(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            speedups = [result.points[(bits, n)].speedup
                        for n in cluster_scaling.CORE_COUNTS]
            assert speedups == sorted(speedups)

    def test_8core_efficiency_above_75pct(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            assert result.points[(bits, 8)].efficiency >= 0.75

    def test_power_grows_with_cores(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            powers = [result.points[(bits, n)].power_mw
                      for n in cluster_scaling.CORE_COUNTS]
            assert powers == sorted(powers)
            # ... but far sublinearly: 8 cores never cost 8x the power.
            assert powers[-1] < 8 * powers[0]

    def test_efficiency_in_gops_per_w_scales(self, result):
        for bits in cluster_scaling.BITWIDTHS:
            e1 = result.points[(bits, 1)].gops_per_s_per_w
            e8 = result.points[(bits, 8)].gops_per_s_per_w
            assert e8 > 2 * e1


class TestSerialization:
    def test_to_dict_round_trips_json(self, result):
        payload = json.dumps(result.to_dict())
        data = json.loads(payload)
        assert data["workload"]["kind"] == "matmul"
        assert len(data["points"]) == 12
        point = data["points"][0]
        for key in ("bits", "cores", "cycles", "speedup", "efficiency",
                    "contention_share", "power_mw"):
            assert key in point

    def test_render_mentions_each_bitwidth(self, result):
        text = cluster_scaling.render(result)
        for bits in cluster_scaling.BITWIDTHS:
            assert f"{bits}-bit MatMul" in text
        assert "efficiency" in text
