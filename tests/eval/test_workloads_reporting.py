"""Workload helpers and text reporting."""


from repro.eval import (
    SCALED_LAYER,
    benchmark_geometry,
    build_gp_app,
    format_series,
    format_table,
    run_gp_app,
    use_full_layer,
)
from repro.qnn import PAPER_LAYER


class TestGeometrySelection:
    def test_default_is_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not use_full_layer()
        assert benchmark_geometry() == SCALED_LAYER

    def test_env_enables_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert use_full_layer()
        assert benchmark_geometry() == PAPER_LAYER

    def test_scaled_preserves_shape(self):
        assert SCALED_LAYER.kh == PAPER_LAYER.kh
        assert SCALED_LAYER.pad == PAPER_LAYER.pad
        assert SCALED_LAYER.in_ch == PAPER_LAYER.in_ch
        # identical packing constraints at 2-bit
        assert SCALED_LAYER.out_ch % 4 == 0


class TestGpApp:
    def test_runs_on_both_cores(self):
        for isa in ("xpulpnn", "ri5cy"):
            perf = run_gp_app(isa=isa, iterations=50)
            assert perf.instructions > 500

    def test_mix_is_general_purpose(self):
        perf = run_gp_app(iterations=100)
        fractions = {cls: count / perf.instructions
                     for cls, count in perf.by_class.items()}
        assert 0.35 <= fractions.get("alu", 0) <= 0.65
        assert 0.10 <= fractions.get("load", 0) <= 0.30
        assert fractions.get("mul", 0) <= 0.10

    def test_program_is_loopy(self):
        program = build_gp_app(iterations=10)
        assert any(ins.spec.timing == "branch" for ins in program)


class TestReporting:
    def test_table_alignment(self):
        text = format_table(("a", "bbbb"), [(1, 2.5), ("xx", 10000.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_table_title(self):
        assert format_table(("x",), [(1,)], title="T").startswith("T")

    def test_series_bars_scale(self):
        text = format_series("s", ["a", "b"], [1.0, 10.0])
        lines = text.splitlines()
        assert lines[2].count("#") > lines[1].count("#")

    def test_series_handles_zero(self):
        text = format_series("s", ["a"], [0.0])
        assert "a" in text
