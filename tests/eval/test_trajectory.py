"""Benchmark-trajectory summaries: flattening and diffing."""

import json

from repro.eval.trajectory import (
    SCHEMA,
    build_trajectory,
    compare_trajectories,
    write_trajectory,
)

PAYLOAD = {
    "fig6": {
        "points": [
            {"bits": 4, "cycles": 90210, "quant_share": 0.071,
             "verified": True},
            {"bits": 2, "cycles": 103266, "quant_share": 0.124,
             "verified": True},
        ],
    },
    "cluster": {
        "points": [{"cores": 8, "cycles": 1322, "speedup": 7.1,
                    "dma_cycles": 616}],
    },
}


class TestBuildTrajectory:
    def test_captures_cycle_series(self):
        doc = build_trajectory(PAYLOAD)
        assert doc["schema"] == SCHEMA
        assert doc["experiments"] == ["cluster", "fig6"]
        entries = doc["entries"]
        assert entries["fig6/points/0/cycles"] == 90210
        assert entries["cluster/points/0/dma_cycles"] == 616
        assert entries["cluster/points/0/speedup"] == 7.1

    def test_skips_non_metric_leaves(self):
        entries = build_trajectory(PAYLOAD)["entries"]
        assert not any(key.endswith("bits") for key in entries)
        assert not any(key.endswith("verified") for key in entries)

    def test_empty_payload(self):
        doc = build_trajectory({})
        assert doc["entries"] == {}


class TestWriteAndCompare:
    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "traj.json"
        doc = write_trajectory(PAYLOAD, str(path))
        assert json.loads(path.read_text()) == doc

    def test_compare_flags_moved_series(self):
        old = build_trajectory(PAYLOAD)
        moved = json.loads(json.dumps(PAYLOAD))
        moved["fig6"]["points"][0]["cycles"] = 90000
        new = build_trajectory(moved)
        changed = compare_trajectories(old, new)
        assert changed == {"fig6/points/0/cycles": (90210, 90000)}

    def test_compare_identical_is_empty(self):
        doc = build_trajectory(PAYLOAD)
        assert compare_trajectories(doc, doc) == {}

    def test_committed_baseline_is_current_schema(self):
        from pathlib import Path

        baseline = (Path(__file__).parents[2] / "benchmarks" / "results"
                    / "trajectory.json")
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == SCHEMA
        assert len(doc["entries"]) > 50
