"""Inlined software binary-tree quantization (the pv.qnt alternative)."""

import numpy as np
import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu
from repro.kernels import emit_quantize_software, software_tree_instruction_count
from repro.qnn import random_threshold_table


def _quantize_sw(act, table, bits, channel=0):
    cpu = Cpu(isa="ri5cy")
    table.write_to_memory(cpu.mem, 0x4000)
    b = KernelBuilder(isa="ri5cy")
    b.li("a1", act)
    b.li("a2", table.channel_base(0x4000, channel))
    emit_quantize_software(b, bits, "a1", "a2", "a0", "t0")
    b.ebreak()
    cpu.run_program(b.build())
    return cpu.regs[10], cpu.perf.cycles


@pytest.mark.parametrize("bits", [4, 2])
def test_matches_golden_table(rng, bits):
    table = random_threshold_table(2, bits, rng=rng)
    for act in (-5000, -1, 0, 1, 300, 5000, 32767, -32768):
        got, _ = _quantize_sw(act, table, bits)
        expected = int(np.searchsorted(table.thresholds[0], act, side="left"))
        assert got == expected, f"act={act}"


@pytest.mark.parametrize("bits", [4, 2])
def test_second_channel_tree(rng, bits):
    table = random_threshold_table(2, bits, rng=rng)
    act = 42
    got, _ = _quantize_sw(act, table, bits, channel=1)
    expected = int(np.searchsorted(table.thresholds[1], act, side="left"))
    assert got == expected


def test_average_cost_matches_paper(rng):
    """Paper §III-A: ~18 cycles on average per 4-bit activation in software
    versus 9 cycles for two activations with pv.qnt."""
    table = random_threshold_table(1, 4, rng=rng)
    costs = []
    for act in np.linspace(-6000, 6000, 33).astype(int):
        _, cycles = _quantize_sw(int(act), table, 4)
        # subtract li setup (4 instructions = 4 cycles) and ebreak (1)
        costs.append(cycles - 5)
    average = float(np.mean(costs))
    assert 12 <= average <= 24, average


def test_2bit_tree_cheaper_than_4bit(rng):
    t4 = random_threshold_table(1, 4, rng=rng)
    t2 = random_threshold_table(1, 2, rng=rng)
    _, c4 = _quantize_sw(100, t4, 4)
    _, c2 = _quantize_sw(100, t2, 2)
    assert c2 < c4


def test_static_code_size():
    assert software_tree_instruction_count(4) == 15 * 2 + 16 * 2
    assert software_tree_instruction_count(2) == 3 * 2 + 4 * 2


def test_rejects_8bit():
    from repro.errors import KernelError

    b = KernelBuilder(isa="ri5cy")
    with pytest.raises(KernelError):
        emit_quantize_software(b, 8, "a1", "a2", "a0", "t0")
