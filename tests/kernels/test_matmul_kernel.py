"""Standalone MatMul microkernel: every (bits, isa, quant) point."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import MatmulConfig, MatmulKernel
from repro.qnn import random_threshold_table, requantize_shift

K, CO = 96, 8


@pytest.fixture
def data(rng):
    def make(bits):
        lo = -(1 << (bits - 1))
        hi = 1 << (bits - 1)
        w = rng.integers(lo, hi, (CO, K)).astype(np.int32)
        x0 = rng.integers(0, 1 << bits, K).astype(np.int32)
        x1 = rng.integers(0, 1 << bits, K).astype(np.int32)
        return w, x0, x1

    return make


def golden(w, x0, x1):
    return np.stack([x0.astype(np.int64) @ w.T.astype(np.int64),
                     x1.astype(np.int64) @ w.T.astype(np.int64)])


class TestRawAccumulators:
    @pytest.mark.parametrize("bits,isa", [
        (8, "ri5cy"), (8, "xpulpnn"), (4, "xpulpnn"), (2, "xpulpnn"),
        (4, "ri5cy"), (2, "ri5cy"),
    ])
    def test_native_and_unpacked(self, data, bits, isa):
        w, x0, x1 = data(bits)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=bits,
                                         isa=isa, quant="none"))
        run = kern.run(w, x0, x1)
        assert np.array_equal(run.output, golden(w, x0, x1))

    def test_shuffle_unpack_style(self, data):
        w, x0, x1 = data(4)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                         isa="ri5cy", quant="none",
                                         unpack_style="shuffle"))
        run = kern.run(w, x0, x1)
        assert np.array_equal(run.output, golden(w, x0, x1))

    def test_shuffle_crumb_style(self, data):
        w, x0, x1 = data(2)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=2,
                                         isa="ri5cy", quant="none",
                                         unpack_style="shuffle"))
        run = kern.run(w, x0, x1)
        assert np.array_equal(run.output, golden(w, x0, x1))


class TestQuantizedOutputs:
    def test_8bit_shift(self, data):
        w, x0, x1 = data(8)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=8,
                                         quant="shift"))
        run = kern.run(w, x0, x1, shift=10)
        assert np.array_equal(run.output,
                              requantize_shift(golden(w, x0, x1), 10, 8))

    @pytest.mark.parametrize("bits", [4, 2])
    @pytest.mark.parametrize("quant", ["hw", "sw"])
    def test_staircase_variants(self, data, rng, bits, quant):
        w, x0, x1 = data(bits)
        table = random_threshold_table(CO, bits, spread=600, rng=rng)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=bits,
                                         isa="xpulpnn", quant=quant))
        run = kern.run(w, x0, x1, thresholds=table)
        assert np.array_equal(run.output, table.quantize(golden(w, x0, x1)))

    def test_baseline_sw_quant(self, data, rng):
        w, x0, x1 = data(4)
        table = random_threshold_table(CO, 4, spread=600, rng=rng)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                         isa="ri5cy", quant="sw"))
        run = kern.run(w, x0, x1, thresholds=table)
        assert np.array_equal(run.output, table.quantize(golden(w, x0, x1)))

    def test_missing_thresholds_raises(self, data):
        w, x0, x1 = data(4)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                         quant="hw"))
        with pytest.raises(KernelError):
            kern.run(w, x0, x1)


class TestPerformanceShape:
    def test_native_subbyte_faster_than_baseline(self, data, rng):
        w, x0, x1 = data(4)
        table = random_threshold_table(CO, 4, spread=600, rng=rng)
        ext = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                        isa="xpulpnn", quant="hw"))
        base = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                         isa="ri5cy", quant="sw"))
        ext_run = ext.run(w, x0, x1, thresholds=table)
        base_run = base.run(w, x0, x1, thresholds=table)
        assert base_run.cycles / ext_run.cycles > 3.0

    def test_hw_quant_faster_than_sw(self, data, rng):
        w, x0, x1 = data(4)
        table = random_threshold_table(CO, 4, spread=600, rng=rng)
        runs = {}
        for quant in ("hw", "sw"):
            kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                             quant=quant))
            runs[quant] = kern.run(w, x0, x1, thresholds=table).cycles
        assert runs["sw"] > runs["hw"]

    def test_optimized_unpack_still_slower_than_native(self, data):
        """Ablation: even shuffle2-optimized unpacking cannot reach the
        native nibble SIMD throughput."""
        w, x0, x1 = data(4)
        native = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                           isa="xpulpnn", quant="none"))
        optimized = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                              isa="ri5cy", quant="none",
                                              unpack_style="shuffle"))
        assert optimized.run(w, x0, x1).cycles > 1.8 * native.run(w, x0, x1).cycles

    def test_bitwidth_scaling(self, data):
        cycles = {}
        for bits in (8, 4, 2):
            w, x0, x1 = data(bits)
            kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO,
                                             bits=bits, quant="none"))
            cycles[bits] = kern.run(w, x0, x1).cycles
        assert cycles[8] > cycles[4] > cycles[2]


class TestConfigValidation:
    def test_odd_out_ch_rejected(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=7, bits=8)

    def test_8bit_staircase_rejected(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=8, quant="hw")

    def test_subbyte_shift_rejected(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=4, quant="shift")

    def test_hw_quant_needs_xpulpnn(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=4, isa="ri5cy", quant="hw")

    def test_2bit_out_ch_multiple_of_4(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=6, bits=2, quant="hw")

    def test_bad_reduction_rejected(self):
        with pytest.raises(KernelError):
            MatmulKernel(MatmulConfig(reduction=5, out_ch=2, bits=8))


class TestBlockingAblation:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    def test_4x2_matches_golden(self, data, bits):
        w, x0, x1 = data(bits)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=bits,
                                         quant="none", blocking="4x2"))
        run = kern.run(w, x0, x1)
        assert np.array_equal(run.output, golden(w, x0, x1))

    def test_4x2_faster_than_2x2(self, data):
        """Higher register blocking amortizes activation loads: ~15 %
        fewer cycles (PULP-NN's actual 8-bit blocking choice)."""
        w, x0, x1 = data(8)
        r22 = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=8,
                                        quant="none")).run(w, x0, x1)
        r42 = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=8,
                                        quant="none",
                                        blocking="4x2")).run(w, x0, x1)
        assert 1.05 < r22.cycles / r42.cycles < 1.35

    def test_4x2_requires_native(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=4, isa="ri5cy",
                         quant="none", blocking="4x2")

    def test_4x2_raw_only(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=4, quant="hw",
                         blocking="4x2")

    def test_4x2_needs_out_ch_multiple_of_4(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=6, bits=8, quant="none",
                         blocking="4x2")

    def test_unknown_blocking(self):
        with pytest.raises(KernelError):
            MatmulConfig(reduction=K, out_ch=CO, bits=8, blocking="3x3")
