"""Focused tests of the im2col emitters (buffer content and cost)."""

import numpy as np
import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu
from repro.errors import KernelError
from repro.kernels.im2col import (
    emit_im2col_pixel_packed,
    emit_im2col_pixel_unpack,
    im2col_buffer_bytes,
    padded_row_bytes,
    pixel_bytes,
    seg_words_packed,
)
from repro.kernels.unpack import emit_load_unpack_constants
from repro.qnn import ConvGeometry, im2col_golden, pack, unpack

G = ConvGeometry(in_h=4, in_w=4, in_ch=16, out_ch=4, kh=3, kw=3, stride=1, pad=1)

ACTS, BUF = 0x1000, 0x3000

_UNPACK_REGS = {
    "scratch0": "t6", "scratch1": "s1", "scratch2": "ra",
    "sel_lo": "s2", "sel_hi": "s3", "mask": "s4",
    "sel_half_lo": "s5", "sel_half_hi": "a6",
}


def _padded(x, bits):
    padded = np.zeros((G.in_h + 2, G.in_w + 2, G.in_ch), dtype=np.int32)
    padded[1:-1, 1:-1] = x
    return padded


def _run_pixel(bits, x, pixel_yx, unpacked):
    """Run one pixel's im2col and return the buffer contents."""
    cpu = Cpu(isa="xpulpnn")
    padded = _padded(x, bits)
    cpu.mem.write_bytes(ACTS, pack(padded, bits, signed=False))
    b = KernelBuilder(isa="xpulpnn")
    oy, ox = pixel_yx
    src = ACTS + (oy * padded_row_bytes(G, bits)
                  + ox * pixel_bytes(G, bits))
    b.li("s8", src)
    b.li("t2", BUF)
    if unpacked:
        emit_load_unpack_constants(b, bits, False, "shuffle", _UNPACK_REGS)
        dests = ["t3", "t4"] if bits == 4 else ["t3", "t4", "t5", "s0"]
        emit_im2col_pixel_unpack(b, G, bits, "s8", "t2", "t0", "t1",
                                 dests, _UNPACK_REGS, None)
    else:
        emit_im2col_pixel_packed(b, G, bits, "s8", "t2", "t0", "t1", None)
    b.ebreak()
    cpu.run_program(b.build())
    if unpacked:
        data = cpu.mem.read_bytes(BUF, G.reduction)
        return unpack(data, 8, signed=False, count=G.reduction), cpu.perf
    data = cpu.mem.read_bytes(BUF, G.reduction * bits // 8)
    return unpack(data, bits, signed=False, count=G.reduction), cpu.perf


class TestPackedIm2col:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    @pytest.mark.parametrize("pixel", [(0, 0), (1, 2), (3, 3)])
    def test_buffer_matches_golden_rows(self, rng, bits, pixel):
        x = rng.integers(0, 1 << bits, (G.in_h, G.in_w, G.in_ch)).astype(np.int32)
        got, _ = _run_pixel(bits, x, pixel, unpacked=False)
        rows = im2col_golden(x, 3, 3, 1, 1)
        index = pixel[0] * G.out_w + pixel[1]
        assert np.array_equal(got, rows[index])

    def test_cost_is_two_instr_per_word(self, rng):
        x = rng.integers(0, 256, (G.in_h, G.in_w, G.in_ch)).astype(np.int32)
        _, perf = _run_pixel(8, x, (1, 1), unpacked=False)
        words = G.kh * seg_words_packed(G, 8)
        # loads + stores per word, one lp.setup + one addi per segment, setup
        assert perf.by_class["load"] == words
        assert perf.by_class["store"] == words


class TestUnpackIm2col:
    @pytest.mark.parametrize("bits", [4, 2])
    @pytest.mark.parametrize("pixel", [(0, 0), (2, 1)])
    def test_buffer_is_widened_golden(self, rng, bits, pixel):
        x = rng.integers(0, 1 << bits, (G.in_h, G.in_w, G.in_ch)).astype(np.int32)
        got, _ = _run_pixel(bits, x, pixel, unpacked=True)
        rows = im2col_golden(x, 3, 3, 1, 1)
        index = pixel[0] * G.out_w + pixel[1]
        assert np.array_equal(got, rows[index])

    def test_unpack_copy_costs_more(self, rng):
        x4 = rng.integers(0, 16, (G.in_h, G.in_w, G.in_ch)).astype(np.int32)
        _, packed_perf = _run_pixel(4, x4, (1, 1), unpacked=False)
        _, unpack_perf = _run_pixel(4, x4, (1, 1), unpacked=True)
        assert unpack_perf.cycles > 2 * packed_perf.cycles


class TestHelpers:
    def test_buffer_bytes(self):
        assert im2col_buffer_bytes(G, 4, unpacked=False) == G.reduction // 2
        assert im2col_buffer_bytes(G, 4, unpacked=True) == G.reduction

    def test_pixel_and_row_bytes(self):
        assert pixel_bytes(G, 8) == 16
        assert pixel_bytes(G, 2) == 4
        assert padded_row_bytes(G, 8) == 6 * 16

    def test_segment_word_check(self):
        bad = ConvGeometry(in_h=4, in_w=4, in_ch=2, out_ch=4, kh=3, kw=3)
        with pytest.raises(KernelError):
            seg_words_packed(bad, 4)
