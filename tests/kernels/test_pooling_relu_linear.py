"""Pooling, ReLU, and linear kernels."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (
    LinearConfig,
    LinearKernel,
    PoolConfig,
    PoolKernel,
    ReluConfig,
    ReluKernel,
    avgpool_cascade_golden,
)
from repro.qnn import maxpool_golden, requantize_shift


class TestMaxPool:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    def test_matches_golden(self, rng, bits):
        x = rng.integers(0, 1 << bits, (6, 8, 32 if bits != 2 else 16)).astype(np.int32)
        cfg = PoolConfig(in_h=6, in_w=8, channels=x.shape[2], bits=bits, op="max")
        run = PoolKernel(cfg).run(x)
        assert np.array_equal(run.output, maxpool_golden(x, 2))

    def test_output_shape(self, rng):
        x = rng.integers(0, 255, (4, 4, 8)).astype(np.int32)
        run = PoolKernel(PoolConfig(4, 4, 8, 8)).run(x)
        assert run.output.shape == (2, 2, 8)

    def test_cycles_scale_with_bits(self, rng):
        cycles = {}
        for bits in (8, 4, 2):
            x = rng.integers(0, 1 << bits, (8, 8, 32)).astype(np.int32)
            run = PoolKernel(PoolConfig(8, 8, 32, bits)).run(x)
            cycles[bits] = run.cycles
        assert cycles[8] > cycles[4] > cycles[2]


class TestAvgPool:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    def test_matches_cascade_golden(self, rng, bits):
        x = rng.integers(0, 1 << bits, (4, 4, 16)).astype(np.int32)
        run = PoolKernel(PoolConfig(4, 4, 16, bits, op="avg")).run(x)
        assert np.array_equal(run.output, avgpool_cascade_golden(x))

    def test_cascade_vs_floor_difference(self):
        """Regression pin: the documented cascade semantics."""
        x = np.zeros((2, 2, 16), dtype=np.int32)
        x[0, 0, 0], x[1, 0, 0] = 1, 3  # avg(avg(1,0), avg(3,0)) = 0
        run = PoolKernel(PoolConfig(2, 2, 16, 4, op="avg")).run(x)
        assert run.output[0, 0, 0] == 0


class TestPoolValidation:
    def test_odd_spatial_rejected(self):
        with pytest.raises(KernelError):
            PoolConfig(5, 4, 16, 8)

    def test_partial_word_channels_rejected(self):
        with pytest.raises(KernelError):
            PoolConfig(4, 4, 3, 8)

    def test_subbyte_needs_extended_isa(self):
        with pytest.raises(KernelError):
            PoolConfig(4, 4, 16, 4, isa="ri5cy")

    def test_bad_op(self):
        with pytest.raises(KernelError):
            PoolConfig(4, 4, 16, 8, op="median")

    def test_shape_mismatch(self, rng):
        kern = PoolKernel(PoolConfig(4, 4, 16, 8))
        with pytest.raises(KernelError):
            kern.run(np.zeros((4, 4, 8), dtype=np.int32))


class TestRelu:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    def test_matches_golden(self, rng, bits):
        lo = -(1 << (bits - 1))
        values = rng.integers(lo, 1 << (bits - 1), 128).astype(np.int32)
        run = ReluKernel(ReluConfig(elements=128, bits=bits)).run(values)
        assert np.array_equal(run.output, np.maximum(values, 0))

    def test_one_simd_op_per_word(self, rng):
        values = rng.integers(-8, 8, 248).astype(np.int32)
        run = ReluKernel(ReluConfig(elements=248, bits=4)).run(values)
        # 31 words, one pv.max.sc per word; no other ALU work in the loop
        assert run.perf.by_class["alu"] == 31

    def test_baseline_8bit_allowed(self, rng):
        values = rng.integers(-128, 128, 64).astype(np.int32)
        run = ReluKernel(ReluConfig(elements=64, bits=8, isa="ri5cy")).run(values)
        assert np.array_equal(run.output, np.maximum(values, 0))

    def test_partial_word_rejected(self):
        with pytest.raises(KernelError):
            ReluConfig(elements=5, bits=8)


class TestLinear:
    @pytest.mark.parametrize("bits", [8, 4, 2])
    def test_matches_golden(self, rng, bits):
        in_f, out_f = 128, 16
        lo = -(1 << (bits - 1))
        w = rng.integers(lo, 1 << (bits - 1), (out_f, in_f)).astype(np.int32)
        x = rng.integers(0, 1 << bits, in_f).astype(np.int32)
        run = LinearKernel(LinearConfig(in_f, out_f, bits)).run(w, x, shift=6)
        expected = requantize_shift(w.astype(np.int64) @ x, 6, 8, signed=False)
        assert np.array_equal(run.output, expected)

    def test_cycles_scale_with_bits(self, rng):
        cycles = {}
        for bits in (8, 4, 2):
            lo = -(1 << (bits - 1))
            w = rng.integers(lo, 1 << (bits - 1), (8, 128)).astype(np.int32)
            x = rng.integers(0, 1 << bits, 128).astype(np.int32)
            run = LinearKernel(LinearConfig(128, 8, bits)).run(w, x, shift=6)
            cycles[bits] = run.cycles
        assert cycles[8] > cycles[4] > cycles[2]

    def test_odd_out_features_rejected(self):
        with pytest.raises(KernelError):
            LinearConfig(128, 9, 8)

    def test_input_size_checked(self, rng):
        kern = LinearKernel(LinearConfig(128, 8, 8))
        with pytest.raises(KernelError):
            kern.run(np.zeros((8, 128), dtype=np.int32), np.zeros(64, dtype=np.int32))
