"""Baseline unpack sequences: element order, sign handling, cost model."""

import numpy as np
import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu
from repro.kernels.unpack import (
    constants_needed,
    emit_load_unpack_constants,
    emit_unpack,
    golden_unpack_word,
    unpack_cost,
    words_out,
)

REGS = {
    "scratch0": "t5", "scratch1": "t6", "scratch2": "t4",
    "sel_lo": "s0", "sel_hi": "s1", "mask": "gp",
    "sel_half_lo": "t3", "sel_half_hi": "ra",
}
DEST_INDEX = {"a0": 10, "a1": 11, "a2": 12, "a3": 13}


def _run_unpack(word, bits, signed, style):
    b = KernelBuilder(isa="ri5cy")
    emit_load_unpack_constants(b, bits, signed, style, REGS)
    b.li("t1", word)
    before = b.instruction_count
    dests = list(DEST_INDEX)[: words_out(bits)]
    emit_unpack(b, bits, "t1", dests, signed, style, REGS)
    emitted = b.instruction_count - before
    b.ebreak()
    cpu = Cpu(isa="ri5cy")
    cpu.run_program(b.build())
    out = []
    for dest in dests:
        value = cpu.regs[DEST_INDEX[dest]]
        out += [(value >> (8 * i)) & 0xFF for i in range(4)]
    out = np.array(out, dtype=np.int32)
    return np.where(out >= 128, out - 256, out), emitted


@pytest.mark.parametrize("style", ["extract", "shuffle"])
@pytest.mark.parametrize("signed", [True, False])
@pytest.mark.parametrize("bits", [4, 2])
def test_unpack_matches_golden(rng, bits, signed, style):
    for _ in range(5):
        word = int(rng.integers(0, 1 << 32))
        got, emitted = _run_unpack(word, bits, signed, style)
        assert np.array_equal(got, golden_unpack_word(word, bits, signed)), (
            f"word={word:#010x}"
        )
        assert emitted == unpack_cost(bits, signed, style)


class TestCostModel:
    def test_extract_cost_is_2_per_element(self):
        assert unpack_cost(4, True, "extract") == 16
        assert unpack_cost(2, True, "extract") == 32

    def test_shuffle_cheaper_than_extract(self):
        for bits in (4, 2):
            for signed in (True, False):
                assert unpack_cost(bits, signed, "shuffle") < unpack_cost(
                    bits, signed, "extract"
                )

    def test_unsigned_nibble_shuffle_saves_one(self):
        assert unpack_cost(4, False, "shuffle") == unpack_cost(4, True, "shuffle") - 1


class TestConstants:
    def test_extract_needs_no_constants(self):
        assert constants_needed(4, True, "extract") == []

    def test_shuffle_signed_needs_selectors(self):
        assert set(constants_needed(4, True, "shuffle")) == {"sel_lo", "sel_hi"}

    def test_shuffle_unsigned_needs_mask(self):
        assert "mask" in constants_needed(4, False, "shuffle")

    def test_crumb_needs_half_selectors(self):
        roles = constants_needed(2, True, "shuffle")
        assert "sel_half_lo" in roles and "sel_half_hi" in roles


class TestGoldenModel:
    def test_golden_unpack_signed(self):
        got = golden_unpack_word(0x8F, 4, signed=True)
        assert got[0] == -1 and got[1] == -8

    def test_golden_unpack_unsigned(self):
        got = golden_unpack_word(0b11100100, 2, signed=False)
        assert list(got[:4]) == [0, 1, 2, 3]

    def test_bad_bits_raises(self):
        from repro.errors import KernelError

        b = KernelBuilder(isa="ri5cy")
        with pytest.raises(KernelError):
            emit_unpack(b, 8, "t0", ["a0"], True, "extract", REGS)
