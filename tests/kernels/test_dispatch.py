"""Kernel dispatch parity: ``select()`` must match direct construction.

The refactor's behavior-preservation contract: for every (op, bits)
point, dispatching through the target registry builds the same kernel —
identical output bits AND identical cycle counts — as spelling out the
Config/Kernel pair by hand.
"""

import numpy as np
import pytest

from repro.errors import KernelError, TargetError
from repro.kernels import (
    ConvConfig,
    ConvKernel,
    KernelSelection,
    MatmulConfig,
    MatmulKernel,
    select,
)
from repro.qnn import (
    conv2d_golden,
    random_activations,
    random_weights,
    requantize_shift,
    thresholds_from_accumulators,
)
from repro.target import names
from tests.conftest import TINY_GEOMETRY

K, CO = 96, 8


def _conv_inputs(bits, seed=11):
    rng = np.random.default_rng(seed)
    g = TINY_GEOMETRY
    w = random_weights((g.out_ch, g.kh, g.kw, g.in_ch), bits, rng)
    x = random_activations((g.in_h, g.in_w, g.in_ch), bits, rng)
    return w, x


def _run_conv(kernel, bits, w, x):
    acc = conv2d_golden(x, w, stride=TINY_GEOMETRY.stride,
                        pad=TINY_GEOMETRY.pad)
    if bits == 8:
        return kernel.run(w, x, shift=8)
    table = thresholds_from_accumulators(acc, bits)
    return kernel.run(w, x, thresholds=table)


class TestConvParity:
    @pytest.mark.parametrize("bits,target,quant", [
        (8, names.XPULPNN, "shift"),
        (4, names.XPULPNN, "hw"),
        (2, names.XPULPNN, "hw"),
        (4, names.RI5CY, "sw"),
        (2, names.RI5CY, "sw"),
    ])
    def test_cycles_and_outputs_identical(self, bits, target, quant):
        w, x = _conv_inputs(bits)
        sel = select("conv", bits, target, geometry=TINY_GEOMETRY)
        assert sel.quant == quant and sel.cores == 1
        direct = ConvKernel(ConvConfig(geometry=TINY_GEOMETRY, bits=bits,
                                       isa=sel.spec.isa, quant=quant))
        got = _run_conv(sel.kernel, bits, w, x)
        want = _run_conv(direct, bits, w, x)
        assert np.array_equal(got.output, want.output)
        assert got.cycles == want.cycles

    def test_quant_override(self):
        sel = select("conv", 4, names.XPULPNN, quant="sw",
                     geometry=TINY_GEOMETRY)
        assert sel.quant == "sw"


class TestMatmulParity:
    @pytest.mark.parametrize("bits,target,quant", [
        (8, names.XPULPNN, "shift"),
        (4, names.XPULPNN, "hw"),
        (2, names.XPULPNN, "hw"),
        (4, names.RI5CY, "sw"),
    ])
    def test_cycles_and_outputs_identical(self, bits, target, quant):
        rng = np.random.default_rng(7 + bits)
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        w = rng.integers(lo, hi, (CO, K)).astype(np.int32)
        x0 = rng.integers(0, 1 << bits, K).astype(np.int32)
        x1 = rng.integers(0, 1 << bits, K).astype(np.int32)
        acc = np.stack([x0.astype(np.int64) @ w.T.astype(np.int64),
                        x1.astype(np.int64) @ w.T.astype(np.int64)])

        sel = select("matmul", bits, target, reduction=K, out_ch=CO)
        assert sel.quant == quant
        direct = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=bits,
                                           isa=sel.spec.isa, quant=quant))
        if bits == 8:
            got = sel.run(w, x0, x1, shift=10)
            want = direct.run(w, x0, x1, shift=10)
            assert np.array_equal(want.output,
                                  requantize_shift(acc, 10, 8))
        else:
            table = thresholds_from_accumulators(acc, bits)
            got = sel.run(w, x0, x1, thresholds=table)
            want = direct.run(w, x0, x1, thresholds=table)
        assert np.array_equal(got.output, want.output)
        assert got.cycles == want.cycles


class TestSelection:
    def test_cluster_target_shards_matmul(self):
        sel = select("matmul", 4, "xpulpnn-cluster4", reduction=K, out_ch=CO)
        assert sel.parallel and sel.cores == 4
        assert isinstance(sel, KernelSelection)

    def test_cluster_conv_falls_back_when_asked(self):
        # TINY_GEOMETRY's 4 output rows do not shard across 8 cores.
        sel = select("conv", 4, "xpulpnn-cluster8", cluster_fallback=True,
                     geometry=TINY_GEOMETRY)
        assert sel.cores == 1
        with pytest.raises(KernelError):
            select("conv", 4, "xpulpnn-cluster8", geometry=TINY_GEOMETRY)

    def test_sub_byte_linear_widens_without_simd(self):
        narrow = select("linear", 4, names.XPULPNN, in_features=16,
                        out_features=4)
        wide = select("linear", 4, names.RI5CY, in_features=16,
                      out_features=4)
        assert narrow.kernel.config.bits == 4
        assert wide.kernel.config.bits == 8

    def test_arm_target_rejected(self):
        with pytest.raises(TargetError, match="stm32l4"):
            select("conv", 8, names.STM32L4, geometry=TINY_GEOMETRY)

    def test_unknown_op_rejected(self):
        with pytest.raises(KernelError, match="transpose"):
            select("transpose", 8, names.XPULPNN)
