"""Full convolution kernels: bit-exactness and cycle-count shape."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import ConvConfig, ConvKernel
from repro.qnn import (
    ConvGeometry,
    conv2d_golden,
    random_activations,
    random_weights,
    requantize_shift,
    thresholds_from_accumulators,
)
from tests.conftest import TINY_GEOMETRY

CONFIGS = [
    (8, "ri5cy", "shift"),
    (8, "xpulpnn", "shift"),
    (4, "xpulpnn", "hw"),
    (4, "xpulpnn", "sw"),
    (4, "ri5cy", "sw"),
    (2, "xpulpnn", "hw"),
    (2, "xpulpnn", "sw"),
    (2, "ri5cy", "sw"),
]


@pytest.fixture(scope="module")
def runs():
    """Run the whole kernel matrix once on the tiny geometry."""
    rng = np.random.default_rng(11)
    g = TINY_GEOMETRY
    results = {}
    for bits, isa, quant in CONFIGS:
        w = random_weights((g.out_ch, g.kh, g.kw, g.in_ch), bits, rng)
        x = random_activations((g.in_h, g.in_w, g.in_ch), bits, rng)
        acc = conv2d_golden(x, w, stride=g.stride, pad=g.pad)
        kern = ConvKernel(ConvConfig(geometry=g, bits=bits, isa=isa, quant=quant))
        if quant == "shift":
            run = kern.run(w, x, shift=8, profile_quant=True)
            expected = requantize_shift(acc, 8, 8, signed=False)
        else:
            table = thresholds_from_accumulators(acc, bits)
            run = kern.run(w, x, thresholds=table, profile_quant=True)
            expected = table.quantize(acc, channel_axis=-1)
        results[(bits, isa, quant)] = (run, expected)
    return results


@pytest.mark.parametrize("key", CONFIGS, ids=lambda k: f"{k[0]}b-{k[1]}-{k[2]}")
def test_bit_exact_vs_golden(runs, key):
    run, expected = runs[key]
    assert np.array_equal(run.output, expected)


class TestCycleShape:
    def test_8bit_identical_on_both_cores(self, runs):
        assert runs[(8, "ri5cy", "shift")][0].cycles == \
            runs[(8, "xpulpnn", "shift")][0].cycles

    def test_4bit_speedup_in_paper_zone(self, runs):
        """Paper: 5.3x. Geometry-dependent within ~±20 %."""
        ratio = runs[(4, "ri5cy", "sw")][0].cycles / runs[(4, "xpulpnn", "hw")][0].cycles
        assert 4.0 <= ratio <= 6.5, ratio

    def test_2bit_speedup_in_paper_zone(self, runs):
        """Paper: 8.9x."""
        ratio = runs[(2, "ri5cy", "sw")][0].cycles / runs[(2, "xpulpnn", "hw")][0].cycles
        assert 7.0 <= ratio <= 11.0, ratio

    def test_subbyte_scales_with_bitwidth(self, runs):
        c8 = runs[(8, "xpulpnn", "shift")][0].cycles
        c4 = runs[(4, "xpulpnn", "hw")][0].cycles
        c2 = runs[(2, "xpulpnn", "hw")][0].cycles
        assert c8 > c4 > c2
        assert 1.4 <= c8 / c4 <= 2.2      # "almost linear"
        assert 2.2 <= c8 / c2 <= 4.0

    def test_hw_quant_beats_sw_quant(self, runs):
        for bits in (4, 2):
            sw = runs[(bits, "xpulpnn", "sw")][0].cycles
            hw = runs[(bits, "xpulpnn", "hw")][0].cycles
            assert 1.05 <= sw / hw <= 1.5

    def test_quant_share_small_with_pv_qnt(self, runs):
        run4 = runs[(4, "xpulpnn", "hw")][0]
        share = run4.detail["quant_cycles"] / run4.cycles
        assert 0.02 <= share <= 0.12

    def test_quant_share_larger_at_2bit(self, runs):
        run4 = runs[(4, "xpulpnn", "hw")][0]
        run2 = runs[(2, "xpulpnn", "hw")][0]
        assert (run2.detail["quant_cycles"] / run2.cycles) > (
            run4.detail["quant_cycles"] / run4.cycles
        )

    def test_baseline_mac_per_cycle_below_one(self, runs):
        g = TINY_GEOMETRY
        run = runs[(4, "ri5cy", "sw")][0]
        assert run.macs_per_cycle(g.macs) < 1.0

    def test_extended_4bit_mac_per_cycle(self, runs):
        g = TINY_GEOMETRY
        run = runs[(4, "xpulpnn", "hw")][0]
        assert run.macs_per_cycle(g.macs) > 2.0


class TestGeometryVariants:
    def test_stride_2(self, rng):
        g = ConvGeometry(in_h=8, in_w=8, in_ch=16, out_ch=8, kh=3, kw=3,
                         stride=2, pad=1)
        w = random_weights((8, 3, 3, 16), 4, rng)
        x = random_activations((8, 8, 16), 4, rng)
        acc = conv2d_golden(x, w, stride=2, pad=1)
        table = thresholds_from_accumulators(acc, 4)
        run = ConvKernel(ConvConfig(geometry=g, bits=4, quant="hw")).run(
            w, x, thresholds=table)
        assert np.array_equal(run.output, table.quantize(acc))

    def test_no_padding(self, rng):
        g = ConvGeometry(in_h=8, in_w=8, in_ch=16, out_ch=8, kh=3, kw=3,
                         stride=1, pad=0)
        w = random_weights((8, 3, 3, 16), 4, rng)
        x = random_activations((8, 8, 16), 4, rng)
        acc = conv2d_golden(x, w, stride=1, pad=0)
        table = thresholds_from_accumulators(acc, 4)
        run = ConvKernel(ConvConfig(geometry=g, bits=4, quant="hw")).run(
            w, x, thresholds=table)
        assert np.array_equal(run.output, table.quantize(acc))

    def test_1x1_kernel(self, rng):
        g = ConvGeometry(in_h=4, in_w=4, in_ch=32, out_ch=8, kh=1, kw=1,
                         stride=1, pad=0)
        w = random_weights((8, 1, 1, 32), 4, rng)
        x = random_activations((4, 4, 32), 4, rng)
        acc = conv2d_golden(x, w)
        table = thresholds_from_accumulators(acc, 4)
        run = ConvKernel(ConvConfig(geometry=g, bits=4, quant="hw")).run(
            w, x, thresholds=table)
        assert np.array_equal(run.output, table.quantize(acc))


class TestValidation:
    def test_odd_out_w_rejected(self):
        g = ConvGeometry(in_h=5, in_w=5, in_ch=16, out_ch=8, pad=0)
        with pytest.raises(KernelError):
            ConvConfig(geometry=g, bits=4, quant="hw")

    def test_2bit_out_ch_multiple_of_4(self):
        g = ConvGeometry(in_h=6, in_w=6, in_ch=16, out_ch=6, pad=1)
        with pytest.raises(KernelError):
            ConvConfig(geometry=g, bits=2, quant="hw")

    def test_segment_word_fill(self):
        g = ConvGeometry(in_h=6, in_w=6, in_ch=4, out_ch=8, pad=1)
        with pytest.raises(KernelError):
            ConvConfig(geometry=g, bits=2, quant="hw")

    def test_hw_quant_needs_extended_core(self):
        with pytest.raises(KernelError):
            ConvConfig(geometry=TINY_GEOMETRY, bits=4, isa="ri5cy", quant="hw")

    def test_baseline_shuffle_style_rejected(self):
        with pytest.raises(KernelError):
            ConvConfig(geometry=TINY_GEOMETRY, bits=4, isa="ri5cy",
                       quant="sw", unpack_style="shuffle")

    def test_shape_mismatch_raises(self, rng):
        kern = ConvKernel(ConvConfig(geometry=TINY_GEOMETRY, bits=4, quant="hw"))
        with pytest.raises(KernelError):
            kern.run(np.zeros((1, 1, 1, 1)), np.zeros((6, 6, 16)))

    def test_threshold_channel_mismatch(self, rng):
        from repro.qnn import random_threshold_table

        g = TINY_GEOMETRY
        kern = ConvKernel(ConvConfig(geometry=g, bits=4, quant="hw"))
        w = random_weights((g.out_ch, 3, 3, g.in_ch), 4, rng)
        x = random_activations((6, 6, 16), 4, rng)
        with pytest.raises(KernelError):
            kern.run(w, x, thresholds=random_threshold_table(4, 4))


class TestBias:
    def test_bias_added_to_accumulators(self, rng):
        g = TINY_GEOMETRY
        w = random_weights((g.out_ch, 3, 3, g.in_ch), 8, rng)
        x = random_activations((6, 6, g.in_ch), 8, rng)
        bias = rng.integers(-4000, 4000, g.out_ch)
        kern = ConvKernel(ConvConfig(geometry=g, bits=8, quant="shift",
                                     with_bias=True))
        run = kern.run(w, x, shift=8, bias=bias)
        acc = conv2d_golden(x, w, 1, 1) + bias
        assert np.array_equal(run.output,
                              requantize_shift(acc, 8, 8, signed=False))

    def test_negative_bias_clamps_to_zero(self, rng):
        g = TINY_GEOMETRY
        w = np.zeros((g.out_ch, 3, 3, g.in_ch), dtype=np.int32)
        x = random_activations((6, 6, g.in_ch), 8, rng)
        bias = np.full(g.out_ch, -1000)
        kern = ConvKernel(ConvConfig(geometry=g, bits=8, quant="shift",
                                     with_bias=True))
        run = kern.run(w, x, shift=0, bias=bias)
        assert run.output.max() == 0

    def test_bias_requires_shift_path(self):
        with pytest.raises(KernelError):
            ConvConfig(geometry=TINY_GEOMETRY, bits=4, quant="hw",
                       with_bias=True)

    def test_bias_vector_required(self, rng):
        g = TINY_GEOMETRY
        kern = ConvKernel(ConvConfig(geometry=g, bits=8, quant="shift",
                                     with_bias=True))
        w = random_weights((g.out_ch, 3, 3, g.in_ch), 8, rng)
        x = random_activations((6, 6, g.in_ch), 8, rng)
        with pytest.raises(KernelError):
            kern.run(w, x, shift=8)

    def test_bias_on_plain_kernel_rejected(self, rng):
        g = TINY_GEOMETRY
        kern = ConvKernel(ConvConfig(geometry=g, bits=8, quant="shift"))
        w = random_weights((g.out_ch, 3, 3, g.in_ch), 8, rng)
        x = random_activations((6, 6, g.in_ch), 8, rng)
        with pytest.raises(KernelError):
            kern.run(w, x, shift=8, bias=np.zeros(g.out_ch))
