"""Every generated kernel carries `.region` markers for the tracer."""

from repro.kernels.depthwise import DepthwiseConfig, DepthwiseConvKernel
from repro.kernels.linear import LinearConfig, LinearKernel
from repro.kernels.pooling import PoolConfig, PoolKernel


def region_names(program):
    return set(program.regions)


class TestRegionMarkers:
    def test_linear_kernel_regions(self):
        kernel = LinearKernel(LinearConfig(in_features=64, out_features=8,
                                           bits=8))
        assert {"prologue", "dotprod", "quant"} <= region_names(
            kernel.program)

    def test_pool_kernel_regions(self):
        kernel = PoolKernel(PoolConfig(4, 4, 16, 8))
        assert {"prologue", "pool"} <= region_names(kernel.program)

    def test_depthwise_kernel_regions(self):
        kernel = DepthwiseConvKernel(DepthwiseConfig(in_h=4, in_w=4,
                                                     channels=4))
        assert {"prologue", "dotprod", "quant"} <= region_names(
            kernel.program)

    def test_region_map_resolves_addresses(self):
        kernel = PoolKernel(PoolConfig(4, 4, 16, 8))
        names = set(kernel.program.region_map().values())
        assert {"prologue", "pool"} <= names
