"""Depthwise convolution kernel tests."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import DepthwiseConfig, DepthwiseConvKernel, depthwise_golden
from repro.qnn import requantize_shift


@pytest.fixture
def data(rng):
    def make(h=6, w=6, c=8):
        weights = rng.integers(-128, 128, (3, 3, c)).astype(np.int32)
        acts = rng.integers(0, 256, (h, w, c)).astype(np.int32)
        return weights, acts

    return make


class TestGolden:
    def test_single_channel_matches_dense(self, rng):
        """With one channel, depthwise equals a dense conv."""
        from repro.qnn import conv2d_golden

        w = rng.integers(-8, 8, (3, 3, 1)).astype(np.int64)
        x = rng.integers(0, 16, (5, 5, 1)).astype(np.int64)
        dw = depthwise_golden(x, w, stride=1, pad=1)
        dense = conv2d_golden(x, w.reshape(1, 3, 3, 1), stride=1, pad=1)
        assert np.array_equal(dw, dense)

    def test_channels_independent(self, rng):
        w = rng.integers(-8, 8, (3, 3, 4)).astype(np.int64)
        x = rng.integers(0, 16, (5, 5, 4)).astype(np.int64)
        full = depthwise_golden(x, w, pad=1)
        solo = depthwise_golden(x[:, :, :1], w[:, :, :1], pad=1)
        assert np.array_equal(full[:, :, :1], solo)

    def test_channel_mismatch_raises(self):
        with pytest.raises(KernelError):
            depthwise_golden(np.zeros((4, 4, 2)), np.zeros((3, 3, 3)))


class TestKernel:
    def test_matches_golden(self, data):
        w, x = data()
        cfg = DepthwiseConfig(in_h=6, in_w=6, channels=8)
        run = DepthwiseConvKernel(cfg).run(w, x, shift=8)
        expected = requantize_shift(depthwise_golden(x, w, 1, 1), 8, 8,
                                    signed=False)
        assert np.array_equal(run.output, expected)

    def test_no_padding(self, data):
        w, x = data()
        cfg = DepthwiseConfig(in_h=6, in_w=6, channels=8, pad=0)
        run = DepthwiseConvKernel(cfg).run(w, x, shift=8)
        expected = requantize_shift(depthwise_golden(x, w, 1, 0), 8, 8,
                                    signed=False)
        assert run.output.shape == (4, 4, 8)
        assert np.array_equal(run.output, expected)

    def test_stride_2(self, data):
        w, x = data(h=8, w=8)
        cfg = DepthwiseConfig(in_h=8, in_w=8, channels=8, stride=2, pad=1)
        run = DepthwiseConvKernel(cfg).run(w, x, shift=8)
        expected = requantize_shift(depthwise_golden(x, w, 2, 1), 8, 8,
                                    signed=False)
        assert np.array_equal(run.output, expected)

    def test_runs_on_baseline_core(self, data):
        """Depthwise uses no XpulpNN instruction — identical on RI5CY."""
        w, x = data()
        cfg = DepthwiseConfig(in_h=6, in_w=6, channels=8, isa="ri5cy")
        run = DepthwiseConvKernel(cfg).run(w, x, shift=8)
        expected = requantize_shift(depthwise_golden(x, w, 1, 1), 8, 8,
                                    signed=False)
        assert np.array_equal(run.output, expected)

    def test_much_slower_per_mac_than_dense(self, data):
        """Scalar-MAC depthwise costs several cycles/MAC — the known
        depthwise inefficiency of MCU-class cores."""
        w, x = data()
        cfg = DepthwiseConfig(in_h=6, in_w=6, channels=8)
        run = DepthwiseConvKernel(cfg).run(w, x, shift=8)
        assert run.cycles / cfg.macs > 3.0

    def test_validation(self):
        with pytest.raises(KernelError):
            DepthwiseConfig(in_h=6, in_w=6, channels=6)  # partial word
        with pytest.raises(KernelError):
            DepthwiseConfig(in_h=2, in_w=2, channels=4, pad=0, kh=5, kw=5)

    def test_shape_check(self, data):
        w, x = data()
        kern = DepthwiseConvKernel(DepthwiseConfig(in_h=6, in_w=6, channels=8))
        with pytest.raises(KernelError):
            kern.run(w[:, :, :4], x, shift=8)
