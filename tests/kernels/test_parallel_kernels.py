"""Cluster-parallel kernels: bit-exactness vs single core, and scaling."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import (
    ConvConfig,
    ConvKernel,
    MatmulConfig,
    MatmulKernel,
    ParallelConvConfig,
    ParallelConvKernel,
    ParallelMatmulConfig,
    ParallelMatmulKernel,
)
from repro.qnn import ConvGeometry, random_threshold_table

K, CO = 256, 64


@pytest.fixture
def matmul_data(rng):
    def make(bits):
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        w = rng.integers(lo, hi, (CO, K)).astype(np.int32)
        x0 = rng.integers(0, 1 << bits, K).astype(np.int32)
        x1 = rng.integers(0, 1 << bits, K).astype(np.int32)
        return w, x0, x1

    return make


def _single(bits, quant):
    return MatmulKernel(MatmulConfig(
        reduction=K, out_ch=CO, bits=bits, isa="xpulpnn", quant=quant))


def _parallel(bits, quant, cores):
    return ParallelMatmulKernel(ParallelMatmulConfig(
        reduction=K, out_ch=CO, bits=bits, num_cores=cores, quant=quant))


class TestParallelMatmulExactness:
    @pytest.mark.parametrize("bits,quant", [
        (8, "shift"), (4, "hw"), (4, "sw"), (2, "hw"),
    ])
    @pytest.mark.parametrize("cores", [1, 2, 8])
    def test_bit_identical_to_single_core(self, matmul_data, rng,
                                          bits, quant, cores):
        w, x0, x1 = matmul_data(bits)
        table = (random_threshold_table(CO, bits, spread=600, rng=rng)
                 if bits != 8 else None)
        single = _single(bits, quant).run(w, x0, x1, thresholds=table,
                                          shift=10)
        par = _parallel(bits, quant, cores).run(w, x0, x1, thresholds=table,
                                                shift=10)
        assert np.array_equal(single.output, par.output)

    def test_acceptance_8core_4bit_speedup(self, matmul_data, rng):
        """The PR's acceptance bar: 8-core 4-bit MatMul bit-identical with
        >= 6x modeled speedup (>= 75 % parallel efficiency)."""
        w, x0, x1 = matmul_data(4)
        table = random_threshold_table(CO, 4, spread=600, rng=rng)
        single = _single(4, "hw").run(w, x0, x1, thresholds=table)
        par = _parallel(4, "hw", 8).run(w, x0, x1, thresholds=table)
        assert np.array_equal(single.output, par.output)
        speedup = single.cycles / par.cycles
        assert speedup >= 6.0
        assert speedup / 8 >= 0.75

    def test_barrier_and_idle_accounted(self, matmul_data, rng):
        w, x0, x1 = matmul_data(4)
        table = random_threshold_table(CO, 4, spread=600, rng=rng)
        par = _parallel(4, "hw", 4).run(w, x0, x1, thresholds=table)
        assert par.run.barriers == 1
        clocks = [p.cycles for p in par.run.per_core]
        assert max(clocks) - min(clocks) <= 4
        assert par.dma_in_cycles > 0 and par.dma_out_cycles > 0


class TestParallelMatmulConfig:
    def test_rejects_unsplittable_channels(self):
        with pytest.raises(KernelError):
            ParallelMatmulConfig(reduction=K, out_ch=24, bits=4,
                                 num_cores=8, quant="hw")

    def test_rejects_2bit_odd_pairs_per_core(self):
        # 48/8 = 6 channels per core: pairs are not packed-byte aligned.
        with pytest.raises(KernelError):
            ParallelMatmulConfig(reduction=K, out_ch=48, bits=2,
                                 num_cores=8, quant="hw")

    def test_rejects_baseline_subbyte(self):
        with pytest.raises(KernelError):
            ParallelMatmulConfig(reduction=K, out_ch=CO, bits=4,
                                 num_cores=8, isa="ri5cy", quant="sw")

    def test_rejects_core_count_mismatch(self, matmul_data, rng):
        from repro.cluster import Cluster

        w, x0, x1 = matmul_data(8)
        kern = _parallel(8, "shift", 4)
        with pytest.raises(KernelError, match="cores"):
            kern.run(w, x0, x1, shift=10, cluster=Cluster(num_cores=8))


class TestParallelConv:
    GEOM = ConvGeometry(in_h=8, in_w=8, in_ch=16, out_ch=8,
                        kh=3, kw=3, stride=1, pad=1)

    @pytest.mark.parametrize("bits,quant", [(8, "shift"), (4, "hw"),
                                            (2, "hw")])
    @pytest.mark.parametrize("cores", [2, 8])
    def test_bit_identical_to_single_core(self, rng, bits, quant, cores):
        g = self.GEOM
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        w = rng.integers(lo, hi, (g.out_ch, g.kh, g.kw, g.in_ch)).astype(np.int32)
        x = rng.integers(0, 1 << bits, (g.in_h, g.in_w, g.in_ch)).astype(np.int32)
        table = (random_threshold_table(g.out_ch, bits, spread=600, rng=rng)
                 if bits != 8 else None)
        single = ConvKernel(ConvConfig(geometry=g, bits=bits, isa="xpulpnn",
                                       quant=quant)).run(
            w, x, thresholds=table, shift=10)
        par = ParallelConvKernel(ParallelConvConfig(
            geometry=g, bits=bits, isa="xpulpnn", quant=quant,
            num_cores=cores)).run(w, x, thresholds=table, shift=10)
        assert np.array_equal(single.output, par.output)
        if cores == 8:
            assert single.cycles / par.cycles > 4.0

    def test_rejects_unsplittable_rows(self):
        g = ConvGeometry(in_h=6, in_w=6, in_ch=16, out_ch=8,
                         kh=3, kw=3, stride=1, pad=1)
        with pytest.raises(KernelError, match="split"):
            ParallelConvConfig(geometry=g, bits=4, quant="hw", num_cores=4)

    def test_rejects_baseline_isa(self):
        with pytest.raises(KernelError, match="native"):
            ParallelConvConfig(geometry=self.GEOM, bits=4, isa="ri5cy",
                               quant="sw", num_cores=2)
