"""Failure-injection and structural-limit tests across the kernel layer."""

import numpy as np
import pytest

from repro.errors import KernelError, MemoryAccessError, SimError
from repro.kernels import ConvConfig, MatmulConfig, MatmulKernel
from repro.qnn import ConvGeometry


class TestStructuralLimits:
    def test_wide_rows_rejected(self):
        """im2col row offsets must fit the addi immediate."""
        g = ConvGeometry(in_h=8, in_w=128, in_ch=32, out_ch=8, kh=3, kw=3,
                         stride=1, pad=1)
        with pytest.raises(KernelError, match="rows too wide"):
            ConvConfig(geometry=g, bits=8, quant="shift")

    def test_baseline_large_reduction_rejected(self):
        """Baseline sub-byte MatMul requires an immediate loop count."""
        with pytest.raises(KernelError, match="immediate loop count"):
            MatmulKernel(MatmulConfig(reduction=8 * 40, out_ch=2, bits=4,
                                      isa="ri5cy", quant="none"))

    def test_native_large_reduction_uses_count_register(self, rng):
        """The native path handles reductions beyond the setupi range."""
        K = 8 * 40  # 40 packed words > 31
        w = rng.integers(-8, 8, (2, K)).astype(np.int32)
        x0 = rng.integers(0, 16, K).astype(np.int32)
        x1 = rng.integers(0, 16, K).astype(np.int32)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=2, bits=4,
                                         quant="none"))
        run = kern.run(w, x0, x1)
        expected = np.stack([x0.astype(np.int64) @ w.T,
                             x1.astype(np.int64) @ w.T])
        assert np.array_equal(run.output, expected)

    def test_pixel_advance_limit(self):
        g = ConvGeometry(in_h=8, in_w=8, in_ch=1024, out_ch=8, kh=1, kw=1,
                         stride=1, pad=0)
        with pytest.raises(KernelError):
            ConvConfig(geometry=g, bits=8, quant="shift")


class TestRuntimeFaults:
    def test_unmapped_fetch_traps(self):
        from repro.core import Cpu
        from repro.errors import TrapError

        cpu = Cpu(isa="xpulpnn")
        cpu.pc = 0x500
        with pytest.raises(TrapError):
            cpu.step()

    def test_out_of_memory_data_access(self):
        from repro.asm import assemble
        from repro.core import Cpu

        cpu = Cpu(isa="xpulpnn")
        program = assemble("lw a0, 0(a1)\nebreak", isa="xpulpnn")
        cpu.load_program(program)
        cpu.regs[11] = 0x7FFF_FFF0  # far outside the 512 kB memory
        with pytest.raises(MemoryAccessError):
            cpu.run()

    def test_soc_unmapped_region_fault(self):
        from repro.asm import assemble
        from repro.soc import L2_BASE, Pulpissimo

        soc = Pulpissimo()
        program = assemble("lw a0, 0(a1)\nebreak", base=L2_BASE)
        soc.cpu.load_program(program)
        soc.cpu.regs[11] = 0x0000_1000  # below every mapped region
        with pytest.raises(MemoryAccessError):
            soc.cpu.run()

    def test_runaway_kernel_guard(self):
        """A corrupted loop count cannot hang the harness."""
        from repro.asm import assemble
        from repro.core import Cpu

        cpu = Cpu(isa="xpulpnn")
        cpu.load_program(assemble("loop:\nj loop", isa="xpulpnn"))
        with pytest.raises(SimError):
            cpu.run(max_instructions=1000)

    def test_threshold_corruption_detected_by_harness(self, rng):
        """If thresholds are unsorted the table constructor refuses —
        corrupt staircases never reach the hardware walk silently."""
        from repro.qnn import ThresholdTable

        with pytest.raises(KernelError):
            ThresholdTable(bits=2, thresholds=np.array([[10, 5, 20]]))
