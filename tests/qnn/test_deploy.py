"""Network deployer: whole networks on the simulated MCU."""

import numpy as np
import pytest

from repro.errors import KernelError, TargetError
from repro.qnn import (
    MaxPool,
    NetworkDeployer,
    QnnNetwork,
    QuantizedConv,
    QuantizedLinear,
    random_activations,
    random_weights,
)


@pytest.fixture(scope="module")
def small_net():
    rng = np.random.default_rng(55)
    net = QnnNetwork(name="deploy-test")
    net.add(QuantizedConv(
        weights=random_weights((16, 3, 3, 16), 4, rng), weight_bits=4,
        in_bits=4, out_bits=4, pad=1, name="conv4"))
    net.add(MaxPool(size=2))
    net.add(QuantizedConv(
        weights=random_weights((16, 3, 3, 16), 2, rng), weight_bits=2,
        in_bits=2, out_bits=2, pad=1, name="conv2"))
    net.add(QuantizedLinear(
        weights=random_weights((8, 16 * 4 * 4), 4, rng), weight_bits=4,
        in_bits=4, out_bits=8, name="fc"))
    return net


@pytest.fixture(scope="module")
def result(small_net):
    rng = np.random.default_rng(56)
    x = random_activations((8, 8, 16), 4, rng)
    return NetworkDeployer(small_net, input_shape=(8, 8, 16),
                           input_bits=4).run(x)


class TestDeployment:
    def test_all_layers_verified(self, result):
        assert result.verified
        assert len(result.layers) == 4

    def test_output_shape(self, result):
        assert result.output.shape == (8,)

    def test_cycles_accumulate(self, result):
        assert result.total_cycles == sum(l.cycles for l in result.layers)
        assert result.total_cycles > 0

    def test_energy_positive(self, result):
        assert result.total_energy_uj > 0
        assert all(l.energy_uj >= 0 for l in result.layers)

    def test_latency(self, result):
        assert result.latency_ms == pytest.approx(
            result.total_cycles / 250e6 * 1e3)

    def test_layer_kinds(self, result):
        assert [l.kind for l in result.layers] == ["conv", "pool", "conv",
                                                   "linear"]

    def test_bits_tracked(self, result):
        assert [l.bits for l in result.layers] == [4, 4, 2, 8]

    def test_render(self, result):
        text = result.render()
        assert "conv4" in text and "verified=yes" in text

    def test_conv_layers_dominate_cycles(self, result):
        conv_cycles = sum(l.cycles for l in result.layers if l.kind == "conv")
        assert conv_cycles > 0.8 * result.total_cycles


class TestDeployerChecks:
    def test_input_shape_checked(self, small_net):
        deployer = NetworkDeployer(small_net, input_shape=(8, 8, 16),
                                   input_bits=4)
        with pytest.raises(KernelError):
            deployer.run(np.zeros((4, 4, 16), dtype=np.int32))

    def test_memory_budget_enforced(self):
        rng = np.random.default_rng(1)
        # A layer whose activations alone exceed 512 kB of L2.  The
        # baseline core has no tiled fallback, so it must reject it;
        # the XpulpNN deployer instead routes it through the tiling
        # compiler (tests/compiler/test_deploy_routing.py).
        net = QnnNetwork([QuantizedConv(
            weights=random_weights((8, 3, 3, 32), 8, rng), weight_bits=8,
            in_bits=8, out_bits=8, pad=1, name="huge")])
        deployer = NetworkDeployer(net, input_shape=(128, 128, 32),
                                   input_bits=8, target="ri5cy")
        with pytest.raises(KernelError, match="L2"):
            deployer.run(np.zeros((128, 128, 32), dtype=np.int32))

    def test_oversized_layer_rejected_on_single_core_xpulpnn(self):
        """Over-L2 layers raise on *every* single-core target (the old
        deployer silently fell back to tiling on XpulpNN only)."""
        rng = np.random.default_rng(2)
        net = QnnNetwork([QuantizedConv(
            weights=random_weights((8, 3, 3, 32), 8, rng), weight_bits=8,
            in_bits=8, out_bits=8, pad=1, name="huge")])
        deployer = NetworkDeployer(net, input_shape=(128, 128, 32),
                                   input_bits=8, target="xpulpnn")
        with pytest.raises(KernelError, match="xpulpnn"):
            deployer.run(np.zeros((128, 128, 32), dtype=np.int32))

    def test_unknown_layer_rejected(self):
        class Mystery:
            name = "?"

            def golden(self, x):
                return x

        net = QnnNetwork([Mystery()])
        deployer = NetworkDeployer(net, input_shape=(4, 4, 16), input_bits=4)
        with pytest.raises(KernelError, match="no kernel mapping"):
            deployer.run(np.zeros((4, 4, 16), dtype=np.int32))

    def test_baseline_core_deployment(self, small_net):
        """The same network deploys on the baseline core (sw staircase)."""
        rng = np.random.default_rng(57)
        x = random_activations((8, 8, 16), 4, rng)
        # Pooling at sub-byte needs XpulpNN; build an 8-bit-only net.
        net = QnnNetwork([QuantizedConv(
            weights=random_weights((8, 3, 3, 16), 8, rng), weight_bits=8,
            in_bits=8, out_bits=8, pad=1, name="conv8")])
        result = NetworkDeployer(net, input_shape=(8, 8, 16), input_bits=8,
                                 target="ri5cy").run(
            random_activations((8, 8, 16), 8, rng))
        assert result.verified

class TestClusterDeployment:
    @pytest.fixture(scope="class")
    def cluster_result(self, small_net):
        rng = np.random.default_rng(56)
        x = random_activations((8, 8, 16), 4, rng)
        return NetworkDeployer(small_net, input_shape=(8, 8, 16),
                               input_bits=4,
                               target="xpulpnn-cluster4").run(x)

    def test_bit_identical_to_single_core(self, small_net, result,
                                          cluster_result):
        assert cluster_result.verified
        assert np.array_equal(cluster_result.output, result.output)

    def test_conv_layers_parallelized(self, cluster_result):
        conv_cores = [l.cores for l in cluster_result.layers
                      if l.kind == "conv"]
        assert conv_cores == [4, 4]
        # Pool and linear layers stay on one core.
        other = [l.cores for l in cluster_result.layers
                 if l.kind != "conv"]
        assert all(c == 1 for c in other)

    def test_cluster_runs_faster(self, result, cluster_result):
        assert cluster_result.total_cycles < 0.5 * result.total_cycles

    def test_cluster_target_needs_xpulpnn(self, small_net):
        with pytest.raises(KernelError, match="cluster"):
            NetworkDeployer(small_net, input_shape=(8, 8, 16),
                            input_bits=4, isa="ri5cy", target="cluster")
        with pytest.raises(KernelError, match="cluster"):
            NetworkDeployer(small_net, input_shape=(8, 8, 16),
                            input_bits=4, isa="ri5cy",
                            target="xpulpnn-cluster4")

    def test_unknown_target_rejected(self, small_net):
        with pytest.raises(TargetError, match="gpu"):
            NetworkDeployer(small_net, input_shape=(8, 8, 16),
                            input_bits=4, target="gpu")

    def test_render_shows_cores(self, cluster_result):
        text = cluster_result.render()
        assert "cores" in text


class TestBridge:
    def test_bridge_drops_lsbs(self, small_net, result):
        """The 4->2 bit bridge must be a plain LSB drop."""
        deployer = NetworkDeployer(small_net, input_shape=(8, 8, 16),
                                   input_bits=4)
        x = np.array([[[15]]], dtype=np.int32)
        assert deployer._bridge(x, 4, 2)[0, 0, 0] == 3
        assert deployer._bridge(x, 4, 4)[0, 0, 0] == 15
        assert deployer._bridge(x, 2, 4)[0, 0, 0] == 15
