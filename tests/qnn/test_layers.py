"""Golden layer implementations: conv/im2col/matmul/pool/linear."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.qnn import (
    PAPER_LAYER,
    avgpool_golden,
    conv2d_golden,
    conv_out_size,
    im2col_golden,
    linear_golden,
    matmul_golden,
    maxpool_golden,
)


class TestGeometry:
    def test_out_size(self):
        assert conv_out_size(16, 3, 1, 1) == 16
        assert conv_out_size(16, 3, 1, 0) == 14
        assert conv_out_size(16, 3, 2, 1) == 8

    def test_paper_layer_macs(self):
        assert PAPER_LAYER.macs == 256 * 64 * 288  # 4.7 GMAC-ish

    def test_reduction(self):
        assert PAPER_LAYER.reduction == 3 * 3 * 32

    def test_describe(self):
        assert "16x16x32" in PAPER_LAYER.describe()


class TestIm2col:
    def test_identity_kernel(self):
        x = np.arange(2 * 2 * 3).reshape(2, 2, 3)
        rows = im2col_golden(x, 1, 1)
        assert rows.shape == (4, 3)
        assert np.array_equal(rows[0], x[0, 0])

    def test_patch_order_kh_kw_c(self):
        x = np.arange(3 * 3 * 2).reshape(3, 3, 2)
        rows = im2col_golden(x, 2, 2)
        # first patch covers pixels (0,0),(0,1),(1,0),(1,1)
        expected = np.concatenate([x[0, 0], x[0, 1], x[1, 0], x[1, 1]])
        assert np.array_equal(rows[0], expected)

    def test_padding_zero_fills(self):
        x = np.ones((2, 2, 1), dtype=np.int32)
        rows = im2col_golden(x, 3, 3, pad=1)
        assert rows.shape == (4, 9)
        assert rows[0].sum() == 4  # corners padded

    def test_stride(self):
        x = np.arange(4 * 4 * 1).reshape(4, 4, 1)
        rows = im2col_golden(x, 2, 2, stride=2)
        assert rows.shape == (4, 4)

    def test_bad_shape_raises(self):
        with pytest.raises(KernelError):
            im2col_golden(np.zeros((4, 4)), 3, 3)

    def test_empty_output_raises(self):
        with pytest.raises(KernelError):
            im2col_golden(np.zeros((2, 2, 1)), 5, 5)


class TestConvMatmul:
    def test_conv_equals_im2col_matmul(self, rng):
        x = rng.integers(0, 16, (6, 6, 4))
        w = rng.integers(-8, 8, (3, 3, 3, 4))
        acc = conv2d_golden(x, w, stride=1, pad=1)
        cols = im2col_golden(x, 3, 3, 1, 1)
        flat = matmul_golden(w.reshape(3, -1), cols)
        assert np.array_equal(acc.reshape(-1, 3), flat)

    def test_known_convolution(self):
        x = np.ones((3, 3, 1), dtype=np.int64)
        w = np.ones((1, 3, 3, 1), dtype=np.int64)
        acc = conv2d_golden(x, w, pad=0)
        assert acc.shape == (1, 1, 1) and acc[0, 0, 0] == 9

    def test_channel_mismatch_raises(self):
        with pytest.raises(KernelError):
            conv2d_golden(np.zeros((4, 4, 2)), np.zeros((1, 3, 3, 3)))

    def test_matmul_k_mismatch(self):
        with pytest.raises(KernelError):
            matmul_golden(np.zeros((2, 5)), np.zeros((3, 4)))

    def test_linear(self, rng):
        w = rng.integers(-8, 8, (10, 32))
        x = rng.integers(0, 16, 32)
        out = linear_golden(x, w)
        assert np.array_equal(out, w.astype(np.int64) @ x)

    def test_linear_size_mismatch(self):
        with pytest.raises(KernelError):
            linear_golden(np.zeros(3), np.zeros((2, 4)))


class TestPooling:
    def test_maxpool(self):
        x = np.array([[[1], [5]], [[3], [2]]])
        assert maxpool_golden(x, 2)[0, 0, 0] == 5

    def test_maxpool_per_channel(self, rng):
        x = rng.integers(0, 100, (4, 4, 3))
        out = maxpool_golden(x, 2)
        assert out.shape == (2, 2, 3)
        assert out[0, 0, 1] == x[:2, :2, 1].max()

    def test_avgpool_floor(self):
        x = np.array([[[1], [2]], [[3], [5]]])
        assert avgpool_golden(x, 2)[0, 0, 0] == 2  # 11//4

    def test_pool_stride_defaults_to_size(self, rng):
        x = rng.integers(0, 10, (6, 6, 2))
        assert maxpool_golden(x, 2).shape == (3, 3, 2)

    def test_pool_custom_stride(self, rng):
        x = rng.integers(0, 10, (6, 6, 2))
        assert maxpool_golden(x, 2, stride=1).shape == (5, 5, 2)
