"""Threshold table, heap layout, and golden staircase quantization."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.qnn import (
    ThresholdTable,
    heap_to_sorted,
    random_threshold_table,
    sorted_to_heap,
    thresholds_from_accumulators,
    tree_stride,
)
from repro.soc import Memory


class TestHeapLayout:
    def test_sorted_to_heap_15(self):
        heap = sorted_to_heap(np.arange(15))
        assert heap[0] == 7           # root is the median
        assert heap[1] == 3 and heap[2] == 11

    def test_sorted_to_heap_3(self):
        assert list(sorted_to_heap(np.array([10, 20, 30]))) == [20, 10, 30]

    def test_heap_roundtrip(self, rng):
        values = np.sort(rng.integers(-100, 100, 15))
        assert np.array_equal(heap_to_sorted(sorted_to_heap(values)), values)

    def test_non_power_count_rejected(self):
        with pytest.raises(KernelError):
            sorted_to_heap(np.arange(4))


class TestThresholdTable:
    def test_quantize_is_rank(self):
        table = ThresholdTable(bits=2, thresholds=np.array([[0, 10, 20]]))
        acc = np.array([[-5, 0, 5, 10, 15, 25]]).T  # one channel
        out = table.quantize(acc.reshape(-1, 1), channel_axis=-1).ravel()
        assert list(out) == [0, 0, 1, 1, 2, 3]

    def test_strictly_greater_semantics(self):
        """x > t counts, equality does not (matches pv.qnt's comparator)."""
        table = ThresholdTable(bits=2, thresholds=np.array([[0, 10, 20]]))
        assert table.quantize(np.array([[10]]))[0, 0] == 1
        assert table.quantize(np.array([[11]]))[0, 0] == 2

    def test_channel_mismatch_raises(self):
        table = random_threshold_table(4, 4)
        with pytest.raises(KernelError):
            table.quantize(np.zeros((2, 3)))

    def test_unsorted_rejected(self):
        with pytest.raises(KernelError):
            ThresholdTable(bits=2, thresholds=np.array([[5, 3, 10]]))

    def test_wrong_count_rejected(self):
        with pytest.raises(KernelError):
            ThresholdTable(bits=2, thresholds=np.array([[1, 2]]))

    def test_int16_domain_enforced(self):
        with pytest.raises(KernelError):
            ThresholdTable(bits=2, thresholds=np.array([[0, 10, 40000]]))


class TestMemoryImage:
    def test_stride_constants(self):
        assert tree_stride(4) == 32
        assert tree_stride(2) == 8

    def test_unsupported_bits(self):
        with pytest.raises(KernelError):
            tree_stride(8)

    def test_image_layout(self):
        table = ThresholdTable(bits=2, thresholds=np.array([[0, 10, 20],
                                                            [5, 6, 7]]))
        image = table.heap_image()
        assert len(image) == 2 * 8
        # channel 0 heap: [10, 0, 20]
        assert int.from_bytes(image[0:2], "little") == 10
        # channel 1 root at stride offset
        assert int.from_bytes(image[8:10], "little") == 6

    def test_write_requires_alignment(self):
        mem = Memory(256)
        table = random_threshold_table(2, 4)
        with pytest.raises(KernelError):
            table.write_to_memory(mem, 3)

    def test_negative_thresholds_encoded_twos_complement(self):
        table = ThresholdTable(bits=2, thresholds=np.array([[-5, 0, 5]]))
        mem = Memory(64)
        table.write_to_memory(mem, 0)
        assert mem.read_i16(2, 1) == [-5]  # left child of root

    def test_channel_base(self):
        table = random_threshold_table(3, 4)
        assert table.channel_base(0x1000, 2) == 0x1000 + 64


class TestCalibration:
    def test_thresholds_from_accumulators(self, rng):
        acc = rng.normal(0, 300, (100, 4)).astype(np.int64)
        table = thresholds_from_accumulators(acc, 4)
        assert table.channels == 4
        # strictly increasing per channel
        assert np.all(np.diff(table.thresholds, axis=1) > 0)

    def test_calibrated_levels_cover_range(self, rng):
        acc = rng.normal(0, 300, (1000, 2)).astype(np.int64)
        table = thresholds_from_accumulators(acc, 2)
        levels = table.quantize(acc, channel_axis=-1)
        assert levels.min() == 0 and levels.max() == 3

    def test_random_table_valid(self, rng):
        for bits in (2, 4):
            table = random_threshold_table(8, bits, rng=rng)
            assert table.channels == 8
            assert np.all(np.diff(table.thresholds, axis=1) > 0)
