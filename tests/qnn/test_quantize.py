"""Uniform quantization and requantization helpers."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.qnn import (
    QuantParams,
    choose_requant_shift,
    int_range,
    quantize_uniform,
    relu,
    requantize_shift,
)


class TestIntRange:
    def test_signed(self):
        assert int_range(8, True) == (-128, 127)
        assert int_range(4, True) == (-8, 7)
        assert int_range(2, True) == (-2, 1)

    def test_unsigned(self):
        assert int_range(8, False) == (0, 255)
        assert int_range(2, False) == (0, 3)

    def test_invalid(self):
        with pytest.raises(KernelError):
            int_range(0, True)


class TestUniform:
    def test_roundtrip_error_bounded(self, rng):
        real = rng.normal(0, 1, 100)
        q, params = quantize_uniform(real, 8)
        err = np.abs(params.dequantize(q) - real)
        assert err.max() <= params.scale / 2 + 1e-9

    def test_range_respected(self, rng):
        real = rng.normal(0, 1, 1000)
        q, _ = quantize_uniform(real, 4)
        assert q.min() >= -8 and q.max() <= 7

    def test_zero_tensor(self):
        q, params = quantize_uniform(np.zeros(4), 8)
        assert np.all(q == 0) and params.scale > 0

    def test_quant_params_clip(self):
        params = QuantParams(bits=4, signed=True, scale=1.0)
        assert params.quantize(np.array([100.0]))[0] == 7


class TestRequantShift:
    def test_basic(self):
        acc = np.array([1024, 100, -50])
        out = requantize_shift(acc, 2, 8, signed=False)
        assert list(out) == [255, 25, 0]

    def test_arithmetic_shift(self):
        out = requantize_shift(np.array([-1024]), 4, 8, signed=True)
        assert out[0] == -64

    def test_bad_shift(self):
        with pytest.raises(KernelError):
            requantize_shift(np.array([1]), 40, 8)

    def test_choose_shift_brings_in_range(self, rng):
        acc = rng.integers(-(1 << 20), 1 << 20, 100)
        shift = choose_requant_shift(acc, 8, signed=False)
        assert (np.abs(acc) >> shift).max() <= 255

    def test_choose_shift_zero_for_small(self):
        assert choose_requant_shift(np.array([5, 10]), 8) == 0


class TestRelu:
    def test_relu(self):
        assert list(relu(np.array([-3, 0, 4]))) == [0, 0, 4]
