"""Sub-byte packing/unpacking tests."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.qnn import elements_per_word, pack, pack_words, unpack


class TestPack:
    def test_pack_8bit_identity(self):
        data = pack([1, 2, 255, 128], 8, signed=False)
        assert data == bytes([1, 2, 255, 128])

    def test_pack_nibbles_lane_order(self):
        data = pack([0x1, 0x2, 0x3, 0x4], 4, signed=False)
        # lane 0 is the least significant nibble
        assert data == bytes([0x21, 0x43])

    def test_pack_crumbs(self):
        data = pack([0, 1, 2, 3], 2, signed=False)
        assert data == bytes([0b11100100])

    def test_pack_signed_nibbles(self):
        data = pack([-1, -8, 7, 0], 4, signed=True)
        assert data == bytes([0x8F, 0x07])

    def test_pack_range_check_signed(self):
        with pytest.raises(KernelError):
            pack([8], 4, signed=True)

    def test_pack_range_check_unsigned(self):
        with pytest.raises(KernelError):
            pack([16, 0], 4, signed=False)
        with pytest.raises(KernelError):
            pack([-1, 0], 4, signed=False)

    def test_partial_byte_rejected(self):
        with pytest.raises(KernelError):
            pack([1], 4, signed=False)

    def test_unsupported_width(self):
        with pytest.raises(KernelError):
            pack([1], 3, signed=False)


class TestUnpack:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    @pytest.mark.parametrize("signed", [True, False])
    def test_roundtrip(self, rng, bits, signed):
        lo = -(1 << (bits - 1)) if signed else 0
        hi = (1 << (bits - 1)) if signed else (1 << bits)
        values = rng.integers(lo, hi, 64).astype(np.int32)
        data = pack(values, bits, signed)
        assert np.array_equal(unpack(data, bits, signed, count=64), values)

    def test_count_trims(self):
        data = pack([1, 2, 3, 4], 4, signed=False)
        assert list(unpack(data, 4, signed=False, count=3)) == [1, 2, 3]

    def test_count_too_large_raises(self):
        data = pack([1, 2], 4, signed=False)
        with pytest.raises(KernelError):
            unpack(data, 4, signed=False, count=5)


class TestWords:
    def test_pack_words(self):
        words = pack_words(list(range(8)), 4, signed=False)
        assert words == [0x76543210]

    def test_pack_words_needs_full_words(self):
        with pytest.raises(KernelError):
            pack_words([1, 2], 8, signed=False)

    def test_elements_per_word(self):
        assert elements_per_word(8) == 4
        assert elements_per_word(4) == 8
        assert elements_per_word(2) == 16
