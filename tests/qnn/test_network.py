"""QNN network container and golden sequential execution."""

import numpy as np

from repro.qnn import (
    AvgPool,
    MaxPool,
    QnnNetwork,
    QuantizedConv,
    QuantizedLinear,
    random_activations,
    random_weights,
)


def _small_net(rng):
    net = QnnNetwork(name="test")
    net.add(QuantizedConv(
        weights=random_weights((8, 3, 3, 4), 4, rng), weight_bits=4,
        in_bits=4, out_bits=4, pad=1,
    ))
    net.add(MaxPool(size=2))
    net.add(QuantizedLinear(
        weights=random_weights((10, 8 * 4 * 4), 4, rng), weight_bits=4,
        in_bits=4, out_bits=8,
    ))
    return net


class TestGoldenExecution:
    def test_shapes_flow(self, rng):
        net = _small_net(rng)
        x = random_activations((8, 8, 4), 4, rng)
        out = net.golden(x)
        assert out.shape == (10,)

    def test_record_layers(self, rng):
        net = _small_net(rng)
        x = random_activations((8, 8, 4), 4, rng)
        record = []
        net.golden(x, record=record)
        assert len(record) == 3
        assert record[0].shape == (8, 8, 8)
        assert record[1].shape == (4, 4, 8)

    def test_conv_output_in_range(self, rng):
        net = _small_net(rng)
        x = random_activations((8, 8, 4), 4, rng)
        record = []
        net.golden(x, record=record)
        assert record[0].min() >= 0 and record[0].max() <= 15

    def test_calibration_is_sticky(self, rng):
        """Thresholds derived on the first run are reused afterwards."""
        conv = QuantizedConv(
            weights=random_weights((4, 3, 3, 4), 4, rng), weight_bits=4,
            in_bits=4, out_bits=4, pad=1,
        )
        x = random_activations((6, 6, 4), 4, rng)
        first = conv.golden(x)
        table = conv.thresholds
        second = conv.golden(x)
        assert table is conv.thresholds
        assert np.array_equal(first, second)

    def test_8bit_conv_uses_shift(self, rng):
        conv = QuantizedConv(
            weights=random_weights((4, 3, 3, 4), 8, rng), weight_bits=8,
            in_bits=8, out_bits=8, pad=1,
        )
        x = random_activations((6, 6, 4), 8, rng)
        conv.golden(x)
        assert conv.shift is not None and conv.thresholds is None

    def test_avgpool_cascade(self):
        # Values chosen so cascade != floor-of-sum: [1,0,3,0]
        x = np.array([[[1], [0]], [[3], [0]]])
        out = AvgPool(size=2).golden(x)
        assert out[0, 0, 0] == 0  # avg(avg(1,0), avg(3,0)) = avg(0,1)=0

    def test_describe(self, rng):
        net = _small_net(rng)
        text = net.describe()
        assert "conv" in text and "maxpool" in text and "linear" in text
