"""XpulpV2 8/16-bit packed SIMD semantics versus a numpy-style model."""

import numpy as np
import pytest

from repro.isa.bits import join_lanes, replicate_scalar, split_lanes
from repro.isa.simd import LANE_OPS, simd_dotp, simd_lane_op
from tests.conftest import run_asm

WORD_A = 0x81_7F_02_FE  # bytes: [-2, 2, 127, -127]
WORD_B = 0x10_F0_05_03


def _run(cpu, mnemonic, a, b=None, imm=None):
    if imm is not None:
        src = f"{mnemonic} a0, a1, {imm}\nebreak"
        run_asm(cpu, src, a1=a)
    elif b is None:
        run_asm(cpu, f"{mnemonic} a0, a1\nebreak", a1=a)
    else:
        run_asm(cpu, f"{mnemonic} a0, a1, a2\nebreak", a1=a, a2=b)
    return cpu.regs[10]


ALL_LANE_OPS = sorted(LANE_OPS)


@pytest.mark.parametrize("op", ALL_LANE_OPS)
@pytest.mark.parametrize("width,suffix", [(8, "b"), (16, "h")])
def test_lane_ops_match_model(cpu, op, width, suffix):
    got = _run(cpu, f"pv.{op}.{suffix}", WORD_A, WORD_B)
    assert got == simd_lane_op(op, WORD_A, WORD_B, width)


@pytest.mark.parametrize("op", ["add", "max", "srl"])
@pytest.mark.parametrize("width,suffix", [(8, "b"), (16, "h")])
def test_sc_variant_replicates_scalar(cpu, op, width, suffix):
    got = _run(cpu, f"pv.{op}.sc.{suffix}", WORD_A, WORD_B)
    expected = simd_lane_op(op, WORD_A, replicate_scalar(WORD_B, width), width)
    assert got == expected


@pytest.mark.parametrize("op,imm", [("add", -3), ("sub", 5), ("sll", 2)])
def test_sci_variant_uses_immediate(cpu, op, imm):
    got = _run(cpu, f"pv.{op}.sci.b", WORD_A, imm=imm)
    expected = simd_lane_op(op, WORD_A, replicate_scalar(imm & 0xFF, 8), 8)
    assert got == expected


class TestSpecificSemantics:
    def test_pv_add_b_wraps_per_lane(self, cpu):
        got = _run(cpu, "pv.add.b", 0xFF000000 | 0x7F, 0x01000000 | 0x01)
        lanes = split_lanes(got, 8)
        assert lanes[0] == 0x80  # 127+1 wraps in the lane
        assert lanes[3] == 0x00  # 255+1 wraps

    def test_pv_avg_signed(self, cpu):
        # avg(-2, 4) = 1 (arithmetic shift)
        a = join_lanes([0xFE, 0, 0, 0], 8)
        b = join_lanes([4, 0, 0, 0], 8)
        got = split_lanes(_run(cpu, "pv.avg.b", a, b), 8, signed=True)
        assert got[0] == 1

    def test_pv_avgu_unsigned(self, cpu):
        a = join_lanes([0xFE, 0, 0, 0], 8)
        b = join_lanes([4, 0, 0, 0], 8)
        got = split_lanes(_run(cpu, "pv.avgu.b", a, b), 8)
        assert got[0] == (0xFE + 4) >> 1

    def test_pv_abs_b(self, cpu):
        got = split_lanes(_run(cpu, "pv.abs.b", WORD_A), 8)
        assert got == [2, 2, 127, 127]

    def test_pv_max_relu(self, cpu):
        """ReLU = pv.max.sc with zero scalar (paper Table II use case)."""
        got = _run(cpu, "pv.max.sc.b", WORD_A, 0)
        assert split_lanes(got, 8, signed=True) == [0, 2, 127, 0]

    def test_pv_sra_vs_srl(self, cpu):
        a = join_lanes([0x80, 0x80, 0, 0], 8)
        b = join_lanes([4, 4, 0, 0], 8)
        sra = split_lanes(_run(cpu, "pv.sra.b", a, b), 8)
        srl = split_lanes(_run(cpu, "pv.srl.b", a, b), 8)
        assert sra[0] == 0xF8
        assert srl[0] == 0x08

    def test_pv_shuffle(self, cpu):
        sel = join_lanes([3, 2, 1, 0], 8)
        got = _run(cpu, "pv.shuffle.b", 0x04030201, sel)
        assert got == 0x01020304

    def test_pv_shuffle2_merges_two_sources(self, cpu):
        sel = join_lanes([0, 4, 1, 5], 8)
        run_asm(cpu, "pv.shuffle2.b a0, a1, a2\nebreak",
                a0=0x0D0C0B0A, a1=0x04030201, a2=sel)
        assert split_lanes(cpu.regs[10], 8) == [0x01, 0x0A, 0x02, 0x0B]

    def test_pv_extract_insert(self, cpu):
        got = _run(cpu, "pv.extract.b", WORD_A, imm=3)
        assert got == 0xFFFFFF81  # sign-extended lane 3
        got = _run(cpu, "pv.extractu.b", WORD_A, imm=3)
        assert got == 0x81
        run_asm(cpu, "pv.insert.b a0, a1, 2\nebreak", a0=0, a1=0xAB)
        assert cpu.regs[10] == 0x00AB0000

    def test_pv_extract_h(self, cpu):
        got = _run(cpu, "pv.extract.h", 0x8000_0001, imm=1)
        assert got == 0xFFFF8000


class TestDotProducts:
    @pytest.mark.parametrize("suffix,width", [("b", 8), ("h", 16)])
    def test_dotsp(self, cpu, suffix, width):
        got = _run(cpu, f"pv.dotsp.{suffix}", WORD_A, WORD_B)
        assert got == simd_dotp(WORD_A, WORD_B, width, True, True)

    @pytest.mark.parametrize("suffix,width", [("b", 8), ("h", 16)])
    def test_dotup(self, cpu, suffix, width):
        got = _run(cpu, f"pv.dotup.{suffix}", WORD_A, WORD_B)
        assert got == simd_dotp(WORD_A, WORD_B, width, False, False)

    def test_dotusp_mixed_signs(self, cpu):
        got = _run(cpu, "pv.dotusp.b", WORD_A, WORD_B)
        assert got == simd_dotp(WORD_A, WORD_B, 8, False, True)

    def test_sdotsp_accumulates(self, cpu):
        run_asm(cpu, "pv.sdotsp.b a0, a1, a2\nebreak",
                a0=1000, a1=WORD_A, a2=WORD_B)
        assert cpu.regs[10] == simd_dotp(WORD_A, WORD_B, 8, True, True, acc=1000)

    def test_sdotup_accumulates(self, cpu):
        run_asm(cpu, "pv.sdotup.h a0, a1, a2\nebreak",
                a0=7, a1=WORD_A, a2=WORD_B)
        assert cpu.regs[10] == simd_dotp(WORD_A, WORD_B, 16, False, False, acc=7)

    def test_dot_sc_variant(self, cpu):
        got = _run(cpu, "pv.dotusp.sc.b", WORD_A, 0x05)
        expected = simd_dotp(WORD_A, replicate_scalar(5, 8), 8, False, True)
        assert got == expected

    def test_numpy_cross_check(self, cpu, rng):
        """Random dot products match an independent numpy computation."""
        for _ in range(20):
            a = int(rng.integers(0, 1 << 32))
            b = int(rng.integers(0, 1 << 32))
            av = np.array(split_lanes(a, 8, signed=False), dtype=np.int64)
            bv = np.array(split_lanes(b, 8, signed=True), dtype=np.int64)
            expected = int(av @ bv) & 0xFFFFFFFF
            assert _run(cpu, "pv.dotusp.b", a, b) == expected
