"""XpulpNN nibble/crumb SIMD and pv.qnt semantics (paper Table II)."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import build_isa
from repro.isa.bits import join_lanes, replicate_scalar, split_lanes
from repro.isa.simd import LANE_OPS, simd_dotp, simd_lane_op
from repro.isa.xpulpnn import (
    CRUMB_TREE_STRIDE,
    NIBBLE_TREE_STRIDE,
    walk_threshold_tree,
)
from repro.qnn import random_threshold_table, sorted_to_heap
from tests.conftest import run_asm

WORD_A = 0x8F27_31C5
WORD_B = 0x14E9_0BD2

_NN_LANE_OPS = [op for op in sorted(LANE_OPS) if op not in ("or", "xor", "and")]


def _run(cpu, mnemonic, a, b):
    run_asm(cpu, f"{mnemonic} a0, a1, a2\nebreak", a1=a, a2=b)
    return cpu.regs[10]


@pytest.mark.parametrize("op", _NN_LANE_OPS)
@pytest.mark.parametrize("width,suffix", [(4, "n"), (2, "c")])
def test_lane_ops_match_model(cpu, op, width, suffix):
    got = _run(cpu, f"pv.{op}.{suffix}", WORD_A, WORD_B)
    assert got == simd_lane_op(op, WORD_A, WORD_B, width)


@pytest.mark.parametrize("op", ["add", "min", "sra"])
@pytest.mark.parametrize("width,suffix", [(4, "n"), (2, "c")])
def test_sc_variants(cpu, op, width, suffix):
    got = _run(cpu, f"pv.{op}.sc.{suffix}", WORD_A, WORD_B)
    assert got == simd_lane_op(op, WORD_A, replicate_scalar(WORD_B, width), width)


class TestIsaBoundaries:
    def test_no_sci_variant_for_subbyte(self):
        """Paper §III-A: no encoding room for .sci at nibble/crumb."""
        isa = build_isa("xpulpnn")
        assert not isa.has("pv.add.sci.n")
        assert not isa.has("pv.sdotsp.sci.c")
        assert isa.has("pv.add.sci.b")  # but XpulpV2 has it

    def test_no_logical_subbyte_ops(self):
        isa = build_isa("xpulpnn")
        assert not isa.has("pv.and.n")
        assert not isa.has("pv.or.c")

    def test_baseline_lacks_nibble_ops(self):
        ri5cy = build_isa("ri5cy")
        assert not ri5cy.has("pv.sdotusp.n")
        assert not ri5cy.has("pv.qnt.n")
        with pytest.raises(IsaError):
            ri5cy.spec("pv.qnt.c")

    def test_extended_is_superset(self):
        ri5cy = build_isa("ri5cy")
        ext = build_isa("xpulpnn")
        for mnemonic in ri5cy.by_mnemonic:
            assert ext.has(mnemonic)


class TestSubbyteDot:
    @pytest.mark.parametrize("suffix,width", [("n", 4), ("c", 2)])
    def test_dot_variants(self, cpu, suffix, width):
        for op, sa, sb in (("dotup", False, False), ("dotusp", False, True),
                           ("dotsp", True, True)):
            got = _run(cpu, f"pv.{op}.{suffix}", WORD_A, WORD_B)
            assert got == simd_dotp(WORD_A, WORD_B, width, sa, sb)

    @pytest.mark.parametrize("suffix,width", [("n", 4), ("c", 2)])
    def test_sdot_accumulates(self, cpu, suffix, width):
        run_asm(cpu, f"pv.sdotusp.{suffix} a0, a1, a2\nebreak",
                a0=123456, a1=WORD_A, a2=WORD_B)
        assert cpu.regs[10] == simd_dotp(WORD_A, WORD_B, width, False, True,
                                         acc=123456)

    def test_nibble_dot_has_8_lanes(self, cpu):
        a = join_lanes([1] * 8, 4)
        b = join_lanes([1] * 8, 4)
        assert _run(cpu, "pv.dotup.n", a, b) == 8

    def test_crumb_dot_has_16_lanes(self, cpu):
        a = join_lanes([1] * 16, 2)
        b = join_lanes([1] * 16, 2)
        assert _run(cpu, "pv.dotup.c", a, b) == 16

    def test_signed_nibble_range(self, cpu):
        # -8 * 7 in every lane
        a = join_lanes([8] * 8, 4)   # 0x8 = -8 signed
        b = join_lanes([7] * 8, 4)
        got = _run(cpu, "pv.dotsp.n", a, b)
        assert got == (-8 * 7 * 8) & 0xFFFFFFFF

    def test_numpy_cross_check(self, cpu, rng):
        for width, suffix in ((4, "n"), (2, "c")):
            for _ in range(10):
                a = int(rng.integers(0, 1 << 32))
                b = int(rng.integers(0, 1 << 32))
                av = np.array(split_lanes(a, width), dtype=np.int64)
                bv = np.array(split_lanes(b, width, signed=True), dtype=np.int64)
                expected = int(av @ bv) & 0xFFFFFFFF
                assert _run(cpu, f"pv.dotusp.{suffix}", a, b) == expected


class TestQuantizationInstruction:
    def _setup_table(self, cpu, bits, channels=2, seed=1):
        table = random_threshold_table(channels, bits, rng=np.random.default_rng(seed))
        table.write_to_memory(cpu.mem, 0x4000)
        return table

    @pytest.mark.parametrize("bits,suffix", [(4, "n"), (2, "c")])
    def test_qnt_matches_golden(self, cpu, bits, suffix):
        table = self._setup_table(cpu, bits)
        for a0, a1 in ((-3000, 100), (0, -1), (32767, -32768), (5, 5)):
            packed = (a0 & 0xFFFF) | ((a1 & 0xFFFF) << 16)
            run_asm(cpu, f"pv.qnt.{suffix} a0, a1, a2\nebreak",
                    a1=packed, a2=0x4000)
            got = cpu.regs[10]
            q0, q1 = got & ((1 << bits) - 1), (got >> bits) & ((1 << bits) - 1)
            exp = table.quantize(np.array([[a0, a1]]))[0]
            assert (q0, q1) == (exp[0], exp[1])

    def test_qnt_n_latency_is_9_cycles(self, cpu):
        self._setup_table(cpu, 4)
        run_asm(cpu, "pv.qnt.n a0, a1, a2\nebreak", a1=0, a2=0x4000)
        qnt_cycles = cpu.perf.by_class["qnt_n"] * 9
        assert qnt_cycles == 9
        assert cpu.perf.cycles >= 9

    def test_qnt_c_latency_is_5_cycles(self, cpu):
        self._setup_table(cpu, 2)
        run_asm(cpu, "pv.qnt.c a0, a1, a2\nebreak", a1=0, a2=0x4000)
        assert cpu.perf.by_class["qnt_c"] == 1
        assert cpu.perf.cycles >= 5

    def test_second_tree_at_hardwired_stride(self, cpu):
        """Channel i+1's tree must sit exactly one stride after channel i's."""
        table = self._setup_table(cpu, 4)
        act = 1234
        packed = (act & 0xFFFF) | ((act & 0xFFFF) << 16)
        run_asm(cpu, "pv.qnt.n a0, a1, a2\nebreak", a1=packed, a2=0x4000)
        q1_via_pair = (cpu.regs[10] >> 4) & 0xF
        # Quantize against channel 1's tree directly.
        run_asm(cpu, "pv.qnt.n a0, a1, a2\nebreak",
                a1=packed, a2=0x4000 + NIBBLE_TREE_STRIDE)
        q1_direct = cpu.regs[10] & 0xF
        assert q1_via_pair == q1_direct

    def test_walk_matches_searchsorted(self, rng):
        for bits in (4, 2):
            count = (1 << bits) - 1
            thresholds = np.sort(rng.integers(-1000, 1000, count))
            for i in range(1, count):
                if thresholds[i] <= thresholds[i - 1]:
                    thresholds[i] = thresholds[i - 1] + 1
            heap = sorted_to_heap(thresholds)
            memory = {2 * i: int(v) for i, v in enumerate(heap)}
            for act in (-2000, -1, 0, 500, 2000):
                code = walk_threshold_tree(lambda a: memory[a], 0, act, bits)
                assert code == int(np.searchsorted(thresholds, act, side="left"))

    def test_strides(self):
        assert NIBBLE_TREE_STRIDE == 32  # 15 x int16, aligned
        assert CRUMB_TREE_STRIDE == 8    # 3 x int16, aligned
