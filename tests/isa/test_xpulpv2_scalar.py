"""XpulpV2 scalar DSP ops: min/max/abs/clip/extension/bit-manipulation."""


from tests.conftest import run_asm


def _op(cpu, src, **regs):
    run_asm(cpu, src + "\nebreak", **regs)
    return cpu.regs[10]


class TestMinMaxAbs:
    def test_p_abs(self, cpu):
        assert _op(cpu, "p.abs a0, a1", a1=0xFFFFFFF6) == 10

    def test_p_abs_positive(self, cpu):
        assert _op(cpu, "p.abs a0, a1", a1=10) == 10

    def test_p_min_signed(self, cpu):
        assert _op(cpu, "p.min a0, a1, a2", a1=0xFFFFFFFF, a2=1) == 0xFFFFFFFF

    def test_p_minu(self, cpu):
        assert _op(cpu, "p.minu a0, a1, a2", a1=0xFFFFFFFF, a2=1) == 1

    def test_p_max_signed(self, cpu):
        assert _op(cpu, "p.max a0, a1, a2", a1=0xFFFFFFFF, a2=1) == 1

    def test_p_maxu(self, cpu):
        assert _op(cpu, "p.maxu a0, a1, a2", a1=0xFFFFFFFF, a2=1) == 0xFFFFFFFF

    def test_p_slet(self, cpu):
        assert _op(cpu, "p.slet a0, a1, a2", a1=0xFFFFFFFF, a2=0) == 1
        assert _op(cpu, "p.slet a0, a1, a2", a1=1, a2=0) == 0

    def test_p_sletu(self, cpu):
        assert _op(cpu, "p.sletu a0, a1, a2", a1=0xFFFFFFFF, a2=0) == 0


class TestClip:
    def test_p_clip_upper(self, cpu):
        assert _op(cpu, "p.clip a0, a1, 8", a1=1000) == 127

    def test_p_clip_lower(self, cpu):
        assert _op(cpu, "p.clip a0, a1, 8", a1=0xFFFFF000) == 0xFFFFFF80

    def test_p_clip_within(self, cpu):
        assert _op(cpu, "p.clip a0, a1, 8", a1=100) == 100

    def test_p_clipu(self, cpu):
        assert _op(cpu, "p.clipu a0, a1, 9", a1=300) == 255
        assert _op(cpu, "p.clipu a0, a1, 9", a1=0xFFFFFFFE) == 0


class TestExtension:
    def test_p_exths(self, cpu):
        assert _op(cpu, "p.exths a0, a1", a1=0x8000) == 0xFFFF8000

    def test_p_exthz(self, cpu):
        assert _op(cpu, "p.exthz a0, a1", a1=0xFFFF8000) == 0x8000

    def test_p_extbs(self, cpu):
        assert _op(cpu, "p.extbs a0, a1", a1=0x80) == 0xFFFFFF80

    def test_p_extbz(self, cpu):
        assert _op(cpu, "p.extbz a0, a1", a1=0xFF80) == 0x80


class TestBitManipulation:
    def test_p_extract_signed(self, cpu):
        # bits [7:4] of 0x90 = 0b1001 -> sign-extended = -7
        assert _op(cpu, "p.extract a0, a1, 4, 4", a1=0x90) == 0xFFFFFFF9

    def test_p_extractu(self, cpu):
        assert _op(cpu, "p.extractu a0, a1, 4, 4", a1=0x90) == 9

    def test_p_insert(self, cpu):
        run_asm(cpu, "p.insert a0, a1, 8, 8\nebreak", a0=0xFFFF00FF, a1=0xAB)
        assert cpu.regs[10] == 0xFFFFABFF

    def test_p_bclr(self, cpu):
        assert _op(cpu, "p.bclr a0, a1, 4, 8", a1=0xFFFFFFFF) == 0xFFFFF00F

    def test_p_bset(self, cpu):
        assert _op(cpu, "p.bset a0, a1, 4, 8", a1=0) == 0x00000FF0

    def test_p_cnt(self, cpu):
        assert _op(cpu, "p.cnt a0, a1", a1=0xF0F0) == 8

    def test_p_ff1(self, cpu):
        assert _op(cpu, "p.ff1 a0, a1", a1=0b101000) == 3

    def test_p_ff1_zero(self, cpu):
        assert _op(cpu, "p.ff1 a0, a1", a1=0) == 32

    def test_p_fl1(self, cpu):
        assert _op(cpu, "p.fl1 a0, a1", a1=0b101000) == 5

    def test_p_clb(self, cpu):
        assert _op(cpu, "p.clb a0, a1", a1=0xFFFFFFF0) == 27

    def test_p_ror(self, cpu):
        assert _op(cpu, "p.ror a0, a1, a2", a1=0x80000001, a2=1) == 0xC0000000


class TestMac:
    def test_p_mac(self, cpu):
        run_asm(cpu, "p.mac a0, a1, a2\nebreak", a0=10, a1=3, a2=4)
        assert cpu.regs[10] == 22

    def test_p_mac_negative(self, cpu):
        run_asm(cpu, "p.mac a0, a1, a2\nebreak", a0=10, a1=0xFFFFFFFF, a2=4)
        assert cpu.regs[10] == 6

    def test_p_msu(self, cpu):
        run_asm(cpu, "p.msu a0, a1, a2\nebreak", a0=10, a1=3, a2=4)
        assert cpu.regs[10] == 0xFFFFFFFE  # 10 - 12


class TestPostIncrementMemory:
    def test_p_lw_post_increment(self, cpu):
        cpu.mem.write_words(0x100, [11, 22])
        run_asm(cpu, "p.lw a0, 4(a1!)\np.lw a2, 4(a1!)\nebreak", a1=0x100)
        assert cpu.regs[10] == 11
        assert cpu.regs[12] == 22
        assert cpu.regs[11] == 0x108

    def test_p_lbu_post_increment(self, cpu):
        cpu.mem.write_i8(0x100, [-1, 2])
        run_asm(cpu, "p.lbu a0, 1(a1!)\np.lb a2, 1(a1!)\nebreak", a1=0x100)
        assert cpu.regs[10] == 0xFF
        assert cpu.regs[12] == 2

    def test_p_sw_post_increment(self, cpu):
        run_asm(cpu, "p.sw a2, 4(a1!)\np.sw a3, 4(a1!)\nebreak",
                a1=0x100, a2=5, a3=6)
        assert cpu.mem.read_words(0x100, 2) == [5, 6]
        assert cpu.regs[11] == 0x108

    def test_p_lw_register_offset(self, cpu):
        cpu.mem.write_words(0x110, [99])
        run_asm(cpu, "p.lw a0, a2(a1)\nebreak", a1=0x100, a2=0x10)
        assert cpu.regs[10] == 99
        assert cpu.regs[11] == 0x100  # base unchanged

    def test_p_lw_register_postinc(self, cpu):
        cpu.mem.write_words(0x100, [7])
        run_asm(cpu, "p.lw a0, a2(a1!)\nebreak", a1=0x100, a2=0x10)
        assert cpu.regs[10] == 7
        assert cpu.regs[11] == 0x110

    def test_negative_post_increment(self, cpu):
        cpu.mem.write_words(0x100, [42])
        run_asm(cpu, "p.lw a0, -4(a1!)\nebreak", a1=0x100)
        assert cpu.regs[11] == 0xFC
