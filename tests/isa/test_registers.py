"""Register file and ABI naming tests."""

import pytest

from repro.errors import AsmError
from repro.isa.registers import (
    ABI_NAMES,
    RegisterFile,
    parse_register,
    register_name,
)


class TestNames:
    def test_abi_roundtrip(self):
        for i, name in enumerate(ABI_NAMES):
            assert parse_register(name) == i
            assert register_name(i) == name

    def test_numeric_names(self):
        assert parse_register("x0") == 0
        assert parse_register("x31") == 31

    def test_fp_alias(self):
        assert parse_register("fp") == 8
        assert parse_register("s0") == 8

    def test_case_insensitive(self):
        assert parse_register("A0") == 10

    def test_unknown_name_raises(self):
        with pytest.raises(AsmError):
            parse_register("q7")

    def test_register_name_out_of_range(self):
        with pytest.raises(AsmError):
            register_name(32)


class TestRegisterFile:
    def test_x0_reads_zero(self):
        regs = RegisterFile()
        assert regs[0] == 0

    def test_x0_write_ignored(self):
        regs = RegisterFile()
        regs[0] = 123
        assert regs[0] == 0

    def test_write_wraps_32bit(self):
        regs = RegisterFile()
        regs[5] = -1
        assert regs[5] == 0xFFFFFFFF
        regs[5] = 1 << 33
        assert regs[5] == 0

    def test_initial_values(self):
        regs = RegisterFile([9, 1, 2])
        assert regs[0] == 0  # pinned even if initialized
        assert regs[1] == 1
        assert regs[2] == 2

    def test_too_many_initial_values(self):
        with pytest.raises(ValueError):
            RegisterFile(range(40))

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        regs[3] = 7
        assert snap[3] == 0
        assert regs.snapshot()[3] == 7
