"""RV32I semantics, executed through the assembler + CPU."""

import pytest

from repro.errors import TrapError
from tests.conftest import run_asm


def result(cpu, reg=10):
    return cpu.regs[reg]


class TestArithmetic:
    def test_addi(self, cpu):
        assert result(run_asm(cpu, "addi a0, zero, 42\nebreak")) == 42

    def test_addi_negative(self, cpu):
        assert result(run_asm(cpu, "addi a0, zero, -1\nebreak")) == 0xFFFFFFFF

    def test_add_wraps(self, cpu):
        run_asm(cpu, "add a0, a1, a2\nebreak", a1=0xFFFFFFFF, a2=2)
        assert result(cpu) == 1

    def test_sub(self, cpu):
        run_asm(cpu, "sub a0, a1, a2\nebreak", a1=5, a2=9)
        assert result(cpu) == 0xFFFFFFFC

    def test_slt_signed(self, cpu):
        run_asm(cpu, "slt a0, a1, a2\nebreak", a1=0xFFFFFFFF, a2=0)
        assert result(cpu) == 1  # -1 < 0

    def test_sltu_unsigned(self, cpu):
        run_asm(cpu, "sltu a0, a1, a2\nebreak", a1=0xFFFFFFFF, a2=0)
        assert result(cpu) == 0

    def test_slti(self, cpu):
        run_asm(cpu, "slti a0, a1, -4\nebreak", a1=0xFFFFFFF0)
        assert result(cpu) == 1  # -16 < -4

    def test_sltiu(self, cpu):
        run_asm(cpu, "sltiu a0, a1, 1\nebreak", a1=0)
        assert result(cpu) == 1

    def test_logic_ops(self, cpu):
        run_asm(cpu, "xor a0, a1, a2\nor a3, a1, a2\nand a4, a1, a2\nebreak",
                a1=0b1100, a2=0b1010)
        assert cpu.regs[10] == 0b0110
        assert cpu.regs[13] == 0b1110
        assert cpu.regs[14] == 0b1000

    def test_immediates_logic(self, cpu):
        run_asm(cpu, "xori a0, a1, -1\nebreak", a1=0x0F0F0F0F)
        assert result(cpu) == 0xF0F0F0F0


class TestShifts:
    def test_slli(self, cpu):
        run_asm(cpu, "slli a0, a1, 4\nebreak", a1=1)
        assert result(cpu) == 16

    def test_srli_logical(self, cpu):
        run_asm(cpu, "srli a0, a1, 4\nebreak", a1=0x80000000)
        assert result(cpu) == 0x08000000

    def test_srai_arithmetic(self, cpu):
        run_asm(cpu, "srai a0, a1, 4\nebreak", a1=0x80000000)
        assert result(cpu) == 0xF8000000

    def test_sll_uses_low_5_bits(self, cpu):
        run_asm(cpu, "sll a0, a1, a2\nebreak", a1=1, a2=33)
        assert result(cpu) == 2

    def test_sra_register(self, cpu):
        run_asm(cpu, "sra a0, a1, a2\nebreak", a1=0xFFFFFF00, a2=4)
        assert result(cpu) == 0xFFFFFFF0


class TestUpperImmediates:
    def test_lui(self, cpu):
        run_asm(cpu, "lui a0, 0x12345\nebreak")
        assert result(cpu) == 0x12345000

    def test_auipc(self, cpu):
        run_asm(cpu, "nop\nauipc a0, 1\nebreak")
        assert result(cpu) == 0x1000 + 4  # pc of auipc is 4


class TestLoadsStores:
    def test_sw_lw_roundtrip(self, cpu):
        run_asm(cpu, "sw a1, 0(a2)\nlw a0, 0(a2)\nebreak",
                a1=0xDEADBEEF, a2=0x100)
        assert result(cpu) == 0xDEADBEEF

    def test_lb_sign_extends(self, cpu):
        cpu.mem.store(0x100, 1, 0x80)
        run_asm(cpu, "lb a0, 0(a2)\nebreak", a2=0x100)
        assert result(cpu) == 0xFFFFFF80

    def test_lbu_zero_extends(self, cpu):
        cpu.mem.store(0x100, 1, 0x80)
        run_asm(cpu, "lbu a0, 0(a2)\nebreak", a2=0x100)
        assert result(cpu) == 0x80

    def test_lh_lhu(self, cpu):
        cpu.mem.store(0x100, 2, 0x8001)
        run_asm(cpu, "lh a0, 0(a2)\nlhu a1, 0(a2)\nebreak", a2=0x100)
        assert cpu.regs[10] == 0xFFFF8001
        assert cpu.regs[11] == 0x8001

    def test_sb_stores_low_byte(self, cpu):
        run_asm(cpu, "sb a1, 0(a2)\nebreak", a1=0x1234, a2=0x100)
        assert cpu.mem.load(0x100, 1) == 0x34

    def test_sh(self, cpu):
        run_asm(cpu, "sh a1, 2(a2)\nebreak", a1=0xABCD, a2=0x100)
        assert cpu.mem.load(0x102, 2) == 0xABCD

    def test_negative_offset(self, cpu):
        cpu.mem.store(0xF8, 4, 77)
        run_asm(cpu, "lw a0, -8(a2)\nebreak", a2=0x100)
        assert result(cpu) == 77


class TestBranches:
    @pytest.mark.parametrize(
        "op,a,b,taken",
        [
            ("beq", 5, 5, True), ("beq", 5, 6, False),
            ("bne", 5, 6, True), ("bne", 5, 5, False),
            ("blt", 0xFFFFFFFF, 0, True), ("blt", 0, 0xFFFFFFFF, False),
            ("bge", 0, 0xFFFFFFFF, True), ("bge", 0xFFFFFFFF, 0, False),
            ("bltu", 0, 0xFFFFFFFF, True), ("bltu", 0xFFFFFFFF, 0, False),
            ("bgeu", 0xFFFFFFFF, 0, True), ("bgeu", 0, 1, False),
        ],
    )
    def test_branch_conditions(self, cpu, op, a, b, taken):
        src = f"""
            {op} a1, a2, target
            addi a0, zero, 1
            ebreak
        target:
            addi a0, zero, 2
            ebreak
        """
        run_asm(cpu, src, a1=a, a2=b)
        assert result(cpu) == (2 if taken else 1)

    def test_backward_branch_loop(self, cpu):
        src = """
            addi a0, zero, 0
            addi a1, zero, 5
        loop:
            addi a0, a0, 3
            addi a1, a1, -1
            bne a1, zero, loop
            ebreak
        """
        assert result(run_asm(cpu, src)) == 15


class TestJumps:
    def test_jal_links(self, cpu):
        src = """
            jal ra, target
            ebreak
        target:
            addi a0, zero, 9
            ebreak
        """
        run_asm(cpu, src)
        assert result(cpu) == 9
        assert cpu.regs[1] == 4  # return address after the jal

    def test_jalr_indirect(self, cpu):
        src = """
            jalr ra, 0(a1)
            ebreak
        """
        # jump to an ebreak at 0x40
        from repro.asm import assemble

        program = assemble(src, isa=cpu.isa.name)
        cpu.load_program(program)
        cpu.mem.store(0, 4, 0)
        # place target manually: assemble second program at 0x40
        target = assemble("addi a0, zero, 3\nebreak", isa=cpu.isa.name, base=0x40)
        for ins in target.instructions:
            cpu._imem[ins.addr] = ins
        cpu.regs[11] = 0x40
        cpu.run()
        assert cpu.regs[10] == 3
        assert cpu.regs[1] == 4

    def test_jalr_clears_bit0(self, cpu):
        from repro.asm import assemble

        program = assemble("jalr zero, 1(a1)\nebreak", isa=cpu.isa.name)
        target = assemble("addi a0, zero, 8\nebreak", isa=cpu.isa.name, base=0x40)
        cpu.load_program(program)
        for ins in target.instructions:
            cpu._imem[ins.addr] = ins
        cpu.regs[11] = 0x40
        cpu.run()
        assert cpu.regs[10] == 8


class TestSystem:
    def test_ebreak_halts(self, cpu):
        run_asm(cpu, "ebreak")
        assert cpu.halted == "ebreak"

    def test_ecall_halts(self, cpu):
        run_asm(cpu, "ecall")
        assert cpu.halted == "ecall"

    def test_fence_is_noop(self, cpu):
        run_asm(cpu, "fence\naddi a0, zero, 1\nebreak")
        assert result(cpu) == 1

    def test_fetch_fault_raises(self, cpu):
        from repro.asm import assemble

        cpu.load_program(assemble("addi a0, zero, 1", isa=cpu.isa.name))
        with pytest.raises(TrapError):
            cpu.run()  # falls off the end
