"""RV32M multiply/divide semantics, including the spec's edge cases."""


from tests.conftest import run_asm


def _run_op(cpu, op, a, b):
    run_asm(cpu, f"{op} a0, a1, a2\nebreak", a1=a, a2=b)
    return cpu.regs[10]


class TestMultiply:
    def test_mul(self, cpu):
        assert _run_op(cpu, "mul", 7, 6) == 42

    def test_mul_wraps(self, cpu):
        assert _run_op(cpu, "mul", 0x10000, 0x10000) == 0

    def test_mul_negative(self, cpu):
        assert _run_op(cpu, "mul", 0xFFFFFFFF, 5) == 0xFFFFFFFB  # -1*5

    def test_mulh_signed(self, cpu):
        assert _run_op(cpu, "mulh", 0x80000000, 0x80000000) == 0x40000000

    def test_mulhu(self, cpu):
        assert _run_op(cpu, "mulhu", 0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFE

    def test_mulhsu(self, cpu):
        # -1 (signed) * 0xFFFFFFFF (unsigned) = -0xFFFFFFFF
        assert _run_op(cpu, "mulhsu", 0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFF


class TestDivide:
    def test_div(self, cpu):
        assert _run_op(cpu, "div", 42, 7) == 6

    def test_div_rounds_toward_zero(self, cpu):
        assert _run_op(cpu, "div", 0xFFFFFFF9, 2) == 0xFFFFFFFD  # -7/2 = -3

    def test_div_by_zero(self, cpu):
        assert _run_op(cpu, "div", 10, 0) == 0xFFFFFFFF

    def test_div_overflow(self, cpu):
        assert _run_op(cpu, "div", 0x80000000, 0xFFFFFFFF) == 0x80000000

    def test_divu(self, cpu):
        assert _run_op(cpu, "divu", 0xFFFFFFFE, 2) == 0x7FFFFFFF

    def test_divu_by_zero(self, cpu):
        assert _run_op(cpu, "divu", 10, 0) == 0xFFFFFFFF

    def test_rem(self, cpu):
        assert _run_op(cpu, "rem", 43, 7) == 1

    def test_rem_sign_follows_dividend(self, cpu):
        assert _run_op(cpu, "rem", 0xFFFFFFF9, 2) == 0xFFFFFFFF  # -7%2 = -1

    def test_rem_by_zero_returns_dividend(self, cpu):
        assert _run_op(cpu, "rem", 10, 0) == 10

    def test_rem_overflow(self, cpu):
        assert _run_op(cpu, "rem", 0x80000000, 0xFFFFFFFF) == 0

    def test_remu(self, cpu):
        assert _run_op(cpu, "remu", 0xFFFFFFFF, 10) == 5

    def test_div_costs_many_cycles(self, cpu):
        run_asm(cpu, "div a0, a1, a2\nebreak", a1=100, a2=3)
        assert cpu.perf.cycles >= 35
