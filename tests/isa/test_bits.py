"""Unit tests for the bit-manipulation helpers."""

import pytest

from repro.errors import EncodingError
from repro.isa import bits


class TestSignedness:
    def test_u32_wraps_negative(self):
        assert bits.u32(-1) == 0xFFFFFFFF

    def test_u32_wraps_overflow(self):
        assert bits.u32(1 << 32) == 0

    def test_to_signed_positive(self):
        assert bits.to_signed(5) == 5

    def test_to_signed_negative(self):
        assert bits.to_signed(0xFFFFFFFF) == -1

    def test_to_signed_boundary(self):
        assert bits.to_signed(0x80000000) == -(1 << 31)
        assert bits.to_signed(0x7FFFFFFF) == (1 << 31) - 1

    def test_to_signed_narrow(self):
        assert bits.to_signed(0xF, 4) == -1
        assert bits.to_signed(0x7, 4) == 7

    def test_sign_extend(self):
        assert bits.sign_extend(0x8, 4) == 0xFFFFFFF8
        assert bits.sign_extend(0x7, 4) == 7

    def test_zero_extend(self):
        assert bits.zero_extend(0xFFF8, 4) == 8

    def test_to_unsigned(self):
        assert bits.to_unsigned(-1, 4) == 0xF


class TestFields:
    def test_get_field(self):
        assert bits.get_field(0xABCD1234, 15, 0) == 0x1234
        assert bits.get_field(0xABCD1234, 31, 16) == 0xABCD

    def test_get_field_single_bit(self):
        assert bits.get_field(0b1000, 3, 3) == 1

    def test_get_field_bad_range(self):
        with pytest.raises(ValueError):
            bits.get_field(0, 0, 1)

    def test_set_field(self):
        assert bits.set_field(0, 15, 8, 0xAB) == 0xAB00

    def test_set_field_overflow_raises(self):
        with pytest.raises(EncodingError):
            bits.set_field(0, 7, 0, 0x100)

    def test_set_field_preserves_other_bits(self):
        assert bits.set_field(0xFF00FF00, 15, 8, 0x12) == 0xFF001200

    def test_fits_signed(self):
        assert bits.fits_signed(-2048, 12)
        assert not bits.fits_signed(-2049, 12)
        assert bits.fits_signed(2047, 12)
        assert not bits.fits_signed(2048, 12)

    def test_fits_unsigned(self):
        assert bits.fits_unsigned(4095, 12)
        assert not bits.fits_unsigned(4096, 12)
        assert not bits.fits_unsigned(-1, 12)


class TestLanes:
    def test_split_lanes_bytes(self):
        assert bits.split_lanes(0x04030201, 8) == [1, 2, 3, 4]

    def test_split_lanes_halves(self):
        assert bits.split_lanes(0x00020001, 16) == [1, 2]

    def test_split_lanes_nibbles(self):
        assert bits.split_lanes(0x87654321, 4) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_split_lanes_crumbs(self):
        assert bits.split_lanes(0b11100100, 2)[:4] == [0, 1, 2, 3]

    def test_split_lanes_signed(self):
        assert bits.split_lanes(0xFF, 8, signed=True)[0] == -1
        assert bits.split_lanes(0xF, 4, signed=True)[0] == -1

    def test_join_lanes_roundtrip(self):
        word = 0xDEADBEEF
        for width in (2, 4, 8, 16):
            assert bits.join_lanes(bits.split_lanes(word, width), width) == word

    def test_join_lanes_wrong_count(self):
        with pytest.raises(ValueError):
            bits.join_lanes([1, 2, 3], 8)

    def test_join_lanes_masks_excess(self):
        assert bits.join_lanes([0x1FF, 0, 0, 0], 8) == 0xFF

    def test_replicate_scalar_bytes(self):
        assert bits.replicate_scalar(0xAB, 8) == 0xABABABAB

    def test_replicate_scalar_nibbles(self):
        assert bits.replicate_scalar(0x5, 4) == 0x55555555

    def test_replicate_scalar_uses_low_bits(self):
        assert bits.replicate_scalar(0x123, 8) == 0x23232323


class TestCountOps:
    def test_bit_count(self):
        assert bits.bit_count(0) == 0
        assert bits.bit_count(0xFFFFFFFF) == 32
        assert bits.bit_count(0b1010) == 2

    def test_find_first_set(self):
        assert bits.find_first_set(0b1000) == 3
        assert bits.find_first_set(1) == 0
        assert bits.find_first_set(0) == 32

    def test_find_last_set(self):
        assert bits.find_last_set(0b1000) == 3
        assert bits.find_last_set(0x80000000) == 31
        assert bits.find_last_set(0) == 32

    def test_count_leading_redundant_sign_bits(self):
        assert bits.count_leading_redundant_sign_bits(0) == 0
        assert bits.count_leading_redundant_sign_bits(0xFFFFFFFF) == 31
        assert bits.count_leading_redundant_sign_bits(1) == 30
        assert bits.count_leading_redundant_sign_bits(0x7FFFFFFF) == 0
