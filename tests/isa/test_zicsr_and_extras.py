"""Zicsr instructions and the extra XpulpV2 ops (immediate branches,
pack, normalization adds)."""

import pytest

from repro.isa.zicsr import (
    CSR_LPCOUNT0,
    CSR_LPEND0,
    CSR_LPSTART0,
    CSR_MCYCLE,
    CSR_MHARTID,
    CSR_MINSTRET,
)
from tests.conftest import run_asm


class TestCsrCounters:
    def test_mcycle_counts(self, cpu):
        run_asm(cpu, f"nop\nnop\nnop\ncsrr a0, {CSR_MCYCLE}\nebreak")
        assert cpu.regs[10] == 3

    def test_minstret_counts(self, cpu):
        run_asm(cpu, f"nop\ncsrr a0, {CSR_MINSTRET}\nebreak")
        assert cpu.regs[10] == 1

    def test_mhartid_zero(self, cpu):
        run_asm(cpu, f"csrr a0, {CSR_MHARTID}\nebreak")
        assert cpu.regs[10] == 0

    def test_timing_a_region_with_mcycle(self, cpu):
        """The PULP rt_time idiom: read mcycle around a region."""
        src = f"""
            csrr a1, {CSR_MCYCLE}
            lp.setupi 0, 10, end
            addi a3, a3, 1
        end:
            csrr a2, {CSR_MCYCLE}
            sub a0, a2, a1
            ebreak
        """
        run_asm(cpu, src)
        # first csrr's own cycle + lp.setup + 10 body cycles
        assert cpu.regs[10] == 12


class TestCsrReadWrite:
    def test_csrrw_swaps(self, cpu):
        run_asm(cpu, "csrrw a0, 0x340, a1\ncsrrw a2, 0x340, a3\nebreak",
                a1=77, a3=88)
        assert cpu.regs[10] == 0    # initial scratch value
        assert cpu.regs[12] == 77   # previous write visible

    def test_csrrs_sets_bits(self, cpu):
        run_asm(cpu, "csrrw zero, 0x340, a1\ncsrrs zero, 0x340, a2\n"
                     "csrr a0, 0x340\nebreak", a1=0b1100, a2=0b0011)
        assert cpu.regs[10] == 0b1111

    def test_csrrc_clears_bits(self, cpu):
        run_asm(cpu, "csrrw zero, 0x340, a1\ncsrrc zero, 0x340, a2\n"
                     "csrr a0, 0x340\nebreak", a1=0b1111, a2=0b0101)
        assert cpu.regs[10] == 0b1010

    def test_csrrwi(self, cpu):
        run_asm(cpu, "csrrwi zero, 0x340, 21\ncsrr a0, 0x340\nebreak")
        assert cpu.regs[10] == 21

    def test_csrrsi_csrrci(self, cpu):
        run_asm(cpu, "csrrwi zero, 0x340, 12\ncsrrsi zero, 0x340, 3\n"
                     "csrrci zero, 0x340, 4\ncsrr a0, 0x340\nebreak")
        assert cpu.regs[10] == 0b1011

    def test_csrw_pseudo(self, cpu):
        run_asm(cpu, "csrw 0x340, a1\ncsrr a0, 0x340\nebreak", a1=5)
        assert cpu.regs[10] == 5


class TestHwloopCsrMirror:
    def test_count_visible(self, cpu):
        run_asm(cpu, f"lp.counti 0, 7\ncsrr a0, {CSR_LPCOUNT0}\nebreak")
        assert cpu.regs[10] == 7

    def test_start_end_visible(self, cpu):
        src = f"""
            lp.starti 0, body
            lp.endi 0, done
        body:
        done:
            csrr a0, {CSR_LPSTART0}
            csrr a1, {CSR_LPEND0}
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 8 and cpu.regs[11] == 8

    def test_csr_write_configures_loop(self, cpu):
        """RI5CY allows configuring hardware loops through CSR writes."""
        src = f"""
            li a1, 5
            csrw {CSR_LPCOUNT0}, a1
            csrr a0, {CSR_LPCOUNT0}
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 5
        assert cpu.hwloops.count[0] == 5


class TestImmediateBranches:
    def test_beqimm_taken(self, cpu):
        src = "p.beqimm a1, 5, t\nli a0, 1\nebreak\nt:\nli a0, 2\nebreak"
        run_asm(cpu, src, a1=5)
        assert cpu.regs[10] == 2

    def test_beqimm_negative_immediate(self, cpu):
        src = "p.beqimm a1, -16, t\nli a0, 1\nebreak\nt:\nli a0, 2\nebreak"
        run_asm(cpu, src, a1=0xFFFFFFF0)
        assert cpu.regs[10] == 2

    def test_bneimm(self, cpu):
        src = "p.bneimm a1, 0, t\nli a0, 1\nebreak\nt:\nli a0, 2\nebreak"
        run_asm(cpu, src, a1=3)
        assert cpu.regs[10] == 2
        run_asm(cpu, src, a1=0)
        assert cpu.regs[10] == 1

    def test_immediate_range_checked(self):
        from repro.asm import assemble
        from repro.errors import AsmError

        with pytest.raises(AsmError):
            assemble("p.beqimm a1, 16, t\nt:\nebreak")


class TestPackOps:
    def test_pack_h(self, cpu):
        run_asm(cpu, "pv.pack.h a0, a1, a2\nebreak",
                a1=0x1234ABCD, a2=0x5678EF01)
        assert cpu.regs[10] == 0xABCDEF01

    def test_packhi_packlo_compose_word(self, cpu):
        run_asm(cpu, "pv.packhi.b a0, a1, a2\npv.packlo.b a0, a3, a4\nebreak",
                a0=0, a1=0x11, a2=0x22, a3=0x33, a4=0x44)
        assert cpu.regs[10] == 0x11223344

    def test_packhi_preserves_low_half(self, cpu):
        run_asm(cpu, "pv.packhi.b a0, a1, a2\nebreak",
                a0=0xAAAABBBB, a1=1, a2=2)
        assert cpu.regs[10] == 0x0102BBBB


class TestNormalizationAdds:
    def test_addn(self, cpu):
        run_asm(cpu, "p.addn a0, a1, a2, 4\nebreak", a1=100, a2=60)
        assert cpu.regs[10] == 10  # 160 >> 4

    def test_addrn_rounds(self, cpu):
        run_asm(cpu, "p.addrn a0, a1, a2, 4\nebreak", a1=100, a2=60)
        assert cpu.regs[10] == 10  # (160+8) >> 4
        run_asm(cpu, "p.addrn a0, a1, a2, 4\nebreak", a1=100, a2=68)
        assert cpu.regs[10] == 11  # (168+8) >> 4

    def test_subn_arithmetic(self, cpu):
        run_asm(cpu, "p.subn a0, a1, a2, 1\nebreak", a1=3, a2=10)
        assert cpu.regs[10] == 0xFFFFFFFC  # -7 >> 1 = -4

    def test_subrn(self, cpu):
        run_asm(cpu, "p.subrn a0, a1, a2, 2\nebreak", a1=10, a2=3)
        assert cpu.regs[10] == 2  # (7+2) >> 2

    def test_zero_shift(self, cpu):
        run_asm(cpu, "p.addn a0, a1, a2, 0\nebreak", a1=5, a2=6)
        assert cpu.regs[10] == 11
