"""RV32C compressed-subset semantics (executed via decode_c programs)."""

import pytest

from repro.asm.program import link
from repro.isa import rv32c
from repro.isa.instruction import Instruction
from repro.errors import DecodeError, EncodingError


def _spec(name):
    for spec in rv32c.SPECS:
        if spec.mnemonic == name:
            return spec
    raise KeyError(name)


def _run(cpu, instructions, regs=None):
    ebreak = Instruction(spec=_spec("c.ebreak"))
    program = link(list(instructions) + [ebreak], {}, base=0)
    cpu.reset()
    cpu.load_program(program)
    for idx, value in (regs or {}).items():
        cpu.regs[idx] = value
    cpu.run()
    return cpu


def C(name, **fields):
    return Instruction(spec=_spec(name), **fields)


class TestCompressedAlu:
    def test_c_li(self, cpu):
        _run(cpu, [C("c.li", rd=10, imm=-5)])
        assert cpu.regs[10] == 0xFFFFFFFB

    def test_c_addi(self, cpu):
        _run(cpu, [C("c.addi", rd=10, imm=7)], regs={10: 5})
        assert cpu.regs[10] == 12

    def test_c_lui(self, cpu):
        _run(cpu, [C("c.lui", rd=10, imm=3)])
        assert cpu.regs[10] == 0x3000

    def test_c_lui_negative(self, cpu):
        _run(cpu, [C("c.lui", rd=10, imm=-1)])
        assert cpu.regs[10] == 0xFFFFF000

    def test_c_mv_add(self, cpu):
        _run(cpu, [C("c.mv", rd=10, rs2=11), C("c.add", rd=10, rs2=11)],
             regs={11: 21})
        assert cpu.regs[10] == 42

    def test_c_logic(self, cpu):
        _run(cpu, [C("c.and", rd=8, rs2=9), C("c.or", rd=10, rs2=9)],
             regs={8: 0b1100, 9: 0b1010, 10: 0b0100})
        assert cpu.regs[8] == 0b1000
        assert cpu.regs[10] == 0b1110

    def test_c_sub_xor(self, cpu):
        _run(cpu, [C("c.sub", rd=8, rs2=9), C("c.xor", rd=10, rs2=9)],
             regs={8: 10, 9: 4, 10: 0xFF})
        assert cpu.regs[8] == 6
        assert cpu.regs[10] == 0xFB

    def test_c_shifts(self, cpu):
        _run(cpu, [C("c.slli", rd=10, imm=4), C("c.srli", rd=8, imm=2),
                   C("c.srai", rd=9, imm=1)],
             regs={10: 1, 8: 0x80000000, 9: 0x80000000})
        assert cpu.regs[10] == 16
        assert cpu.regs[8] == 0x20000000
        assert cpu.regs[9] == 0xC0000000

    def test_c_andi(self, cpu):
        _run(cpu, [C("c.andi", rd=8, imm=0xF - 16)], regs={8: 0x1234})
        # imm -1 => all ones: unchanged low bits
        assert cpu.regs[8] == 0x1234 & 0xFFFFFFFF

    def test_c_addi16sp_addi4spn(self, cpu):
        _run(cpu, [C("c.addi16sp", imm=-32), C("c.addi4spn", rd=8, imm=16)],
             regs={2: 0x1000})
        assert cpu.regs[2] == 0x1000 - 32
        assert cpu.regs[8] == 0x1000 - 32 + 16


class TestCompressedMemory:
    def test_c_sw_lw(self, cpu):
        _run(cpu, [C("c.sw", rs2=9, rs1=8, imm=4), C("c.lw", rd=10, rs1=8, imm=4)],
             regs={8: 0x100, 9: 0xCAFEBABE})
        assert cpu.regs[10] == 0xCAFEBABE

    def test_c_swsp_lwsp(self, cpu):
        _run(cpu, [C("c.swsp", rs2=11, imm=8), C("c.lwsp", rd=12, imm=8)],
             regs={2: 0x200, 11: 1234})
        assert cpu.regs[12] == 1234


class TestCompressedControl:
    def test_c_j_skips(self, cpu):
        body = [
            C("c.j", imm=4),
            C("c.li", rd=10, imm=1),   # skipped
            C("c.li", rd=11, imm=2),
        ]
        _run(cpu, body)
        assert cpu.regs[10] == 0
        assert cpu.regs[11] == 2

    def test_c_beqz_taken(self, cpu):
        body = [
            C("c.beqz", rs1=8, imm=4),
            C("c.li", rd=10, imm=1),
            C("c.li", rd=11, imm=2),
        ]
        _run(cpu, body, regs={8: 0})
        assert cpu.regs[10] == 0 and cpu.regs[11] == 2

    def test_c_bnez_not_taken(self, cpu):
        body = [
            C("c.bnez", rs1=8, imm=4),
            C("c.li", rd=10, imm=1),
            C("c.li", rd=11, imm=2),
        ]
        _run(cpu, body, regs={8: 0})
        assert cpu.regs[10] == 1 and cpu.regs[11] == 2

    def test_c_jal_links(self, cpu):
        body = [
            C("c.jal", imm=4),
            C("c.li", rd=10, imm=1),
            C("c.li", rd=11, imm=2),
        ]
        _run(cpu, body)
        assert cpu.regs[1] == 2  # return address after the 2-byte c.jal
        assert cpu.regs[10] == 0

    def test_c_jr(self, cpu):
        body = [
            C("c.jr", rs1=8),
            C("c.li", rd=10, imm=1),
            C("c.li", rd=11, imm=2),
        ]
        _run(cpu, body, regs={8: 4})
        assert cpu.regs[10] == 0 and cpu.regs[11] == 2


class TestCodecErrors:
    def test_creg_out_of_window(self):
        with pytest.raises(EncodingError):
            rv32c.encode_c(C("c.lw", rd=5, rs1=8, imm=4))

    def test_addi4spn_zero_imm_rejected(self):
        with pytest.raises(EncodingError):
            rv32c.encode_c(C("c.addi4spn", rd=8, imm=0))

    def test_lui_rd_x2_rejected(self):
        with pytest.raises(EncodingError):
            rv32c.encode_c(C("c.lui", rd=2, imm=1))

    def test_decode_reserved_raises(self):
        with pytest.raises(DecodeError):
            rv32c.decode_c(0x0000)

    def test_imm_scale_enforced(self):
        with pytest.raises(EncodingError):
            rv32c.encode_c(C("c.lw", rd=8, rs1=9, imm=3))
