"""Encode -> decode round-trip for every instruction in every ISA.

This is the property the rest of the system relies on: any instruction
the builder/assembler can produce must decode back to the same spec and
operands.  Compressed instructions round-trip through their own codec.
"""

import pytest

from repro.isa import build_isa, encode
from repro.isa.instruction import Instruction
from repro.isa import rv32c

ISA = build_isa("xpulpnn")

_WIDE_SPECS = [s for s in ISA.specs if s.size == 4]
_C_SPECS = [s for s in ISA.specs if s.size == 2]


def _sample_operands(spec):
    """Representative legal operand values for one spec."""
    ins = Instruction(spec=spec)
    for token in spec.syntax:
        if token == "rd":
            ins.rd = 11
        elif "rs1" in token:
            ins.rs1 = 12
        elif "rs2" in token:
            ins.rs2 = 13
        elif token == "L":
            ins.rd = 1
        elif token == "count5":
            ins.rs1 = 7
        elif token == "label":
            ins.imm = 8 if spec.fmt in ("LP", "LPI") else -8
        elif token in ("imm", "uimm") or "(" in token:
            if spec.fmt in ("I", "S"):
                ins.imm = -5
            elif spec.fmt == "PVI":
                ins.imm = -3
            elif spec.fmt == "U":
                ins.imm = 0x12345
            elif spec.fmt in ("SH",):
                ins.imm = 7
            else:
                ins.imm = 9
        elif token in ("pos", "len"):
            ins.imm = 4 | (7 << 5)  # pos=4, len=8
    # Compressed encodings restrict registers/immediates.
    if spec.size == 2:
        wide_reg = spec.mnemonic in ("c.lwsp", "c.swsp", "c.slli", "c.li",
                                     "c.lui", "c.addi", "c.mv", "c.add",
                                     "c.jr", "c.jalr")
        ins.rd = 5 if wide_reg else 9
        ins.rs1 = 5 if wide_reg else 10
        ins.rs2 = 6 if wide_reg else 8
        if spec.mnemonic in ("c.lw", "c.sw", "c.lwsp", "c.swsp"):
            ins.imm = 8
        elif spec.mnemonic in ("c.j", "c.jal", "c.beqz", "c.bnez"):
            ins.imm = -6
        elif spec.mnemonic == "c.addi16sp":
            ins.imm = 32
        elif spec.mnemonic == "c.addi4spn":
            ins.imm = 8
        elif spec.mnemonic in ("c.slli", "c.srli", "c.srai"):
            ins.imm = 3
        elif spec.mnemonic == "c.lui":
            ins.imm = 3
        elif spec.mnemonic in ("c.addi", "c.li", "c.andi"):
            ins.imm = -2
        else:
            ins.imm = 0
    return ins


def _relevant_fields(spec):
    fields = set()
    syntax = " ".join(spec.syntax)
    if "rd" in syntax:
        fields.add("rd")
    if "rs1" in syntax:
        fields.add("rs1")
    if "rs2" in syntax:
        fields.add("rs2")
    if any(t in syntax for t in ("imm", "label", "pos", "len", "uimm")):
        fields.add("imm")
    if "L" in spec.syntax:
        fields.add("rd")
    if "count5" in spec.syntax:
        fields.add("rs1")
    return fields


@pytest.mark.parametrize("spec", _WIDE_SPECS, ids=lambda s: s.mnemonic)
def test_wide_roundtrip(spec):
    ins = _sample_operands(spec)
    word = encode(ins)
    decoded = ISA.decoder.decode(word)
    assert decoded.spec.mnemonic == spec.mnemonic
    for field in _relevant_fields(spec):
        assert getattr(decoded, field) == getattr(ins, field), field


@pytest.mark.parametrize("spec", _C_SPECS, ids=lambda s: s.mnemonic)
def test_compressed_roundtrip(spec):
    ins = _sample_operands(spec)
    half = rv32c.encode_c(ins)
    assert half & 3 != 3, "compressed encodings must not look like 32-bit ones"
    decoded = rv32c.decode_c(half)
    assert decoded.spec.mnemonic == spec.mnemonic
    for field in _relevant_fields(spec):
        assert getattr(decoded, field) == getattr(ins, field), field


def test_decode_unknown_word_raises():
    from repro.errors import DecodeError

    with pytest.raises(DecodeError):
        ISA.decoder.decode(0xFFFFFFFF)


def test_decoder_distinguishes_srli_srai():
    from repro.asm import assemble

    program = assemble("srli a0, a1, 3\nsrai a2, a3, 3", isa="rv32imc")
    words = [int.from_bytes(program.encode()[i:i+4], "little") for i in (0, 4)]
    assert ISA.decoder.decode(words[0]).mnemonic == "srli"
    assert ISA.decoder.decode(words[1]).mnemonic == "srai"


def test_all_specs_unique_encodings():
    """No two wide specs may claim the same fixed bits."""
    seen = {}
    from repro.isa.encoding import _fixed_mask_match

    for spec in _WIDE_SPECS:
        mask, match = _fixed_mask_match(spec.fixed)
        key = (mask, match)
        assert key not in seen, f"{spec.mnemonic} collides with {seen.get(key)}"
        seen[key] = spec.mnemonic
