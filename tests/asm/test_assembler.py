"""Text assembler: syntax, pseudo-instructions, error reporting."""

import pytest

from repro.asm import assemble
from repro.errors import AsmError, LinkError


class TestBasicSyntax:
    def test_simple_program(self):
        program = assemble("addi a0, zero, 1\nebreak")
        assert len(program) == 2
        assert program.instructions[0].mnemonic == "addi"

    def test_comments_stripped(self):
        program = assemble("addi a0, zero, 1  # comment\n// line\nebreak")
        assert len(program) == 2

    def test_semicolon_comment(self):
        program = assemble("addi a0, zero, 1 ; note\nebreak")
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("addi a0, zero, 0x7f\nebreak")
        assert program.instructions[0].imm == 127

    def test_negative_immediates(self):
        program = assemble("addi a0, zero, -42\nebreak")
        assert program.instructions[0].imm == -42

    def test_memory_operand(self):
        program = assemble("lw a0, 8(sp)\nebreak")
        ins = program.instructions[0]
        assert ins.rs1 == 2 and ins.imm == 8

    def test_label_on_same_line(self):
        program = assemble("start: addi a0, zero, 1\nebreak")
        assert program.labels["start"] == 0

    def test_directives_ignored(self):
        program = assemble(".text\n.globl main\nmain:\nebreak")
        assert len(program) == 1

    def test_unknown_directive_raises(self):
        with pytest.raises(AsmError):
            assemble(".weird 1")

    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0


class TestPulpSyntax:
    def test_post_increment_load(self):
        program = assemble("p.lw a0, 4(a1!)\nebreak")
        assert program.instructions[0].mnemonic == "p.lw"

    def test_register_offset_load_selected(self):
        program = assemble("p.lw a0, t0(a1)\nebreak")
        assert program.instructions[0].mnemonic == "p.lwrr"

    def test_register_postinc_load_selected(self):
        program = assemble("p.lw a0, t0(a1!)\nebreak")
        assert program.instructions[0].mnemonic == "p.lwrrpost"

    def test_wrong_bang_raises(self):
        with pytest.raises(AsmError):
            assemble("p.lw a0, 4(a1)\nebreak")  # imm form requires '!'

    def test_hwloop_operands(self):
        program = assemble("lp.setupi 0, 5, end\nnop\nend:\nebreak")
        ins = program.instructions[0]
        assert ins.rd == 0 and ins.rs1 == 5

    def test_bad_loop_level(self):
        with pytest.raises(AsmError):
            assemble("lp.setupi 2, 5, end\nnop\nend:\nebreak")

    def test_bitfield_operands(self):
        program = assemble("p.extract a0, a1, 4, 8\nebreak")
        assert program.instructions[0].imm == 4 | (7 << 5)

    def test_simd_sci(self):
        program = assemble("pv.add.sci.b a0, a1, -3\nebreak")
        assert program.instructions[0].imm == -3


class TestPseudoInstructions:
    def test_nop(self):
        program = assemble("nop\nebreak")
        assert program.instructions[0].mnemonic == "addi"

    def test_li_small(self):
        program = assemble("li a0, 100\nebreak")
        assert len(program) == 2

    def test_li_large_expands(self):
        program = assemble("li a0, 0x12345678\nebreak")
        assert [i.mnemonic for i in program.instructions[:2]] == ["lui", "addi"]

    def test_li_rounds_correctly(self, cpu):
        from tests.conftest import run_asm

        for value in (0x12345678, 0xFFFFFFFF, 0x800, 0xFFFFF800, 0x7FFFFFFF):
            run_asm(cpu, f"li a0, {value}\nebreak")
            assert cpu.regs[10] == value, hex(value)

    def test_mv_not_neg(self, cpu):
        from tests.conftest import run_asm

        run_asm(cpu, "mv a0, a1\nnot a2, a1\nneg a3, a1\nebreak", a1=5)
        assert cpu.regs[10] == 5
        assert cpu.regs[12] == 0xFFFFFFFA
        assert cpu.regs[13] == 0xFFFFFFFB

    def test_branch_pseudos(self, cpu):
        from tests.conftest import run_asm

        src = """
            bgt a1, a2, big
            addi a0, zero, 1
            ebreak
        big:
            addi a0, zero, 2
            ebreak
        """
        run_asm(cpu, src, a1=5, a2=3)
        assert cpu.regs[10] == 2

    def test_ret(self):
        program = assemble("ret")
        ins = program.instructions[0]
        assert ins.mnemonic == "jalr" and ins.rs1 == 1 and ins.rd == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="line 1"):
            assemble("frobnicate a0")

    def test_unknown_register(self):
        with pytest.raises(AsmError):
            assemble("addi q0, zero, 1")

    def test_missing_operand(self):
        with pytest.raises(AsmError):
            assemble("addi a0, zero")

    def test_extra_operand(self):
        with pytest.raises(AsmError):
            assemble("addi a0, zero, 1, 2")

    def test_undefined_label(self):
        with pytest.raises(LinkError):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("x:\nnop\nx:\nnop")

    def test_isa_gating(self):
        with pytest.raises(AsmError):
            assemble("pv.qnt.n a0, a1, a2", isa="ri5cy")

    def test_immediate_out_of_range(self):
        with pytest.raises(LinkError):
            assemble("addi a0, zero, 5000")


class TestLinking:
    def test_base_address(self):
        program = assemble("nop\nebreak", base=0x100)
        assert program.instructions[0].addr == 0x100
        assert program.base == 0x100

    def test_entry_label(self):
        program = assemble("nop\nmain:\nebreak", entry_label="main")
        assert program.entry == 4

    def test_forward_and_backward_labels(self):
        src = """
        top:
            j bottom
        bottom:
            j top
        """
        program = assemble(src)
        assert program.instructions[0].imm == 4
        assert program.instructions[1].imm == -4

    def test_end_label_after_last_instruction(self):
        program = assemble("lp.setupi 0, 2, end\nnop\nend:")
        assert program.labels["end"] == 8
