"""Disassembler tests: text round-trips and binary decoding."""

import pytest

from repro.asm import assemble, disassemble_bytes, disassemble_program, format_instruction

SOURCES = [
    "addi a0, zero, -5",
    "lw a0, 8(sp)",
    "sw a1, -4(s0)",
    "lui a0, 74565",
    "p.lw a2, 4(a0!)",
    "p.lw a2, t0(a0)",
    "pv.sdotsp.n s2, a2, a3",
    "pv.add.sci.b a0, a1, -3",
    "p.extract a0, a1, 4, 8",
    "p.clipu a0, a1, 9",
    "lp.counti 0, 12",
]


@pytest.mark.parametrize("source", SOURCES)
def test_text_roundtrip(source):
    """assemble(disassemble(assemble(x))) == assemble(x)."""
    first = assemble(source + "\nebreak")
    text = format_instruction(first.instructions[0])
    second = assemble(text + "\nebreak")
    assert first.encode() == second.encode()


def test_branch_targets_render_as_addresses():
    program = assemble("beq a0, a1, t\nnop\nt:\nebreak")
    text = format_instruction(program.instructions[0], symbolic=False)
    assert "0x8" in text


def test_symbolic_target_preserved():
    program = assemble("j somewhere\nsomewhere:\nebreak")
    assert "somewhere" in format_instruction(program.instructions[0])


def test_disassemble_program_includes_labels():
    listing = disassemble_program(assemble("main:\nnop\nebreak"))
    assert "main:" in listing
    assert "0x00000000" in listing


def test_disassemble_bytes_mixed_widths():
    from repro.isa import rv32c
    from repro.isa.instruction import Instruction

    # one compressed + one wide instruction
    c_nop = Instruction(spec=next(s for s in rv32c.SPECS if s.mnemonic == "c.nop"))
    program = assemble("addi a0, zero, 1\nebreak")
    blob = rv32c.encode_c(c_nop).to_bytes(2, "little") + program.encode()
    decoded = disassemble_bytes(blob)
    assert [i.mnemonic for i in decoded] == ["c.nop", "addi", "ebreak"]
    assert decoded[1].addr == 2
