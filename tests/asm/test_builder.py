"""KernelBuilder DSL tests."""

import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu
from repro.errors import AsmError


def _run(builder, **regs):
    cpu = Cpu(isa=builder.isa.name)
    program = builder.build()
    cpu.load_program(program)
    for name, value in regs.items():
        from repro.isa.registers import parse_register

        cpu.regs[parse_register(name)] = value
    cpu.run()
    return cpu


class TestEmit:
    def test_basic_emit(self):
        b = KernelBuilder()
        b.emit("addi", "a0", "zero", 5)
        b.ebreak()
        assert _run(b).regs[10] == 5

    def test_register_by_index(self):
        b = KernelBuilder()
        b.emit("addi", 10, 0, 3)
        b.ebreak()
        assert _run(b).regs[10] == 3

    def test_memory_operand_flattened(self):
        b = KernelBuilder()
        b.emit("lw", "a0", 4, "a1")
        b.ebreak()
        cpu = Cpu()
        cpu.mem.store(0x104, 4, 42)
        program = b.build()
        cpu.load_program(program)
        cpu.regs[11] = 0x100
        cpu.run()
        assert cpu.regs[10] == 42

    def test_post_increment_flag(self):
        b = KernelBuilder()
        b.emit("p.lw", "a0", 4, "a1", inc=True)
        b.ebreak()
        cpu = _run_with_mem(b)
        assert cpu.regs[11] == 0x104

    def test_bitfield_pair(self):
        b = KernelBuilder()
        b.emit("p.extractu", "a0", "a1", 8, 4)
        b.ebreak()
        cpu = _run(b, a1=0xABCD)
        assert cpu.regs[10] == 0xB  # bits [11:8]

    def test_missing_operand_raises(self):
        b = KernelBuilder()
        with pytest.raises(AsmError):
            b.emit("addi", "a0", "zero")

    def test_extra_operand_raises(self):
        b = KernelBuilder()
        with pytest.raises(AsmError):
            b.emit("addi", "a0", "zero", 1, 2)

    def test_unknown_mnemonic_raises(self):
        b = KernelBuilder()
        with pytest.raises(Exception):
            b.emit("bogus", "a0")


def _run_with_mem(builder):
    cpu = Cpu()
    program = builder.build()
    cpu.load_program(program)
    cpu.regs[11] = 0x100
    cpu.run()
    return cpu


class TestHelpers:
    def test_li_values(self):
        for value in (0, 1, -1, 2047, -2048, 2048, 0x12345678, 0x80000000,
                      0xFFFFF7FF, 0x7FFFFFFF):
            b = KernelBuilder()
            b.li("a0", value)
            b.ebreak()
            assert _run(b).regs[10] == value & 0xFFFFFFFF, hex(value)

    def test_mv_nop(self):
        b = KernelBuilder()
        b.mv("a0", "a1")
        b.nop()
        b.ebreak()
        assert _run(b, a1=9).regs[10] == 9

    def test_branch_helpers(self):
        b = KernelBuilder()
        b.beqz("a1", "zero_case")
        b.li("a0", 1)
        b.ebreak()
        b.label("zero_case")
        b.li("a0", 2)
        b.ebreak()
        assert _run(b, a1=0).regs[10] == 2
        assert _run(b, a1=5).regs[10] == 1

    def test_fresh_labels_unique(self):
        b = KernelBuilder()
        assert b.fresh_label() != b.fresh_label()


class TestHardwareLoopContext:
    def test_loop_with_register_count(self):
        b = KernelBuilder()
        b.li("t0", 6)
        b.li("a0", 0)
        with b.hardware_loop(0, "t0"):
            b.emit("addi", "a0", "a0", 2)
        b.ebreak()
        assert _run(b).regs[10] == 12

    def test_loop_with_immediate_count(self):
        b = KernelBuilder()
        b.li("a0", 0)
        with b.hardware_loop(0, 4):
            b.emit("addi", "a0", "a0", 1)
        b.ebreak()
        assert _run(b).regs[10] == 4

    def test_nested_loops(self):
        b = KernelBuilder()
        b.li("a0", 0)
        with b.hardware_loop(1, 3):
            with b.hardware_loop(0, 5):
                b.emit("addi", "a0", "a0", 1)
            b.emit("addi", "a0", "a0", 100)
        b.ebreak()
        assert _run(b).regs[10] == 3 * 105

    def test_empty_body_raises(self):
        b = KernelBuilder()
        with pytest.raises(AsmError):
            with b.hardware_loop(0, 3):
                pass


class TestLabels:
    def test_duplicate_label_raises(self):
        b = KernelBuilder()
        b.label("x")
        with pytest.raises(AsmError):
            b.label("x")

    def test_entry_label(self):
        b = KernelBuilder()
        b.nop()
        b.label("main")
        b.li("a0", 1)
        b.ebreak()
        program = b.build(entry_label="main")
        assert program.entry == 4
