"""Static cycle analyzer: unit semantics + simulator parity.

The parity suite is the analyzer's acceptance bar: on every
straight-line/hwloop catalog kernel the static estimate must equal the
simulator's active cycle count *bit-exactly* (and agree on instruction
count, hwloop back-edges, stall taxonomy, and per-class breakdown); on
the branchy software-quantization kernels the interval must contain the
measurement with a midpoint within 5%.
"""

import numpy as np
import pytest

from repro.analysis import analyze_cost
from repro.analysis.catalog import (
    LINT_CORES,
    catalog_kernel,
    catalog_kernel_names,
    compiled_network_programs,
)
from repro.analysis.cost import COST_SCHEMA_VERSION, Interval
from repro.asm import assemble
from repro.qnn import random_threshold_table

#: Catalog kernels whose cycle count is data-dependent (software
#: threshold-tree quantization): the analyzer reports an interval.
BOUNDED = [
    "matmul-4b-xpulpnn-sw",
    "matmul-4b-ri5cy-sw",
    "matmul-2b-ri5cy-sw",
    "conv-4b-ri5cy-sw",
]

#: Everything else must be bit-exact — the enumerated exact set.
EXACT = [n for n in catalog_kernel_names() if n not in BOUNDED]


def active(perf) -> int:
    """Cycles the static model prices: no idle, no TCDM contention."""
    return perf.cycles - perf.idle_cycles - perf.stall_tcdm_contention


def run_catalog(name, kern):
    """Execute catalog kernel *kern* with deterministic representative
    data; returns ``[(hart_id, PerfCounters)]`` (one pair per core)."""
    cfg = kern.config
    rng = np.random.default_rng(0)
    bits = getattr(cfg, "bits", 8)

    def signed(shape):
        return rng.integers(-(1 << bits - 1), 1 << bits - 1,
                            shape).astype(np.int32)

    def unsigned(shape):
        return rng.integers(0, 1 << bits, shape).astype(np.int32)

    def thresholds(out_ch):
        if getattr(cfg, "quant", "") in ("hw", "sw"):
            return random_threshold_table(out_ch, bits, spread=2500,
                                          rng=rng)
        return None

    if name.startswith("parallel"):
        from repro.cluster import Cluster

        cluster = Cluster(num_cores=cfg.num_cores, isa=cfg.isa)
        if "matmul" in name:
            kern.run(signed((cfg.out_ch, cfg.reduction)),
                     unsigned(cfg.reduction), unsigned(cfg.reduction),
                     thresholds=thresholds(cfg.out_ch), cluster=cluster)
        else:
            g = cfg.geometry
            kern.run(signed((g.out_ch, g.kh, g.kw, g.in_ch)),
                     unsigned((g.in_h, g.in_w, g.in_ch)),
                     thresholds=thresholds(g.out_ch), cluster=cluster)
        return [(h, core.perf) for h, core in enumerate(cluster.cores)]
    if name.startswith("matmul"):
        run = kern.run(signed((cfg.out_ch, cfg.reduction)),
                       unsigned(cfg.reduction), unsigned(cfg.reduction),
                       thresholds=thresholds(cfg.out_ch))
    elif name.startswith("conv"):
        g = cfg.geometry
        run = kern.run(signed((g.out_ch, g.kh, g.kw, g.in_ch)),
                       unsigned((g.in_h, g.in_w, g.in_ch)),
                       thresholds=thresholds(g.out_ch))
    elif name.startswith("depthwise"):
        run = kern.run(signed((cfg.kh, cfg.kw, cfg.channels)),
                       unsigned((cfg.in_h, cfg.in_w, cfg.channels)))
    elif name.startswith("pool"):
        run = kern.run(unsigned((cfg.in_h, cfg.in_w, cfg.channels)))
    elif name.startswith("linear"):
        run = kern.run(signed((cfg.out_features, cfg.in_features)),
                       unsigned(cfg.in_features))
    elif name.startswith("relu"):
        run = kern.run(signed(cfg.elements))
    else:
        raise AssertionError(f"no harness recipe for {name}")
    return [(0, run.perf)]


# ---------------------------------------------------------------------------
# Simulator parity over the kernel catalog
# ---------------------------------------------------------------------------

class TestCatalogParity:
    def test_exact_set_covers_at_least_80_percent(self):
        assert len(EXACT) + len(BOUNDED) == len(catalog_kernel_names())
        assert len(EXACT) / len(catalog_kernel_names()) >= 0.80

    @pytest.mark.parametrize("name", EXACT)
    def test_exact_kernels_match_the_simulator_bit_exactly(self, name):
        kern = catalog_kernel(name)
        for hart, perf in run_catalog(name, kern):
            report = analyze_cost(kern.program, name=name, hart_id=hart)
            assert report.exact, report.render()
            mismatches = report.compare(perf)
            assert not mismatches, (hart, mismatches)

    @pytest.mark.parametrize("name", BOUNDED)
    def test_branchy_kernels_are_bounded_within_5_percent(self, name):
        kern = catalog_kernel(name)
        ((_, perf),) = run_catalog(name, kern)
        report = analyze_cost(kern.program, name=name)
        measured = active(perf)
        assert not report.exact and report.bounded, report.render()
        assert report.cycles.contains(measured), (report.cycles, measured)
        assert report.relative_error(measured) <= 0.05

    def test_mixed3_lowered_programs_are_exact(self):
        for name, program in compiled_network_programs():
            for hart in range(LINT_CORES):
                report = analyze_cost(program, name=name, hart_id=hart)
                assert report.exact, (name, hart, report.render())


# ---------------------------------------------------------------------------
# Semantics on hand-written programs
# ---------------------------------------------------------------------------

class TestCostSemantics:
    def test_straight_line_charges_unit_latencies(self):
        report = analyze_cost(assemble("""
            addi t0, zero, 5
            addi t1, t0, 1
            ebreak
        """))
        assert report.cycles == Interval.exact(3)
        assert report.instructions == Interval.exact(3)

    def test_load_use_stall_charged_once(self):
        report = analyze_cost(assemble("""
            lw   t0, 0(a0)
            addi t1, t0, 1
            ebreak
        """))
        assert report.cycles == Interval.exact(4)
        assert report.stalls["stall_load_use"] == Interval.exact(1)

    def test_independent_next_instruction_hides_the_load(self):
        report = analyze_cost(assemble("""
            lw   t0, 0(a0)
            addi t1, a1, 1
            ebreak
        """))
        assert report.cycles == Interval.exact(3)
        assert report.stalls["stall_load_use"] == Interval.exact(0)

    def test_jump_penalty_always_charged(self):
        report = analyze_cost(assemble("""
            j    out
        out:
            ebreak
        """))
        assert report.cycles == Interval.exact(3)  # 1 + 1 penalty + 1
        assert report.stalls["stall_jump"] == Interval.exact(1)

    def test_unknown_branch_forks_into_an_interval(self):
        # Not-taken: beq(1) + addi(1) + ebreak(1) = 3.
        # Taken:     beq(1+2) + ebreak(1) = 4.
        report = analyze_cost(assemble("""
            beq  a0, zero, out
            addi t0, zero, 1
        out:
            ebreak
        """))
        assert report.cycles == Interval(3, 4)
        assert report.stalls["stall_branch"] == Interval(0, 2)
        assert not report.exact and report.bounded

    def test_known_branch_condition_stays_exact(self):
        report = analyze_cost(assemble("""
            addi a0, zero, 0
            beq  a0, zero, out
            addi t0, zero, 1
        out:
            ebreak
        """))
        assert report.cycles == Interval.exact(5)  # addi + taken beq + ebreak
        assert report.stalls["stall_branch"] == Interval.exact(2)

    def test_hwloop_body_folded_by_trip_count(self, cpu):
        source = """
            addi a0, zero, 0
            lp.setupi 0, 6, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """
        report = analyze_cost(assemble(source))
        (bound,) = report.loop_bounds
        assert bound.count == Interval.exact(6)
        assert bound.source == "imm"
        assert report.hwloop_backedges == Interval.exact(5)
        cpu.reset()
        cpu.load_program(assemble(source))
        cpu.run()
        assert not report.compare(cpu.perf), report.compare(cpu.perf)

    def test_register_count_loop_from_constant_analysis(self, cpu):
        source = """
            addi t0, zero, 4
            lp.setup 0, t0, end
            addi a0, a0, 1
        end:
            ebreak
        """
        report = analyze_cost(assemble(source))
        (bound,) = report.loop_bounds
        assert bound.count == Interval.exact(4)
        assert bound.source == "const"
        cpu.reset()
        cpu.load_program(assemble(source))
        cpu.run()
        assert not report.compare(cpu.perf)

    def test_bindings_pin_a_data_dependent_branch(self):
        source = """
            beq  a0, zero, out
            addi t0, zero, 1
        out:
            ebreak
        """
        from repro.isa.registers import parse_register

        a0 = parse_register("a0")
        taken = analyze_cost(assemble(source), bindings={a0: 0})
        not_taken = analyze_cost(assemble(source), bindings={a0: 7})
        assert taken.cycles == Interval.exact(4)
        assert not_taken.cycles == Interval.exact(3)


# ---------------------------------------------------------------------------
# Report shape
# ---------------------------------------------------------------------------

class TestReportShape:
    def test_to_dict_carries_the_schema_version(self):
        report = analyze_cost(assemble("ebreak"))
        doc = report.to_dict()
        assert doc["schema_version"] == COST_SCHEMA_VERSION
        assert doc["cycles"] == 1       # exact intervals collapse to ints
        assert set(doc["stalls"]) >= {"stall_load_use", "stall_branch",
                                      "stall_jump"}

    def test_by_region_accounts_marked_code(self):
        kern = catalog_kernel("linear-8b")
        report = analyze_cost(kern.program, name="linear-8b")
        assert "dotprod" in report.by_region
        marked = sum(v.lo for v in report.by_region.values())
        assert 0 < marked <= report.cycles.lo

    def test_render_mentions_exactness(self):
        kern = catalog_kernel("relu-8b")
        text = analyze_cost(kern.program, name="relu-8b").render()
        assert "relu-8b" in text
        assert "exact" in text
