"""Integration: the static verifier over every shipped kernel builder.

The acceptance bar of the analysis subsystem — all programs the kernel
generators emit (MatMul/conv/depthwise/pooling/linear/ReLU at 8/4/2-bit,
serial and cluster-parallel) must lint clean with every checker enabled.
"""

import pytest

from repro.analysis import builtin_kernel_programs, lint_program

CATALOG = list(builtin_kernel_programs())


def test_catalog_covers_the_kernel_families():
    names = [name for name, _ in CATALOG]
    assert len(names) == len(set(names))
    for family in ("matmul", "conv", "depthwise", "pool", "linear",
                   "relu", "parallel"):
        assert any(family in name for name in names), family


@pytest.mark.parametrize("name,program", CATALOG,
                         ids=[name for name, _ in CATALOG])
def test_kernel_program_has_zero_findings(name, program):
    report = lint_program(program, name=name)
    assert report.ok and not report.findings, report.render()
