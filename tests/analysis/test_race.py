"""Dynamic TCDM race detection: unit tests plus cluster-level fixtures."""

from pathlib import Path

import pytest

from repro.analysis import AccessTrace, detect_races, run_race_check
from repro.analysis.race import MAX_RACES
from repro.asm import Assembler
from repro.cluster import Cluster
from repro.soc.memmap import TCDM_BASE

FIXTURE_DIR = Path(__file__).parent / "fixtures"


def trace_of(*accesses):
    trace = AccessTrace()
    for core, addr, size, kind, epoch in accesses:
        trace.record(core, addr, size, kind, epoch)
    return trace


class TestDetector:
    def test_same_epoch_write_write_races(self):
        report = detect_races(trace_of(
            (0, 0x10001000, 4, "w", 0), (1, 0x10001000, 4, "w", 0)))
        assert len(report.races) == 1
        assert report.races[0].kind == "write-write"

    def test_same_epoch_read_write_races(self):
        report = detect_races(trace_of(
            (0, 0x10001000, 4, "w", 0), (1, 0x10001000, 4, "r", 0)))
        assert len(report.races) == 1
        assert report.races[0].kind == "read-write"

    def test_barrier_separated_accesses_are_ordered(self):
        report = detect_races(trace_of(
            (0, 0x10001000, 4, "w", 0), (1, 0x10001000, 4, "r", 1)))
        assert report.ok
        assert report.epochs == 2

    def test_same_core_never_races_with_itself(self):
        report = detect_races(trace_of(
            (0, 0x10001000, 4, "w", 0), (0, 0x10001000, 4, "w", 0)))
        assert report.ok

    def test_reads_never_race(self):
        report = detect_races(trace_of(
            (0, 0x10001000, 4, "r", 0), (1, 0x10001000, 4, "r", 0)))
        assert report.ok

    def test_disjoint_bytes_of_one_word_race_free(self):
        # Byte stores to different halves of a word share a bank but not
        # bytes; the detector works at byte granularity.
        report = detect_races(trace_of(
            (0, 0x10001000, 1, "w", 0), (1, 0x10001002, 1, "w", 0)))
        assert report.ok

    def test_duplicate_conflicts_reported_once(self):
        accesses = [(0, 0x10001000, 4, "w", 0)]
        accesses += [(1, 0x10001000, 4, "w", 0)] * 10
        report = detect_races(trace_of(*accesses))
        assert len(report.races) == 1

    def test_truncation_cap(self):
        accesses = []
        for word in range(MAX_RACES + 8):
            addr = 0x10000000 + 4 * word
            accesses += [(0, addr, 4, "w", 0), (1, addr, 4, "w", 0)]
        report = detect_races(trace_of(*accesses))
        assert report.truncated
        assert len(report.races) == MAX_RACES


def run_fixture(name, cores=2):
    source = (FIXTURE_DIR / name).read_text()
    program = Assembler(isa="xpulpnn", base=TCDM_BASE).assemble(source)
    cluster = Cluster(num_cores=cores)
    trace = cluster.enable_access_trace()
    cluster.load_program(program)
    cluster.run(entry=program.entry)
    return detect_races(trace, name=name)


class TestClusterFixtures:
    def test_missing_barrier_write_write_flagged(self):
        report = run_fixture("missing_barrier.s")
        assert len(report.races) == 1
        race = report.races[0]
        assert race.kind == "write-write"
        assert {race.first.core, race.second.core} == {0, 1}
        assert race.first.addr == TCDM_BASE + 0x1000

    def test_barrier_orders_the_same_accesses(self):
        report = run_fixture("with_barrier.s")
        assert report.ok, report.render()
        assert report.epochs == 2

    def test_trace_cleared_on_cluster_reset(self):
        source = (FIXTURE_DIR / "missing_barrier.s").read_text()
        program = Assembler(isa="xpulpnn", base=TCDM_BASE).assemble(source)
        cluster = Cluster(num_cores=2)
        trace = cluster.enable_access_trace()
        cluster.load_program(program)
        cluster.run(entry=program.entry)
        assert len(trace) > 0
        cluster.reset()
        assert len(trace) == 0


class TestShippedKernelsRaceFree:
    @pytest.mark.parametrize("kernel", ["matmul", "conv"])
    def test_parallel_kernel_is_clean(self, kernel):
        report = run_race_check(kernel, cores=2)
        assert report.ok, report.render()
        assert report.accesses > 0

    def test_four_core_matmul_is_clean(self):
        report = run_race_check("matmul", cores=4)
        assert report.ok, report.render()
