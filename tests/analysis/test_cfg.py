"""CFG construction: leaders, edges, and hardware-loop recovery."""

import pytest

from repro.analysis import build_cfg, find_hwloops
from repro.asm import Assembler


def assemble(source, isa="xpulpnn", base=0):
    return Assembler(isa=isa, base=base).assemble(source)


class TestBlocks:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(assemble("""
            li   a0, 1
            addi a0, a0, 2
            ebreak
        """))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_branch_splits_and_links_both_edges(self):
        cfg = build_cfg(assemble("""
            beqz a0, out
            addi a1, a1, 1
        out:
            ebreak
        """))
        entry = cfg.blocks[cfg.entry_block]
        taken = cfg.block_of(cfg.program.instructions[-1].addr)
        fall = cfg.block_of(cfg.program.instructions[1].addr)
        assert sorted(entry.successors) == sorted([taken.index, fall.index])
        assert entry.index in taken.predecessors
        assert entry.index in fall.predecessors

    def test_halt_terminates_block(self):
        cfg = build_cfg(assemble("""
            ebreak
            addi a0, a0, 1
            ebreak
        """))
        first = cfg.block_of(0)
        assert first.successors == []

    def test_backward_branch_forms_loop_edge(self):
        cfg = build_cfg(assemble("""
            li   t0, 4
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """))
        body = cfg.block_of(4)
        assert body.index in body.successors  # self loop via bnez

    def test_ret_has_no_static_successor(self):
        cfg = build_cfg(assemble("""
            ret
            addi a0, a0, 1
            ebreak
        """))
        assert cfg.block_of(0).successors == []

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            build_cfg(assemble(""))


class TestHwLoops:
    SOURCE = """
        li   t0, 8
        lp.setup 0, t0, end
        addi a0, a0, 1
        addi a0, a0, 2
    end:
        ebreak
    """

    def test_loop_region_recovered(self):
        program = assemble(self.SOURCE)
        (loop,) = find_hwloops(program)
        assert loop.level == 0
        assert loop.setup_addr == 4
        assert loop.start == 8          # first body instruction
        assert loop.end == 16           # address after the last
        assert loop.count is None       # register count isn't static

    def test_setupi_count_is_static(self):
        program = assemble("""
            lp.setupi 0, 6, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """)
        (loop,) = find_hwloops(program)
        assert loop.count == 6

    def test_back_edge_links_body_to_start(self):
        cfg = build_cfg(assemble(self.SOURCE))
        (loop,) = cfg.loops
        tail = cfg.block_of(loop.end - 4)
        head = cfg.block_of(loop.start)
        assert head.index in tail.successors
        assert cfg.loops_containing(loop.start) == [loop]
        assert cfg.loops_containing(loop.end) == []
