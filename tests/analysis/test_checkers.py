"""Unit tests for the individual static checkers."""

import pytest

from repro.analysis import LintConfig, Region, checker_catalog, lint_program
from repro.asm import Assembler
from repro.errors import ReproError


def lint(source, checks=None, isa="xpulpnn", config=None):
    program = Assembler(isa=isa).assemble(source)
    return lint_program(program, checks=checks, config=config)


def messages(report):
    return [f.message for f in report.findings]


class TestRegistry:
    def test_catalog_names_the_paper_checkers(self):
        names = [name for name, _ in checker_catalog()]
        assert names == sorted(names)
        for required in ("undef-register", "write-x0", "hwloop",
                         "simd-format", "qnt-threshold", "addr-range"):
            assert required in names

    def test_unknown_checker_rejected(self):
        with pytest.raises(ReproError):
            lint("ebreak", checks=["no-such-checker"])


class TestUndefRegister:
    def test_scratch_read_before_write(self):
        report = lint("add t2, t0, t1\nebreak", checks=["undef-register"])
        assert len(report.findings) == 2  # t0 and t1

    def test_both_paths_writing_is_clean(self):
        report = lint("""
            beqz a0, other
            li   t0, 1
            j    use
        other:
            li   t0, 2
        use:
            addi t0, t0, 1
            ebreak
        """, checks=["undef-register"])
        assert report.ok, report.render()

    def test_harness_preloaded_registers_are_defined(self):
        report = lint("add a0, a1, s11\nadd a0, ra, t3\nebreak",
                      checks=["undef-register"])
        assert report.ok

    def test_partial_lane_insert_idiom_not_flagged(self):
        # Building a vector lane-by-lane into an uninitialized register
        # is how the RI5CY unpack sequences work; rd must be exempt.
        report = lint("""
            li   t0, 7
            pv.insert.b t1, t0, 0
            pv.insert.b t1, t0, 1
            ebreak
        """, checks=["undef-register"])
        assert report.ok, report.render()


class TestWriteX0:
    def test_alu_result_into_x0(self):
        report = lint("add zero, a0, a1\nebreak", checks=["write-x0"])
        assert len(report.findings) == 1
        assert "hardwired to zero" in report.findings[0].message

    def test_canonical_nop_and_jal_discard_allowed(self):
        report = lint("""
            nop
            jal  zero, out
        out:
            ebreak
        """, checks=["write-x0"])
        assert report.ok, report.render()

    def test_post_increment_base_x0(self):
        report = lint("p.lw t0, 4(zero!)\nebreak", checks=["write-x0"])
        assert len(report.findings) == 1
        assert "post-increment" in report.findings[0].message


class TestHwLoop:
    def test_well_formed_loop_is_clean(self):
        report = lint("""
            li   t0, 8
            lp.setup 0, t0, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """, checks=["hwloop"])
        assert report.ok, report.render()

    def test_single_instruction_body(self):
        report = lint("""
            lp.setupi 0, 8, end
            addi a0, a0, 1
        end:
            ebreak
        """, checks=["hwloop"])
        assert any("at least 2" in m for m in messages(report))

    def test_zero_iteration_count(self):
        report = lint("""
            lp.setupi 0, 0, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """, checks=["hwloop"])
        assert any("count 0" in m for m in messages(report))

    def test_branch_as_last_body_instruction(self):
        report = lint("""
            li   t0, 8
            lp.setup 0, t0, end
            addi a0, a0, 1
            bnez a0, done
        end:
            ebreak
        done:
            ebreak
        """, checks=["hwloop"])
        assert any("must not be a branch" in m for m in messages(report))

    def test_branch_escaping_the_body(self):
        report = lint("""
            li   t0, 8
            lp.setup 0, t0, end
            bnez a0, out
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        out:
            ebreak
        """, checks=["hwloop"])
        assert any("leaves the hardware-loop body" in m
                   for m in messages(report))

    def test_branch_into_the_body(self):
        report = lint("""
            j    inside
            li   t0, 8
            lp.setup 0, t0, end
            addi a0, a0, 1
        inside:
            addi a0, a0, 2
        end:
            ebreak
        """, checks=["hwloop"])
        assert any("bypasses the loop setup" in m for m in messages(report))

    def test_proper_two_level_nesting_is_clean(self):
        report = lint("""
            li   t0, 4
            li   t1, 4
            lp.setup 1, t0, outer_end
            lp.setup 0, t1, inner_end
            addi a0, a0, 1
            addi a0, a0, 2
        inner_end:
            addi a0, a0, 3
        outer_end:
            ebreak
        """, checks=["hwloop"])
        assert report.ok, report.render()

    def test_inner_loop_at_level_one_flagged(self):
        report = lint("""
            li   t0, 4
            li   t1, 4
            lp.setup 0, t0, outer_end
            lp.setup 1, t1, inner_end
            addi a0, a0, 1
            addi a0, a0, 2
        inner_end:
            addi a0, a0, 3
        outer_end:
            ebreak
        """, checks=["hwloop"])
        assert any("inner hardware loop must use level 0" in m
                   for m in messages(report))


class TestSimdFormat:
    def test_scalar_dot_result_consumed_as_vector(self):
        report = lint("""
            li   t0, 0x01020304
            pv.dotup.b t1, t0, t0
            pv.add.b t2, t1, t0
            ebreak
        """, checks=["simd-format"])
        assert any("scalar" in m for m in messages(report))

    def test_qnt_input_must_be_halfword_accumulators(self):
        report = lint("""
            li   t0, 0x01020304
            li   t3, 0x1000
            pv.add.n t1, t0, t0
            pv.qnt.n t2, t1, t3
            ebreak
        """, checks=["simd-format"])
        assert any("packed 16-bit accumulators" in m for m in messages(report))

    def test_matching_formats_are_clean(self):
        report = lint("""
            li   t0, 0x01020304
            pv.add.n t1, t0, t0
            pv.sub.n t2, t1, t1
            pv.sdotup.n t3, t1, t2
            ebreak
        """, checks=["simd-format"])
        assert report.ok, report.render()


class TestQntThreshold:
    def test_misaligned_pointer(self):
        report = lint("""
            li   t0, 0x1001
            li   t1, 0
            pv.qnt.n t2, t1, t0
            ebreak
        """, checks=["qnt-threshold"])
        assert any("not 16-bit aligned" in m for m in messages(report))

    def test_pointer_into_code_image(self):
        report = lint("""
            li   t0, 0
            li   t1, 0
            pv.qnt.n t2, t1, t0
            ebreak
        """, checks=["qnt-threshold"])
        assert any("overlaps the code image" in m for m in messages(report))

    def test_unknown_pointer_not_flagged(self):
        report = lint("""
            li   t1, 0
            pv.qnt.n t2, t1, a5
            ebreak
        """, checks=["qnt-threshold"])
        assert report.ok, report.render()


class TestAddrRange:
    def test_store_into_unmapped_hole(self):
        report = lint("""
            li   t0, 0x08000000
            sw   t0, 0(t0)
            ebreak
        """, checks=["addr-range"])
        assert len(report.findings) == 1
        assert report.findings[0].severity == "error"

    def test_misaligned_word_access_is_warning(self):
        report = lint("""
            li   t0, 0x1002
            lw   t1, 1(t0)
            ebreak
        """, checks=["addr-range"])
        assert len(report.findings) == 1
        assert report.findings[0].severity == "warning"
        assert report.ok  # warnings don't fail the report

    def test_mapped_regions_are_clean(self):
        report = lint("""
            li   t0, 0x1000
            li   t1, 0x1C000000
            sw   t0, 0(t0)
            lw   t2, 8(t1)
            ebreak
        """, checks=["addr-range"])
        assert report.ok, report.render()

    def test_custom_region_config(self):
        config = LintConfig(regions=(Region("tiny", 0x0, 0x100, "ram"),))
        report = lint("""
            li   t0, 0x200
            sw   t0, 0(t0)
            ebreak
        """, checks=["addr-range"], config=config)
        assert len(report.findings) == 1
