"""Source lint: core-name strings stay inside ``repro.target``."""

from repro.analysis.srclint import (
    package_root,
    render_report,
    scan_file,
    scan_tree,
)


class TestShippedTree:
    def test_package_is_clean(self):
        findings = scan_tree()
        assert findings == [], render_report(findings)

    def test_report_renders_ok(self):
        assert "OK" in render_report([])

    def test_root_is_the_repro_package(self):
        assert package_root().name == "repro"


class TestScan:
    def test_flags_bare_literals(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text('CORE = "xpulpnn"\n\nif CORE == "ri5cy":\n    pass\n')
        findings = scan_tree(root=tmp_path, exempt=())
        assert [f.literal for f in findings] == ["xpulpnn", "ri5cy"]
        assert findings[0].line == 1
        assert "mod.py" in render_report(findings)

    def test_docstrings_exempt(self, tmp_path):
        ok = tmp_path / "mod.py"
        ok.write_text('"""About the xpulpnn core."""\n\n'
                      'def f():\n    "runs on ri5cy"\n')
        assert scan_tree(root=tmp_path, exempt=()) == []

    def test_exempt_directory_skipped(self, tmp_path):
        sub = tmp_path / "target"
        sub.mkdir()
        (sub / "names.py").write_text('XPULPNN = "xpulpnn"\n')
        assert scan_tree(root=tmp_path) == []
        assert len(scan_tree(root=tmp_path, exempt=())) == 1

    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "mod.py"
        broken.write_text("def f(:\n")
        findings = scan_file(broken)
        assert len(findings) == 1
        assert "syntax error" in findings[0].literal
