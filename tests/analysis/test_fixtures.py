"""Negative fixtures: each seeds exactly one defect.

Every fixture must (a) raise exactly its intended diagnostic from the
matching checker and (b) stay quiet under every *other* checker — a
cross-product guard against false positives.
"""

from pathlib import Path

import pytest

from repro.analysis import CHECKERS, lint_program
from repro.asm import Assembler

FIXTURE_DIR = Path(__file__).parent / "fixtures"

#: fixture -> (expected checker, required message fragment)
STATIC_FIXTURES = {
    "undef_register.s": (
        "undef-register", "register t1 is read but not written"),
    "bad_loop_nesting.s": (
        "hwloop", "nested hardware loops share level 0"),
    "format_mix.s": (
        "simd-format", "packed as a nibble vector but is consumed as a byte"),
    "out_of_range_store.s": (
        "addr-range", "falls outside every mapped region"),
}


def lint_fixture(name, checks=None):
    source = (FIXTURE_DIR / name).read_text()
    program = Assembler(isa="xpulpnn").assemble(source)
    return lint_program(program, checks=checks, name=name)


@pytest.mark.parametrize("fixture,expected", sorted(STATIC_FIXTURES.items()))
def test_fixture_raises_exactly_its_diagnostic(fixture, expected):
    checker, fragment = expected
    report = lint_fixture(fixture)
    assert len(report.findings) == 1, report.render()
    finding = report.findings[0]
    assert finding.checker == checker
    assert fragment in finding.message


@pytest.mark.parametrize("fixture", sorted(STATIC_FIXTURES))
@pytest.mark.parametrize("checker", sorted(CHECKERS))
def test_no_cross_fixture_false_positives(fixture, checker):
    expected_checker, _ = STATIC_FIXTURES[fixture]
    if checker == expected_checker:
        return
    report = lint_fixture(fixture, checks=[checker])
    assert report.ok, report.render()


def test_all_fixtures_are_exercised():
    static = set(STATIC_FIXTURES)
    dynamic = {"missing_barrier.s", "with_barrier.s"}  # tests/analysis/test_race.py
    present = {p.name for p in FIXTURE_DIR.glob("*.s")}
    assert present == static | dynamic
