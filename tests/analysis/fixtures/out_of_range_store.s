# Defect: store to 0x08000000, a hole between the standalone RAM and
# every mapped SoC region.
# Expected: exactly one addr-range finding at the sw.
    li   t0, 0x08000000
    li   t1, 42
    sw   t1, 0(t0)
    ebreak
