# Defect: t1 is written on only one path, then read unconditionally.
# Expected: exactly one undef-register finding at the `add`.
    li   t0, 1
    beqz a0, skip
    li   t1, 5
skip:
    add  t2, t0, t1
    ebreak
