# Correct version of missing_barrier.s: each core writes its own TCDM
# word, passes the event-unit barrier, then reads core 0's word.  The
# barrier separates the write and the cross-core reads into different
# epochs, so the race detector must stay quiet.
    csrr t0, 0xF14
    li   t1, 0x10001000
    slli t2, t0, 2
    add  t2, t1, t2
    sw   t0, 0(t2)
    li   t3, 0x10200004
    lw   t4, 0(t3)
    lw   t5, 0(t1)
    ebreak
