# Defect: both hardware loops claim level 0; RI5CY nesting requires the
# inner loop at level 0 and the outer at level 1.
# Expected: exactly one hwloop finding at the inner lp.setup.
    li   t0, 4
    li   t1, 4
    li   a0, 0
    lp.setup 0, t0, outer_end
    lp.setup 0, t1, inner_end
    addi a0, a0, 1
    addi a0, a0, 2
inner_end:
    addi a0, a0, 3
outer_end:
    ebreak
