# Defect: t2 is produced as a nibble (.n) vector but consumed by a byte
# (.b) lane operation.
# Expected: exactly one simd-format finding at the pv.add.b.
    li   t0, 0x44332211
    li   t1, 0x11111111
    pv.add.n t2, t0, t1
    pv.add.b t3, t2, t1
    ebreak
