# Defect: every core of the cluster writes the same TCDM word with no
# event-unit barrier ordering the accesses.
# Expected: the dynamic race detector reports a write-write race.
    li   t0, 0x10001000
    csrr t1, 0xF14
    sw   t1, 0(t0)
    ebreak
