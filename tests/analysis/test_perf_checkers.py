"""Negative fixtures for the opt-in performance-hazard checkers.

Each checker gets a minimal program exhibiting its hazard (the finding
must fire) and a scheduled/vectorized twin (the finding must not).
"""

from repro.analysis import (
    LintConfig,
    default_checks,
    lint_program,
    perf_checks,
)
from repro.asm import Assembler


def lint(source, checks=None, config=None, isa="xpulpnn"):
    program = Assembler(isa=isa).assemble(source)
    return lint_program(program, checks=checks, config=config)


class TestRegistry:
    def test_perf_checkers_are_opt_in(self):
        assert set(perf_checks()) == {
            "hwloop-overhead", "load-use-stall", "missed-simd",
            "tcdm-bank-conflict",
        }
        assert not set(perf_checks()) & set(default_checks())

    def test_perf_findings_are_warnings(self):
        report = lint("""
            lw   t0, 0(a0)
            add  t1, t0, t2
            addi a1, a1, 4
            ebreak
        """, checks=perf_checks())
        assert report.findings
        assert all(f.severity == "warning" for f in report.findings)
        assert report.ok                # warnings don't fail the lint


class TestLoadUseStall:
    SOURCE = """
        lw   t0, 0(a0)
        add  t1, t0, t2
        addi a1, a1, 4
        ebreak
    """

    def test_schedulable_stall_is_flagged(self):
        report = lint(self.SOURCE, checks=["load-use-stall"])
        (finding,) = report.findings
        assert finding.mnemonic == "lw"
        assert "addi" in finding.message

    def test_scheduled_twin_is_clean(self):
        report = lint("""
            lw   t0, 0(a0)
            addi a1, a1, 4
            add  t1, t0, t2
            ebreak
        """, checks=["load-use-stall"])
        assert not report.findings, report.render()

    def test_dependent_filler_does_not_count(self):
        # The only later instruction reads t1, which the consumer writes:
        # hoisting it would reorder a true dependency.
        report = lint("""
            lw   t0, 0(a0)
            add  t1, t0, t2
            addi a1, t1, 4
            ebreak
        """, checks=["load-use-stall"])
        assert not report.findings, report.render()


class TestTcdmBankConflict:
    def test_bank_span_stride_in_hwloop_is_flagged(self):
        report = lint("""
            lp.setupi 0, 8, end
            p.lw t0, 64(a0!)
            add  t1, t1, t0
        end:
            ebreak
        """, checks=["tcdm-bank-conflict"])
        (finding,) = report.findings
        assert "64" in finding.message
        assert "bank" in finding.message

    def test_span_scales_with_configured_banks(self):
        report = lint("""
            lp.setupi 0, 8, end
            p.lw t0, 32(a0!)
            add  t1, t1, t0
        end:
            ebreak
        """, checks=["tcdm-bank-conflict"],
            config=LintConfig(tcdm_banks=8))
        assert len(report.findings) == 1

    def test_coprime_stride_is_clean(self):
        report = lint("""
            lp.setupi 0, 8, end
            p.lw t0, 68(a0!)
            add  t1, t1, t0
        end:
            ebreak
        """, checks=["tcdm-bank-conflict"])
        assert not report.findings, report.render()

    def test_straight_line_access_is_clean(self):
        report = lint("p.lw t0, 64(a0!)\nebreak",
                      checks=["tcdm-bank-conflict"])
        assert not report.findings, report.render()


class TestMissedSimd:
    SCALAR = """
        lp.setupi 0, 16, end
        p.lb t0, 1(a0!)
        p.lb t1, 1(a1!)
        mul  t2, t0, t1
        add  a2, a2, t2
    end:
        ebreak
    """

    def test_scalar_byte_loop_suggests_sdotusp4(self):
        report = lint(self.SCALAR, checks=["missed-simd"])
        (finding,) = report.findings
        assert "pv.sdotusp4" in finding.message

    def test_vectorized_twin_is_clean(self):
        report = lint("""
            lp.setupi 0, 4, end
            p.lw t0, 4(a0!)
            p.lw t1, 4(a1!)
            pv.sdotusp.b a2, t0, t1
        end:
            ebreak
        """, checks=["missed-simd"])
        assert not report.findings, report.render()

    def test_halfword_loop_suggests_two_lanes(self):
        report = lint("""
            lp.setupi 0, 8, end
            p.lh t0, 2(a0!)
            mul  t2, t0, t3
            add  a2, a2, t2
        end:
            ebreak
        """, checks=["missed-simd"])
        (finding,) = report.findings
        assert "pv.sdotusp2" in finding.message


class TestHwloopOverhead:
    def test_single_trip_loop_is_flagged(self):
        report = lint("""
            lp.setupi 0, 1, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """, checks=["hwloop-overhead"])
        (finding,) = report.findings
        assert finding.mnemonic == "lp.setupi"
        assert "unroll" in finding.message

    def test_amortized_loop_is_clean(self):
        report = lint("""
            lp.setupi 0, 8, end
            addi a0, a0, 1
            addi a0, a0, 2
        end:
            ebreak
        """, checks=["hwloop-overhead"])
        assert not report.findings, report.render()
