"""Cycle-approximate timing model behaviour (RI5CY parameters)."""

import pytest

from repro.core import Cpu, TimingParams
from repro.core.timing import TimingModel
from tests.conftest import run_asm


class TestClassCycles:
    def test_alu_one_cycle(self, cpu):
        run_asm(cpu, "addi a0, zero, 1\nebreak")
        assert cpu.perf.cycles == 2

    def test_load_one_cycle_no_use(self, cpu):
        cpu.mem.store(0x100, 4, 1)
        run_asm(cpu, "lw a0, 0(a2)\naddi a3, a4, 0\nebreak", a2=0x100)
        assert cpu.perf.cycles == 3
        assert cpu.perf.stall_load_use == 0

    def test_load_use_stall(self, cpu):
        cpu.mem.store(0x100, 4, 5)
        run_asm(cpu, "lw a0, 0(a2)\naddi a1, a0, 1\nebreak", a2=0x100)
        assert cpu.perf.stall_load_use == 1
        assert cpu.perf.cycles == 4

    def test_load_use_stall_skipped_with_gap(self, cpu):
        cpu.mem.store(0x100, 4, 5)
        run_asm(cpu, "lw a0, 0(a2)\nnop\naddi a1, a0, 1\nebreak", a2=0x100)
        assert cpu.perf.stall_load_use == 0

    def test_load_use_stall_on_accumulator(self, cpu):
        """sdotp reads rd, so a load into rd stalls too."""
        cpu.mem.store(0x100, 4, 5)
        run_asm(cpu, "lw a0, 0(a2)\npv.sdotsp.b a0, a3, a4\nebreak", a2=0x100)
        assert cpu.perf.stall_load_use == 1

    def test_x0_load_never_stalls(self, cpu):
        cpu.mem.store(0x100, 4, 5)
        run_asm(cpu, "lw zero, 0(a2)\naddi a1, zero, 1\nebreak", a2=0x100)
        assert cpu.perf.stall_load_use == 0


class TestControlFlow:
    def test_taken_branch_penalty(self, cpu):
        run_asm(cpu, "beq zero, zero, t\nnop\nt:\nebreak")
        assert cpu.perf.stall_branch == 2
        assert cpu.perf.cycles == 1 + 2 + 1

    def test_not_taken_branch_no_penalty(self, cpu):
        run_asm(cpu, "bne zero, zero, t\nnop\nt:\nebreak")
        assert cpu.perf.stall_branch == 0

    def test_jump_penalty(self, cpu):
        run_asm(cpu, "j t\nnop\nt:\nebreak")
        assert cpu.perf.stall_jump == 1
        assert cpu.perf.cycles == 1 + 1 + 1


class TestMisalignment:
    def test_misaligned_load_costs_extra(self, cpu):
        cpu.mem.store(0x100, 4, 0)
        run_asm(cpu, "lw a0, 1(a2)\nebreak", a2=0x100)
        assert cpu.perf.stall_misaligned == 1

    def test_aligned_load_no_extra(self, cpu):
        run_asm(cpu, "lw a0, 0(a2)\nebreak", a2=0x100)
        assert cpu.perf.stall_misaligned == 0

    def test_misaligned_halfword_store(self, cpu):
        run_asm(cpu, "sh a1, 1(a2)\nebreak", a1=5, a2=0x100)
        assert cpu.perf.stall_misaligned == 1


class TestQuantTiming:
    def test_qnt_n_occupies_9(self, cpu):
        cpu.mem.write_i16(0x4000, [0] * 16)
        run_asm(cpu, "pv.qnt.n a0, a1, a2\nebreak", a1=0, a2=0x4000)
        assert cpu.perf.cycles == 9 + 1

    def test_qnt_c_occupies_5(self, cpu):
        cpu.mem.write_i16(0x4000, [0] * 8)
        run_asm(cpu, "pv.qnt.c a0, a1, a2\nebreak", a1=0, a2=0x4000)
        assert cpu.perf.cycles == 5 + 1

    def test_misaligned_threshold_base_stalls(self, cpu):
        cpu.mem.write_i16(0x4000, [0] * 40)
        run_asm(cpu, "pv.qnt.n a0, a1, a2\nebreak", a1=0, a2=0x4001)
        assert cpu.perf.stall_misaligned >= 8  # every tree read split


class TestCustomParams:
    def test_overridable_penalties(self):
        params = TimingParams()
        params.branch_taken_penalty = 5
        cpu = Cpu(isa="xpulpnn", timing=params)
        run_asm(cpu, "beq zero, zero, t\nnop\nt:\nebreak")
        assert cpu.perf.stall_branch == 5

    def test_model_rejects_unknown_class(self):
        model = TimingModel()
        from repro.isa.instruction import InstrSpec

        with pytest.raises(ValueError):
            InstrSpec(mnemonic="x", fmt="R", fixed={}, syntax=(),
                      execute=lambda c, i: None, timing="warp")
