"""Profiling helper tests."""

import pytest

from repro.asm import assemble
from repro.core import Cpu, profile_counters, profile_program


SOURCE = """
    li t0, 10
    li a1, 0x1000
    lp.setup 0, t0, end
    p.lw a2, 4(a1!)
    pv.sdotusp.b a0, a2, a2
end:
    ebreak
"""


class TestProfileProgram:
    def test_basic_report(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        assert report.instructions == 10 * 2 + 4
        assert report.class_cycles["load"] == 10
        assert report.class_cycles["mul"] == 10

    def test_class_share(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        assert 0.25 < report.class_share("load") < 0.6
        assert report.class_share("nonexistent") == 0.0

    def test_top_mnemonics(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        names = dict(report.top_mnemonics)
        assert names["p.lw"] == 10
        assert names["pv.sdotusp.b"] == 10

    def test_setup_hook(self):
        source = "lw a0, 0(a1)\nebreak"
        report = profile_program(
            assemble(source, isa="xpulpnn"),
            setup=lambda cpu: (cpu.mem.store(0x40, 4, 9),
                               cpu.regs.__setitem__(11, 0x40)),
        )
        assert report.class_cycles["load"] == 1

    def test_render(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        text = report.render()
        assert "IPC" in text and "hottest" in text and "stalls" in text

    def test_multicycle_weighting(self):
        source = "pv.qnt.n a0, a1, a2\nebreak"
        report = profile_program(
            assemble(source, isa="xpulpnn"),
            setup=lambda cpu: cpu.mem.write_i16(0x4000, [0] * 16) or
                              cpu.regs.__setitem__(12, 0x4000),
        )
        assert report.class_cycles["qnt_n"] == 9


class TestProfileCounters:
    def test_from_existing_cpu(self):
        cpu = Cpu(isa="xpulpnn")
        cpu.collect_mnemonics = True
        cpu.run_program(assemble("nop\nnop\nebreak", isa="xpulpnn"))
        report = profile_counters(cpu)
        assert report.instructions == 3
        assert dict(report.top_mnemonics)["addi"] == 2
