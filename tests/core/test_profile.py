"""Profiling helper tests."""

import json


from repro.asm import assemble
from repro.core import Cpu, profile_counters, profile_program
from repro.core.perf import PerfCounters


SOURCE = """
    li t0, 10
    li a1, 0x1000
    lp.setup 0, t0, end
    p.lw a2, 4(a1!)
    pv.sdotusp.b a0, a2, a2
end:
    ebreak
"""


class TestProfileProgram:
    def test_basic_report(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        assert report.instructions == 10 * 2 + 4
        assert report.class_cycles["load"] == 10
        assert report.class_cycles["mul"] == 10

    def test_class_share(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        assert 0.25 < report.class_share("load") < 0.6
        assert report.class_share("nonexistent") == 0.0

    def test_top_mnemonics(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        names = dict(report.top_mnemonics)
        assert names["p.lw"] == 10
        assert names["pv.sdotusp.b"] == 10

    def test_setup_hook(self):
        source = "lw a0, 0(a1)\nebreak"
        report = profile_program(
            assemble(source, isa="xpulpnn"),
            setup=lambda cpu: (cpu.mem.store(0x40, 4, 9),
                               cpu.regs.__setitem__(11, 0x40)),
        )
        assert report.class_cycles["load"] == 1

    def test_render(self):
        report = profile_program(assemble(SOURCE, isa="xpulpnn"))
        text = report.render()
        assert "IPC" in text and "hottest" in text and "stalls" in text

    def test_multicycle_weighting(self):
        source = "pv.qnt.n a0, a1, a2\nebreak"
        report = profile_program(
            assemble(source, isa="xpulpnn"),
            setup=lambda cpu: cpu.mem.write_i16(0x4000, [0] * 16) or
                              cpu.regs.__setitem__(12, 0x4000),
        )
        assert report.class_cycles["qnt_n"] == 9


class TestProfileCounters:
    def test_from_existing_cpu(self):
        cpu = Cpu(isa="xpulpnn")
        cpu.collect_mnemonics = True
        cpu.run_program(assemble("nop\nnop\nebreak", isa="xpulpnn"))
        report = profile_counters(cpu)
        assert report.instructions == 3
        assert dict(report.top_mnemonics)["addi"] == 2


def _counters(**kwargs) -> PerfCounters:
    perf = PerfCounters()
    for name, value in kwargs.items():
        setattr(perf, name, value)
    return perf


class TestMerge:
    def test_sums_every_scalar(self):
        a = _counters(cycles=100, instructions=80, stall_load_use=3,
                      stall_tcdm_contention=5, idle_cycles=10,
                      hwloop_backedges=7)
        b = _counters(cycles=50, instructions=40, stall_load_use=1,
                      stall_tcdm_contention=2, idle_cycles=4,
                      hwloop_backedges=3)
        result = a.merge(b)
        assert result is a  # in place, chainable
        assert a.cycles == 150
        assert a.instructions == 120
        assert a.stall_load_use == 4
        assert a.stall_tcdm_contention == 7
        assert a.idle_cycles == 14
        assert a.hwloop_backedges == 10

    def test_merges_class_and_mnemonic_counters(self):
        a = PerfCounters()
        a.by_class.update({"alu": 5, "load": 2})
        a.by_mnemonic.update({"addi": 5})
        b = PerfCounters()
        b.by_class.update({"alu": 3, "mul": 1})
        b.by_mnemonic.update({"addi": 1, "p.lw": 2})
        a.merge(b)
        assert a.by_class == {"alu": 8, "load": 2, "mul": 1}
        assert a.by_mnemonic == {"addi": 6, "p.lw": 2}

    def test_merge_preserves_other(self):
        a = _counters(cycles=10)
        b = _counters(cycles=7, idle_cycles=2)
        a.merge(b)
        assert b.cycles == 7 and b.idle_cycles == 2

    def test_active_cycles_after_merge(self):
        a = _counters(cycles=100, idle_cycles=20)
        a.merge(_counters(cycles=100, idle_cycles=0))
        assert a.active_cycles == 180

    def test_cluster_aggregate_uses_merge(self):
        total = PerfCounters()
        per_core = [_counters(cycles=100 + i, instructions=50)
                    for i in range(4)]
        for perf in per_core:
            total.merge(perf)
        assert total.cycles == sum(p.cycles for p in per_core)
        assert total.instructions == 200


class TestToDict:
    def test_scalars_and_nested_counters(self):
        perf = _counters(cycles=42, instructions=30,
                         stall_tcdm_contention=4, idle_cycles=6)
        perf.by_class.update({"alu": 20, "load": 10})
        perf.by_mnemonic.update({"addi": 20, "p.lw": 10})
        data = perf.to_dict()
        assert data["cycles"] == 42
        assert data["stall_tcdm_contention"] == 4
        assert data["idle_cycles"] == 6
        assert data["by_class"] == {"alu": 20, "load": 10}
        assert data["by_mnemonic"] == {"addi": 20, "p.lw": 10}

    def test_json_serializable(self):
        perf = _counters(cycles=1, instructions=1)
        perf.by_class["alu"] = 1
        round_trip = json.loads(json.dumps(perf.to_dict()))
        assert round_trip["cycles"] == 1
        assert round_trip["by_class"]["alu"] == 1

    def test_covers_every_scalar_field(self):
        data = PerfCounters().to_dict()
        for name in PerfCounters._SCALARS:
            assert name in data
