"""Encode -> memory -> decode -> execute: the binary path end to end."""

import numpy as np

from repro.asm import assemble
from repro.core import Cpu


SOURCE = """
    li t0, 5
    li a0, 0
    lp.setup 0, t0, end
    p.lw a2, 4(a1!)
    pv.sdotusp.b a0, a2, a2
end:
    ebreak
"""


def test_binary_execution_matches_object_execution():
    """Running from the decoded binary must give identical results and
    cycle counts as running the assembled instruction objects."""
    program = assemble(SOURCE, isa="xpulpnn", base=0)

    direct = Cpu(isa="xpulpnn")
    direct.mem.write_i8(0x1000, list(range(1, 21)))
    direct.load_program(program)
    direct.regs[11] = 0x1000
    direct.run()

    binary = Cpu(isa="xpulpnn")
    binary.mem.write_i8(0x1000, list(range(1, 21)))
    binary.mem.write_bytes(0, program.encode())
    binary.load_from_memory(0, program.size)
    binary.regs[11] = 0x1000
    binary.run()

    assert binary.regs[10] == direct.regs[10]
    assert binary.perf.cycles == direct.perf.cycles
    assert binary.perf.instructions == direct.perf.instructions


def test_binary_execution_with_qnt():
    from repro.qnn import random_threshold_table

    source = """
        pv.qnt.n a0, a1, a2
        ebreak
    """
    program = assemble(source, isa="xpulpnn")
    table = random_threshold_table(1, 4, rng=np.random.default_rng(2))

    cpu = Cpu(isa="xpulpnn")
    table.write_to_memory(cpu.mem, 0x4000)
    cpu.mem.write_bytes(0x100, program.encode())
    cpu.load_from_memory(0x100, program.size)
    cpu.regs[11] = 1234
    cpu.regs[12] = 0x4000
    cpu.run()
    expected = table.quantize(np.array([[1234]]))[0, 0]
    assert cpu.regs[10] & 0xF == expected


def test_materialize_then_reload():
    program = assemble("addi a0, zero, 9\nebreak", isa="xpulpnn", base=0x200)
    cpu = Cpu(isa="xpulpnn")
    cpu.load_program(program)
    cpu.materialize(program)
    cpu.load_from_memory(0x200, program.size)
    cpu.run()
    assert cpu.regs[10] == 9
