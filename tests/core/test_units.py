"""Microarchitectural unit models: extended dotp unit, quantization FSM."""

import numpy as np
import pytest

from repro.core.units import DotpUnit, QuantUnit
from repro.errors import ModelError
from repro.isa.simd import simd_dotp
from repro.qnn import random_threshold_table, sorted_to_heap


class TestDotpUnit:
    def test_region_multiplier_counts(self):
        unit = DotpUnit()
        assert unit.multipliers_in(16) == 2
        assert unit.multipliers_in(8) == 4
        assert unit.multipliers_in(4) == 8
        assert unit.multipliers_in(2) == 16

    def test_unknown_region_raises(self):
        unit = DotpUnit(regions=(16, 8))
        with pytest.raises(ModelError):
            unit.dotp(4, 0, 0, True, True)

    @pytest.mark.parametrize("width", [16, 8, 4, 2])
    def test_dotp_matches_isa_semantics(self, width):
        unit = DotpUnit()
        a, b = 0x12345678, 0x9ABCDEF0
        result = unit.dotp(width, a, b, a_signed=False, b_signed=True, acc=77)
        assert result.value == simd_dotp(a, b, width, False, True, acc=77)
        assert result.latency == 1  # single cycle by design (paper §III-B1)

    def test_clock_gating_isolates_regions(self):
        gated = DotpUnit(input_registers=True)
        gated.dotp(4, 1, 1, True, True)
        assert gated.toggles == {16: 0, 8: 0, 4: 1, 2: 0}

    def test_no_gating_toggles_all_regions(self):
        free = DotpUnit(input_registers=False)
        free.dotp(4, 1, 1, True, True)
        assert all(count == 1 for count in free.toggles.values())


class TestQuantUnit:
    def test_pipelined_latencies_match_paper(self):
        unit = QuantUnit(pipelined=True)
        assert unit.latency(4) == 9  # two 4-bit activations
        assert unit.latency(2) == 5  # two 2-bit activations
        assert unit.activations_per_invocation() == 2

    def test_combinatorial_latencies(self):
        unit = QuantUnit(pipelined=False)
        assert unit.latency(4) == 5
        assert unit.latency(2) == 3
        assert unit.activations_per_invocation() == 1

    def test_combinatorial_critical_path_penalty(self):
        assert QuantUnit.COMBINATORIAL_CRITICAL_PATH_FACTOR == pytest.approx(1.9)

    def test_quantize_pair_matches_table(self):
        table = random_threshold_table(2, 4, rng=np.random.default_rng(3))
        image = {}
        for ch in range(2):
            heap = sorted_to_heap(table.thresholds[ch])
            for i, v in enumerate(heap):
                image[32 * ch + 2 * i] = int(v)
        unit = QuantUnit()
        result = unit.quantize_pair(lambda a: image[a], 0, 32, -500, 1200, 4)
        expected = table.quantize(np.array([[-500, 1200]]))[0]
        assert result.codes == (expected[0], expected[1])
        assert result.memory_reads == 8

    def test_quantize_single_requires_combinatorial(self):
        unit = QuantUnit(pipelined=True)
        with pytest.raises(ModelError):
            unit.quantize_single(lambda a: 0, 0, 0, 4)

    def test_address_update_bits(self):
        """Paper: only 6 bits are needed for the in-tree address update."""
        unit = QuantUnit()
        assert unit.address_update_bits(4) <= 6
        assert unit.address_update_bits(2) <= 6
