"""PerfCounters arithmetic: delta/merge/copy edge cases."""

from collections import Counter

from repro.core.perf import PerfCounters


def _sample(**overrides):
    perf = PerfCounters(cycles=100, instructions=80, stall_load_use=5,
                        stall_branch=3, idle_cycles=10, hwloop_backedges=2)
    perf.by_class.update({"alu": 60, "load": 20})
    perf.by_mnemonic.update({"addi": 50, "lw": 20, "add": 10})
    for name, value in overrides.items():
        setattr(perf, name, value)
    return perf


class TestDeltaSince:
    def test_delta_of_empty_counters_is_empty(self):
        delta = PerfCounters().delta_since(PerfCounters())
        assert delta.cycles == 0
        assert delta.instructions == 0
        assert delta.by_class == Counter()
        assert delta.total_stalls == 0

    def test_delta_against_own_copy_is_zero(self):
        perf = _sample()
        delta = perf.delta_since(perf.copy())
        assert delta.cycles == 0
        assert delta.by_class == Counter()
        assert delta.by_mnemonic == Counter()

    def test_delta_tracks_growth(self):
        before = _sample().copy()
        after = _sample(cycles=150, instructions=120)
        after.by_class["alu"] += 30
        delta = after.delta_since(before)
        assert delta.cycles == 50
        assert delta.instructions == 40
        assert delta.by_class == Counter({"alu": 30})

    def test_counter_subtraction_never_goes_negative(self):
        # Counter subtraction drops non-positive entries, so a class that
        # somehow shrank (e.g. counters reset mid-window) reads 0, not -n.
        before = _sample()
        after = PerfCounters(cycles=200)
        delta = after.delta_since(before)
        assert delta.by_class["alu"] == 0
        assert delta.by_mnemonic["addi"] == 0
        assert all(v > 0 for v in delta.by_class.values())

    def test_idle_cycles_delta(self):
        before = _sample()
        after = _sample(cycles=130, idle_cycles=25)
        delta = after.delta_since(before)
        assert delta.idle_cycles == 15
        assert delta.active_cycles == 30 - 15


class TestMerge:
    def test_merge_empty_is_identity(self):
        perf = _sample()
        snapshot = perf.snapshot()
        perf.merge(PerfCounters())
        assert perf.snapshot() == snapshot

    def test_merge_into_empty_copies_everything(self):
        merged = PerfCounters().merge(_sample())
        assert merged.cycles == 100
        assert merged.by_mnemonic["addi"] == 50
        assert merged.hwloop_backedges == 2

    def test_merge_sums_idle_and_stalls(self):
        a = _sample()
        b = _sample(idle_cycles=40, stall_load_use=1)
        a.merge(b)
        assert a.cycles == 200
        assert a.idle_cycles == 50
        assert a.stall_load_use == 6
        assert a.active_cycles == 200 - 50
        assert a.by_class["alu"] == 120

    def test_merge_returns_self(self):
        a = PerfCounters()
        assert a.merge(_sample()) is a


class TestCopy:
    def test_copy_is_deep_for_counters(self):
        perf = _sample()
        clone = perf.copy()
        clone.by_class["alu"] += 1
        clone.by_mnemonic["addi"] += 1
        clone.cycles += 5
        assert perf.by_class["alu"] == 60
        assert perf.by_mnemonic["addi"] == 50
        assert perf.cycles == 100

    def test_copy_of_empty(self):
        clone = PerfCounters().copy()
        assert clone.cycles == 0
        assert clone.by_class == Counter()
        assert clone.ipc == 0.0

    def test_reset_clears_everything(self):
        perf = _sample()
        perf.reset()
        assert perf.snapshot() == PerfCounters().snapshot()
        assert perf.by_mnemonic == Counter()
