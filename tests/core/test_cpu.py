"""CPU execution loop: halting, perf counters, helpers, profiling."""

import pytest

from repro.asm import assemble
from repro.errors import SimError
from tests.conftest import run_asm


class TestExecution:
    def test_runaway_guard(self, cpu):
        program = assemble("loop:\nj loop", isa=cpu.isa.name)
        cpu.load_program(program)
        with pytest.raises(SimError):
            cpu.run(max_instructions=100)

    def test_reset_clears_state(self, cpu):
        run_asm(cpu, "addi a0, zero, 5\nebreak")
        cpu.reset()
        assert cpu.regs[10] == 0
        assert cpu.perf.cycles == 0
        assert cpu.halted is None

    def test_set_args_and_result(self, cpu):
        cpu.set_args(1, 2, 3)
        assert cpu.regs[10] == 1 and cpu.regs[12] == 3
        cpu.regs[10] = 99
        assert cpu.result() == 99

    def test_set_args_limit(self, cpu):
        with pytest.raises(SimError):
            cpu.set_args(*range(9))

    def test_run_program_resets_perf(self, cpu):
        program = assemble("addi a0, a0, 1\nebreak", isa=cpu.isa.name)
        cpu.run_program(program)
        first = cpu.perf.cycles
        cpu.run_program(program)
        assert cpu.perf.cycles == first

    def test_instructions_counted(self, cpu):
        run_asm(cpu, "nop\nnop\nnop\nebreak")
        assert cpu.perf.instructions == 4

    def test_by_mnemonic_optional(self, cpu):
        cpu.collect_mnemonics = True
        run_asm(cpu, "nop\nnop\nebreak")
        assert cpu.perf.by_mnemonic["addi"] == 2

    def test_trace_hook(self, cpu):
        seen = []
        cpu.trace = lambda pc, ins: seen.append((pc, ins.mnemonic))
        run_asm(cpu, "addi a0, zero, 1\nebreak")
        assert seen[0] == (0, "addi")
        assert seen[-1][1] == "ebreak"


class TestProfiling:
    def test_profile_spans_count_cycles(self, cpu):
        program = assemble(
            "addi a0, zero, 1\naddi a1, zero, 2\naddi a2, zero, 3\nebreak",
            isa=cpu.isa.name,
        )
        cpu.load_program(program)
        cpu.profile_spans = [(4, 8)]  # second instruction only
        cpu.run()
        assert cpu.profiled_cycles == 1

    def test_profile_disabled_by_default(self, cpu):
        run_asm(cpu, "nop\nebreak")
        assert cpu.profiled_cycles == 0


class TestMaterialize:
    def test_encoded_program_lands_in_memory(self, cpu):
        program = assemble("addi a0, zero, 7\nebreak", isa=cpu.isa.name)
        cpu.load_program(program)
        cpu.materialize(program)
        blob = cpu.mem.read_bytes(0, program.size)
        assert blob == program.encode()


class TestPerfDelta:
    def test_delta_since(self, cpu):
        run_asm(cpu, "nop\nnop\nebreak")
        snapshot = cpu.perf.copy()
        cpu.reset()
        run_asm(cpu, "nop\nnop\nnop\nnop\nebreak")
        delta = cpu.perf.delta_since(snapshot)
        assert delta.instructions == 2

    def test_ipc(self, cpu):
        run_asm(cpu, "nop\nnop\nebreak")
        assert cpu.perf.ipc == pytest.approx(1.0)

    def test_snapshot_keys(self, cpu):
        run_asm(cpu, "nop\nebreak")
        snap = cpu.perf.snapshot()
        assert snap["instructions"] == 2
        assert "class_alu" in snap
