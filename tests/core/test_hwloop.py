"""Hardware-loop controller and lp.* instruction behaviour."""

import pytest

from repro.core.hwloop import HwLoopController
from repro.errors import SimError
from tests.conftest import run_asm


class TestController:
    def test_redirect_decrements(self):
        hw = HwLoopController()
        hw.configure(0, start=0x10, end=0x20, count=3)
        assert hw.redirect(0x20) == 0x10   # iteration 2
        assert hw.redirect(0x20) == 0x10   # iteration 3
        assert hw.redirect(0x20) is None   # falls through
        assert not hw.active(0)

    def test_redirect_ignores_other_addresses(self):
        hw = HwLoopController()
        hw.configure(0, start=0x10, end=0x20, count=5)
        assert hw.redirect(0x1C) is None
        assert hw.count[0] == 5

    def test_inner_loop_priority(self):
        hw = HwLoopController()
        hw.configure(0, start=0x10, end=0x20, count=2)
        hw.configure(1, start=0x00, end=0x20, count=2)
        # Same end address: L0 wins.
        assert hw.redirect(0x20) == 0x10

    def test_count_zero_means_inactive(self):
        hw = HwLoopController()
        hw.configure(0, start=0x10, end=0x20, count=0)
        assert hw.redirect(0x20) is None

    def test_bad_level_raises(self):
        hw = HwLoopController()
        with pytest.raises(SimError):
            hw.configure(2, count=1)

    def test_negative_count_raises(self):
        hw = HwLoopController()
        with pytest.raises(SimError):
            hw.configure(0, count=-1)

    def test_reset(self):
        hw = HwLoopController()
        hw.configure(0, start=1, end=2, count=3)
        hw.reset()
        assert hw.count[0] == 0 and hw.start[0] == 0


class TestLpInstructions:
    def test_lp_setup_executes_n_times(self, cpu):
        src = """
            li t0, 7
            li a0, 0
            lp.setup 0, t0, end
            addi a0, a0, 2
        end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 14

    def test_lp_setupi(self, cpu):
        src = """
            li a0, 0
            lp.setupi 0, 9, end
            addi a0, a0, 1
        end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 9

    def test_separate_lp_registers(self, cpu):
        src = """
            li t0, 4
            li a0, 0
            lp.count 0, t0
            lp.starti 0, body
            lp.endi 0, end
        body:
            addi a0, a0, 5
        end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 20

    def test_lp_counti(self, cpu):
        src = """
            li a0, 0
            lp.counti 0, 6
            lp.starti 0, body
            lp.endi 0, end
        body:
            addi a0, a0, 1
        end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 6

    def test_nested_loops(self, cpu):
        src = """
            li t0, 3
            li t1, 4
            li a0, 0
            lp.setup 1, t0, outer_end
            lp.setup 0, t1, inner_end
            addi a0, a0, 1
        inner_end:
            addi a0, a0, 100
        outer_end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.regs[10] == 3 * (4 + 100)

    def test_zero_overhead_backedge(self, cpu):
        """The loop body must cost exactly body-cycles x count."""
        src = """
            lp.setupi 0, 10, end
            addi a0, a0, 1
        end:
            ebreak
        """
        run_asm(cpu, src)
        # 1 setup + 10 body + 1 ebreak = 12 cycles, no branch penalties
        assert cpu.perf.cycles == 12
        assert cpu.perf.hwloop_backedges == 9

    def test_multi_instruction_body_cycles(self, cpu):
        src = """
            lp.setupi 0, 5, end
            addi a0, a0, 1
            addi a1, a1, 2
        end:
            ebreak
        """
        run_asm(cpu, src)
        assert cpu.perf.cycles == 1 + 5 * 2 + 1
        assert cpu.regs[10] == 5 and cpu.regs[11] == 10
