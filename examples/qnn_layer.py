#!/usr/bin/env python3
"""Run one quantized convolution layer on both cores (the paper's §IV-B).

Generates the PULP-NN-style kernels for a 4-bit convolution, runs them
instruction-by-instruction on the baseline RI5CY (pack/unpack + software
quantization) and on the XpulpNN-extended core (native nibble SIMD +
``pv.qnt``), verifies both against the golden integer model, and reports
the speedup — the paper's headline 5.3x.

Run:  python examples/qnn_layer.py            (1/8-scale layer, ~30 s)
      REPRO_FULL=1 python examples/qnn_layer.py   (paper layer, minutes)
"""

import numpy as np

from repro.eval import benchmark_geometry
from repro.kernels import ConvConfig, ConvKernel
from repro.physical import NOMINAL, efficiency, model_for
from repro.qnn import (
    conv2d_golden,
    random_activations,
    random_weights,
    thresholds_from_accumulators,
)

BITS = 4
geometry = benchmark_geometry()
print(f"layer: {geometry.describe()}  ({geometry.macs / 1e6:.2f} M MACs, "
      f"{BITS}-bit operands)")

rng = np.random.default_rng(0)
weights = random_weights((geometry.out_ch, geometry.kh, geometry.kw,
                          geometry.in_ch), BITS, rng)
acts = random_activations((geometry.in_h, geometry.in_w, geometry.in_ch),
                          BITS, rng)

# Calibrate the staircase thresholds on the golden accumulators (this is
# what threshold training produces offline).
acc = conv2d_golden(acts, weights, stride=geometry.stride, pad=geometry.pad)
thresholds = thresholds_from_accumulators(acc, BITS)
golden = thresholds.quantize(acc, channel_axis=-1)

results = {}
for label, isa, quant in (
    ("baseline RI5CY (unpack + sw quant)", "ri5cy", "sw"),
    ("extended core (XpulpNN + pv.qnt)", "xpulpnn", "hw"),
):
    kernel = ConvKernel(ConvConfig(geometry=geometry, bits=BITS, isa=isa,
                                   quant=quant))
    print(f"\nrunning {label} ...")
    run = kernel.run(weights, acts, thresholds=thresholds)
    assert np.array_equal(run.output, golden), "kernel diverged from golden!"
    power = model_for(isa).evaluate(
        run.perf, sub_byte_bits=BITS if isa == "xpulpnn" else 8,
        workload_class=f"matmul{BITS}").soc_total_w
    point = efficiency(label, geometry.macs, run.cycles, power)
    results[isa] = point
    print(f"  cycles        : {run.cycles:,}")
    print(f"  MAC/cycle     : {point.macs_per_cycle:.2f}")
    print(f"  runtime @250MHz: {point.runtime_s * 1e3:.2f} ms")
    print(f"  SoC power     : {power * 1e3:.2f} mW")
    print(f"  efficiency    : {point.gmacs_per_s_per_w:.1f} GMAC/s/W")
    print("  output verified against the golden integer model: OK")

speedup = results["xpulpnn"].speedup_over(results["ri5cy"])
gain = results["xpulpnn"].efficiency_ratio(results["ri5cy"])
print(f"\n=> XpulpNN speedup: {speedup:.2f}x cycles (paper: 5.3x), "
      f"{gain:.2f}x energy efficiency (paper: ~5.5x)")
