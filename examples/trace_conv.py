#!/usr/bin/env python3
"""Trace and profile one quantized convolution layer.

Runs the paper's 4-bit convolution (hardware `pv.qnt` requantization) on
the ISS twice: once under a `MetricsTracer` for the per-region cycle
table — the Fig. 6 quantization-share measurement — and once under an
`EventTracer` to export a Perfetto timeline of the marked kernel phases
(`im2col`, `dotprod`, `quant`).

Run:  python examples/trace_conv.py
Then open conv4_trace.json at https://ui.perfetto.dev
"""

import numpy as np

from repro.kernels import ConvConfig, ConvKernel
from repro.qnn import (
    ConvGeometry,
    conv2d_golden,
    random_activations,
    random_weights,
    thresholds_from_accumulators,
)
from repro.target import build_machine
from repro.trace import EventTracer, MetricsTracer, write_chrome_trace

BITS = 4
GEOMETRY = ConvGeometry(in_h=8, in_w=8, in_ch=32, out_ch=16,
                        kh=3, kw=3, stride=1, pad=1)

# --- workload -----------------------------------------------------------

rng = np.random.default_rng(7)
weights = random_weights(
    (GEOMETRY.out_ch, GEOMETRY.kh, GEOMETRY.kw, GEOMETRY.in_ch), BITS, rng)
acts = random_activations(
    (GEOMETRY.in_h, GEOMETRY.in_w, GEOMETRY.in_ch), BITS, rng)
acc = conv2d_golden(acts, weights, stride=GEOMETRY.stride, pad=GEOMETRY.pad)
thresholds = thresholds_from_accumulators(acc, BITS)

kernel = ConvKernel(ConvConfig(geometry=GEOMETRY, bits=BITS,
                               isa="xpulpnn", quant="hw"))


def fresh_cpu():
    # The machine factory sizes memory to max(request, the target's L2).
    return build_machine("xpulpnn", mem_bytes=kernel.layout.end + 4096).cpu


# --- pass 1: per-region metrics -----------------------------------------

cpu = fresh_cpu()
cpu.tracer = MetricsTracer(program=kernel.program)
run = kernel.run(weights, acts, thresholds=thresholds, cpu=cpu)
expected = thresholds.quantize(acc, channel_axis=-1)
assert np.array_equal(run.output, expected), "kernel must match golden model"

print(f"4-bit conv, {GEOMETRY.describe()}")
print(f"{run.cycles:,} cycles, {run.instructions:,} instructions\n")
print(cpu.tracer.registry.render(title="Per-region attribution"))
quant_share = cpu.tracer.registry.share("quant")
print(f"\npv.qnt requantization share: {quant_share:.1%} "
      "(the Fig. 6 measurement)")

# --- pass 2: event timeline for Perfetto --------------------------------

cpu = fresh_cpu()
cpu.tracer = EventTracer(program=kernel.program)
kernel.run(weights, acts, thresholds=thresholds, cpu=cpu)
payload = write_chrome_trace(cpu.tracer, "conv4_trace.json",
                             title="conv 4-bit")
print(f"\nconv4_trace.json: {len(payload['traceEvents'])} events, "
      f"{len(cpu.tracer.region_spans)} region spans")
print("open it at https://ui.perfetto.dev")
