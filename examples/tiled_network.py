#!/usr/bin/env python3
"""Compile and run a network that cannot fit in one shot.

The deployment compiler (`repro.compiler`, docs/DEPLOYMENT.md) lowers a
`QnnNetwork` into a tiled, double-buffered plan: tile shapes are chosen
per layer to fit the 128 kB TCDM while maximizing MACs per DMA byte, a
static planner places ping/pong buffers, and the executor overlaps
L2->TCDM transfers with the 8-core kernels — verifying every tile
bit-exactly against the golden model.

This example runs the `over-l2` reference network, whose 4112x128
classifier holds 514 kB of weights — more than the whole 512 kB L2 —
then shows the deployer routing the same network automatically.

Run:  python examples/tiled_network.py
"""

import numpy as np

from repro.compiler import NetworkCompiler, PlanExecutor, build_network
from repro.qnn import NetworkDeployer

built = build_network("over-l2")
print(f"network: {built.description}\n")

# -- explicit pipeline: compile, inspect the plan, execute ---------------

compiled = NetworkCompiler(
    built.network, built.input_shape, input_bits=built.input_bits,
    num_cores=8, tcdm_budget=built.tcdm_budget,
).compile()
print(compiled.render())

result = PlanExecutor(compiled).run(built.input)
print()
print(result.render())
print(f"\nDMA hidden under compute: {result.overlap_pct:.0%} "
      f"(acceptance floor is 40%)")
assert result.verified

# -- the same network through the deployer: routing is automatic ---------

built = build_network("over-l2")
deployed = NetworkDeployer(
    built.network, built.input_shape, input_bits=built.input_bits,
    target="xpulpnn-cluster8",
).run(built.input)
assert deployed.verified

tiled = [layer for layer in deployed.layers if layer.tiles > 1]
print(f"\ndeployer routed {len(tiled)} over-budget layer(s) "
      f"through the compiler:")
for layer in tiled:
    print(f"  {layer.name}: {layer.tiles} tiles, {layer.cycles:,} cycles")

assert np.array_equal(result.output.ravel(),
                      np.asarray(deployed.output).ravel())
print("\ncompiled output == deployed output: bit-exact")
