# Nibble dot-product + hardware quantization, XpulpNN style.
#
# The listing the static verifier ships as its clean reference:
#   PYTHONPATH=src python -m repro lint examples/nibble_dotp.s
#
# a0 -> packed 4-bit weights (signed), a1 -> packed 4-bit activations
# (unsigned), a2 -> pv.qnt.n threshold trees (16-bit aligned, in data
# memory), result code in a0.

    li      t0, 4                  # 4 words = 32 nibble pairs
    li      a4, 0                  # accumulator
    lp.setup 0, t0, mac_end        # zero-overhead hardware loop
    p.lw    a5, 4(a0!)             # weights word, post-increment
    p.lw    a6, 4(a1!)             # activations word
    pv.sdotusp.n a4, a6, a5        # acc += act (u4) . weight (s4)
mac_end:
    pv.qnt.n a0, a4, a2            # staircase-quantize two 16-bit halves
    andi    a0, a0, 0xf            # keep the first activation's code
    ebreak
