#!/usr/bin/env python3
"""Deploy a whole quantized network with one API call.

The :class:`NetworkDeployer` maps every layer of a :class:`QnnNetwork`
onto generated XpulpNN kernels, checks the PULPissimo memory budget,
bridges precision changes between layers, verifies each layer bit-exactly
against the golden model, and accounts cycles + energy — the workflow a
downstream user actually wants.

Run:  python examples/network_deployment.py
"""

import numpy as np

from repro.qnn import (
    MaxPool,
    NetworkDeployer,
    QnnNetwork,
    QuantizedConv,
    QuantizedLinear,
    random_activations,
    random_weights,
)

rng = np.random.default_rng(2020)

# A small mixed-precision CNN: 4-bit features, 2-bit mid layer, 8-bit head.
network = QnnNetwork(name="edge-cnn")
network.add(QuantizedConv(
    weights=random_weights((16, 3, 3, 16), 4, rng),
    weight_bits=4, in_bits=4, out_bits=4, pad=1, name="conv1_4b"))
network.add(MaxPool(size=2))
network.add(QuantizedConv(
    weights=random_weights((16, 3, 3, 16), 2, rng),
    weight_bits=2, in_bits=2, out_bits=2, pad=1, name="conv2_2b"))
network.add(MaxPool(size=2))
network.add(QuantizedLinear(
    weights=random_weights((10, 16 * 4 * 4), 4, rng),
    weight_bits=4, in_bits=4, out_bits=8, name="classifier"))

print(network.describe(), "\n")

x = random_activations((16, 16, 16), 4, rng)
deployer = NetworkDeployer(network, input_shape=(16, 16, 16), input_bits=4)
result = deployer.run(x)

print(result.render())
print(f"\nprediction: class {int(np.argmax(result.output))}")

# The same network on the baseline target shows the paper's gap end to end.
baseline = NetworkDeployer(network, input_shape=(16, 16, 16), input_bits=4,
                           target="ri5cy").run(x)
assert np.array_equal(baseline.output, result.output)
print(f"\nbaseline RI5CY: {baseline.total_cycles:,} cycles "
      f"({baseline.latency_ms:.2f} ms) -> network-level speedup "
      f"{baseline.total_cycles / result.total_cycles:.2f}x")
