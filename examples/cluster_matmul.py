#!/usr/bin/env python3
"""Parallel matmul on the 8-core PULP cluster.

The paper's kernels run on one extended-RI5CY core; this example runs
the same 4-bit MatMul microkernel on a modeled 8-core cluster
(`repro.cluster`): every core executes one SPMD binary, shards output
channels by its `mhartid`, accumulates with `pv.sdotusp.n`, quantizes
with `pv.qnt.n`, and meets the others at the event-unit barrier.  The
cluster DMA stages inputs from L2 into the shared banked TCDM first.

The result is bit-identical to the single-core kernel at ~7x the speed —
near-linear scaling because the kernels are MAC-bound and the banked
TCDM (2 banks per core) keeps contention in the low percent.

Run:  python examples/cluster_matmul.py
"""

import numpy as np

from repro.kernels import (
    MatmulConfig,
    MatmulKernel,
    ParallelMatmulConfig,
    ParallelMatmulKernel,
)
from repro.physical import cluster_model_for
from repro.qnn import random_threshold_table

K, CO, BITS = 256, 64, 4

# --- workload: 64 four-bit filters over a 256-deep reduction ------------

rng = np.random.default_rng(42)
weights = rng.integers(-8, 8, (CO, K)).astype(np.int32)
x0 = rng.integers(0, 16, K).astype(np.int32)
x1 = rng.integers(0, 16, K).astype(np.int32)
table = random_threshold_table(CO, BITS, spread=600, rng=rng)

# --- single core (the paper's setting) ----------------------------------

single = MatmulKernel(MatmulConfig(
    reduction=K, out_ch=CO, bits=BITS, isa="xpulpnn", quant="hw"))
ref = single.run(weights, x0, x1, thresholds=table)
print(f"1 core : {ref.cycles:>7,} cycles")

# --- the same kernel across the cluster ---------------------------------

power_model = cluster_model_for("xpulpnn")
for cores in (2, 4, 8):
    kern = ParallelMatmulKernel(ParallelMatmulConfig(
        reduction=K, out_ch=CO, bits=BITS, num_cores=cores, quant="hw"))
    run = kern.run(weights, x0, x1, thresholds=table)
    assert np.array_equal(run.output, ref.output), "outputs must match"

    speedup = ref.cycles / run.cycles
    power = power_model.evaluate(run.run.per_core, sub_byte_bits=BITS)
    print(f"{cores} cores: {run.cycles:>7,} cycles   "
          f"{speedup:.2f}x  ({speedup / cores:.0%} efficiency)   "
          f"contention {run.run.contention_share:.2%}   "
          f"{power.cluster_total_mw:.1f} mW")

print("\nEvery core count produced the exact same 4-bit outputs; the "
      "8-core run also paid\nfor DMA staging "
      f"({run.dma_in_cycles + run.dma_out_cycles} cycles) and one "
      f"barrier ({max(p.idle_cycles for p in run.run.per_core)} peak "
      "idle cycles).")
