#!/usr/bin/env python3
"""Batch simulation through the serving layer: sweeps, shards, cache.

The simulator is cycle-exact and deterministic, so every result is a
pure function of (machine, code, config).  `repro.serve` turns that into
a batch service: typed jobs flow through one `SimulationService` that

* dedupes identical requests within a batch,
* answers repeats from a content-addressed on-disk cache bit-identically,
* shards cache misses across crash-isolated worker processes, and
* returns failures as data — one bad point never kills a sweep.

This example runs the cluster-scaling sweep three ways (cold through a
4-worker pool, warm from the cache, inline) and shows failure isolation
with a worker that dies mid-job.

Run:  python examples/batch_sweep.py
"""

import tempfile

from repro.serve import (
    ResultCache,
    ScalingJob,
    SelfTestJob,
    SimulationService,
    cartesian_sweep,
)

cache_dir = tempfile.mkdtemp(prefix="repro-cache-")

# --- a cartesian sweep: 12 (bits, cores) MatMul scaling points ----------

sweep = cartesian_sweep(
    "scaling",
    {"bits": [8, 4, 2], "cores": [1, 2, 4, 8]},
    base={"out_ch": 64, "reduction": 256},
    label="scaling-demo",
)
print(f"expanded {len(sweep.points)} points; first job on the wire:")
print(f"  {sweep.points[0].canonical()}")

# --- cold run: shard across 4 worker processes --------------------------

service = SimulationService(cache=ResultCache(cache_dir), workers=4,
                            timeout=300.0)
cold = service.sweep(sweep)
print(f"\ncold: {cold.stats['executed']} executed, "
      f"{cold.stats['cached']} cached, wall {cold.wall_s:.2f}s")

# --- warm run: same sweep again is 100% cache hits, bit-identical -------

warm = service.sweep(sweep)
assert warm.cached_count == len(sweep.points)
assert [r.payload for r in warm.results] == \
    [r.payload for r in cold.results]
print(f"warm: 100% cache hits, wall {warm.wall_s:.3f}s "
      f"({cold.wall_s / warm.wall_s:.0f}x)")

for outcome in warm.results[:3]:
    p = outcome.payload
    print(f"  {p['bits']}-bit x{p['cores']}: {p['cycles']:,} cycles "
          f"[{'cache' if outcome.cached else 'run'}]")

# --- failure isolation: a dying worker is a typed result ----------------

report = SimulationService(workers=2).run([
    SelfTestJob(mode="ok", value=1),
    SelfTestJob(mode="crash", value=13),   # os._exit(13) mid-job
    ScalingJob(bits=4, cores=2, out_ch=32, reduction=64),
], label="isolation-demo")
print(f"\nisolation: {len(report.failures)} failure out of "
      f"{len(report.results)} points")
for outcome in report.results:
    state = "ok    " if outcome.ok else outcome.error_type
    print(f"  {state}  {outcome.job.kind}")
assert [r.ok for r in report.results] == [True, False, True]
assert report.failures[0].error_type == "WorkerCrash"

print("\nsame sweep from the shell:")
print("  python -m repro sweep scaling bits=8,4,2 cores=1,2,4,8 "
      "--workers 4")
