#!/usr/bin/env python3
"""From float weights to a sub-byte layer running on simulated silicon.

The complete deployment workflow the paper's software stack assumes:

1. start from a float convolution (as a training framework would leave it);
2. quantize weights symmetrically to 4-bit, activations to unsigned 4-bit;
3. calibrate the staircase thresholds on the integer accumulator
   distribution (what threshold training produces offline);
4. run the layer on the XpulpNN core and compare against (a) the golden
   integer model — must be bit-exact — and (b) the float reference —
   bounded quantization error.

Run:  python examples/quantization_workflow.py
"""

import numpy as np

from repro.core import profile_counters
from repro.core.cpu import Cpu
from repro.kernels import ConvConfig, ConvKernel
from repro.qnn import (
    ConvGeometry,
    conv2d_golden,
    quantize_uniform,
    thresholds_from_accumulators,
)

rng = np.random.default_rng(123)
H = W = 8
CI, CO = 16, 8
BITS = 4

# -- 1. the "trained" float layer -----------------------------------------
w_float = rng.normal(0, 0.4, (CO, 3, 3, CI))
x_float = np.abs(rng.normal(0, 0.8, (H, W, CI)))   # post-ReLU activations

# -- 2. symmetric uniform quantization -------------------------------------
w_q, w_params = quantize_uniform(w_float, BITS, signed=True)
x_q, x_params = quantize_uniform(x_float, BITS, signed=False)
print(f"weight scale: {w_params.scale:.4f}  "
      f"(int range [{w_q.min()}, {w_q.max()}])")
print(f"act scale   : {x_params.scale:.4f}  "
      f"(int range [{x_q.min()}, {x_q.max()}])")

# -- 3. threshold calibration ----------------------------------------------
acc = conv2d_golden(x_q, w_q, stride=1, pad=1)
print(f"accumulators: [{acc.min()}, {acc.max()}] (must fit int16 for pv.qnt)")
thresholds = thresholds_from_accumulators(acc, BITS)

# -- 4. run on the simulated core -------------------------------------------
geometry = ConvGeometry(H, W, CI, CO, 3, 3, 1, 1)
kernel = ConvKernel(ConvConfig(geometry=geometry, bits=BITS, quant="hw"))
cpu = Cpu(isa="xpulpnn")
cpu.collect_mnemonics = True
run = kernel.run(w_q, x_q, thresholds=thresholds, cpu=cpu)

golden_levels = thresholds.quantize(acc, channel_axis=-1)
assert np.array_equal(run.output, golden_levels), "ISS diverged from golden!"
print("\nISS output bit-exact against the golden integer model: OK")

# quantization error against the float reference, at matching points:
# dequantize level -> accumulator midpoint -> float via the two scales.
float_ref = conv2d_golden(x_float, w_float, stride=1, pad=1)
acc_scale = w_params.scale * x_params.scale
# reconstruct each level as the mean accumulator within the staircase step
recon = np.zeros_like(acc, dtype=np.float64)
for c in range(CO):
    edges = thresholds.thresholds[c].astype(np.float64)
    centers = np.concatenate([
        [edges[0] - (edges[1] - edges[0]) / 2],
        (edges[:-1] + edges[1:]) / 2,
        [edges[-1] + (edges[-1] - edges[-2]) / 2],
    ])
    recon[:, :, c] = centers[golden_levels[:, :, c]]
rel_err = np.abs(recon * acc_scale - float_ref).mean() / np.abs(float_ref).mean()
print(f"mean relative error vs float reference: {100 * rel_err:.1f}% "
      f"(4-bit staircase)")

# -- profile where the cycles went -----------------------------------------
print("\nexecution profile:")
print(profile_counters(cpu, top=5).render())
