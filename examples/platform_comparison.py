#!/usr/bin/env python3
"""Reproduce the paper's platform comparison (Figs 8 and 9) in one run.

Simulates the convolution kernels on both RISC-V cores, evaluates the
CMSIS-NN cost model for the STM32 MCUs, and prints the cycle and
energy-efficiency grids with the paper's headline ratios.

Run:  python examples/platform_comparison.py
      REPRO_FULL=1 python examples/platform_comparison.py   (paper layer)
"""

from repro.eval import benchmark_geometry, fig8, fig9

geometry = benchmark_geometry()
print(f"workload: convolution {geometry.describe()}\n")

result8 = fig8.run(geometry)
print(fig8.render(result8))
print()
result9 = fig9.run(geometry)
print(fig9.render(result9))

print("\nsummary vs paper:")
print(f"  4-bit speedup vs RI5CY : {result8.speedup_vs_ri5cy[4]:.2f}x (paper 5.3x)")
print(f"  2-bit speedup vs RI5CY : {result8.speedup_vs_ri5cy[2]:.2f}x (paper 8.9x)")
print(f"  2-bit eff. vs STM32L4  : {result9.gain_vs_stm32_2bit['STM32L4']:.0f}x (paper 103x)")
print(f"  2-bit eff. vs STM32H7  : {result9.gain_vs_stm32_2bit['STM32H7']:.0f}x (paper 354x)")
print(f"  peak efficiency        : {result9.peak_gmacs_w:.0f} GMAC/s/W (paper 279)")
