#!/usr/bin/env python3
"""Static verification and race detection from the Python API.

Three stops:

1. lint the clean reference listing (``examples/nibble_dotp.s``) — zero
   findings;
2. lint a deliberately broken variant and read the diagnostics the
   checkers produce;
3. run the 2-core parallel MatMul under the dynamic TCDM race detector
   (the event-unit barrier is the only happens-before edge on the
   cluster).

Run:  python examples/static_analysis.py
CLI equivalents:
      python -m repro lint examples/nibble_dotp.s
      python -m repro lint --kernels
      python -m repro lint --race matmul --cores 2
"""

from pathlib import Path

from repro.analysis import lint_program, run_race_check
from repro.asm import Assembler

EXAMPLES = Path(__file__).resolve().parent

# --- 1. the clean reference listing -------------------------------------

source = (EXAMPLES / "nibble_dotp.s").read_text()
program = Assembler(isa="xpulpnn").assemble(source)
report = lint_program(program, name="nibble_dotp.s")
print("== clean listing ==")
print(report.render())
assert report.ok

# --- 2. a broken variant: three seeded defects --------------------------
#
#   * t1 is read before any path writes it (undef-register);
#   * the nibble accumulator is consumed by a byte op (simd-format);
#   * the store lands in an unmapped hole (addr-range).

BROKEN = """
    li      t0, 0x44332211
    pv.add.n t2, t0, t1
    pv.add.b t3, t2, t0
    li      t4, 0x08000000
    sw      t3, 0(t4)
    ebreak
"""
report = lint_program(Assembler(isa="xpulpnn").assemble(BROKEN),
                      name="broken.s")
print("\n== seeded defects ==")
print(report.render())
assert not report.ok
assert {f.checker for f in report.findings} == {
    "undef-register", "simd-format", "addr-range"}

# --- 3. dynamic race detection on the cluster ---------------------------

race_report = run_race_check("matmul", cores=2)
print("\n== race detector ==")
print(race_report.render())
assert race_report.ok

print("\nall checks behaved as expected")
