#!/usr/bin/env python3
"""End-to-end mixed-precision CNN inference on the simulated MCU.

Builds a small CNN of the kind the paper's introduction motivates
(sensor-scale classification at the extreme edge), quantized per layer —
4-bit feature extraction, 2-bit middle layer, 8-bit classifier — and runs
every layer as a generated kernel on the XpulpNN core, chaining outputs
through simulated memory.  Each layer is verified against the golden
integer model; the script reports the per-layer and total cycle/energy
budget.

Run:  python examples/mixed_precision_cnn.py
"""

import numpy as np

from repro.kernels import (
    ConvConfig,
    ConvKernel,
    LinearConfig,
    LinearKernel,
    PoolConfig,
    PoolKernel,
)
from repro.physical import NOMINAL, model_for
from repro.qnn import (
    ConvGeometry,
    conv2d_golden,
    maxpool_golden,
    random_activations,
    random_weights,
    requantize_shift,
    thresholds_from_accumulators,
)

rng = np.random.default_rng(7)
H = W = 16
C0, C1, C2, CLASSES = 16, 16, 16, 8

print("mixed-precision CNN on the XpulpNN core")
print(f"input: {H}x{W}x{C0} @ 4-bit\n")

x = random_activations((H, W, C0), 4, rng)
total_cycles = 0
total_energy_uj = 0.0
report = []


def account(name, run, bits, workload="matmul4"):
    global total_cycles, total_energy_uj
    power_w = model_for("xpulpnn").evaluate(
        run.perf, sub_byte_bits=bits, workload_class=workload).soc_total_w
    energy_uj = run.cycles / NOMINAL.freq_hz * power_w * 1e6
    total_cycles += run.cycles
    total_energy_uj += energy_uj
    report.append((name, run.cycles, energy_uj))


# -- layer 1: 4-bit conv 3x3, staircase requantization --------------------
w1 = random_weights((C1, 3, 3, C0), 4, rng)
acc1 = conv2d_golden(x, w1, stride=1, pad=1)
thr1 = thresholds_from_accumulators(acc1, 4)
g1 = ConvGeometry(H, W, C0, C1, 3, 3, 1, 1)
run1 = ConvKernel(ConvConfig(geometry=g1, bits=4, quant="hw")).run(
    w1, x, thresholds=thr1)
assert np.array_equal(run1.output, thr1.quantize(acc1)), "conv1 mismatch"
account("conv1 3x3x16->16, 4-bit + pv.qnt.n", run1, 4, "matmul4")

# -- layer 2: 2x2 max pooling (4-bit SIMD) ---------------------------------
run2 = PoolKernel(PoolConfig(H, W, C1, bits=4, op="max")).run(run1.output)
assert np.array_equal(run2.output, maxpool_golden(run1.output, 2))
account("maxpool 2x2, pv.maxu.n", run2, 4, "matmul4")

# -- layer 3: 2-bit conv 3x3 (drop 2 LSBs to enter the 2-bit domain) ------
x3 = (run2.output >> 2).astype(np.int32)
w3 = random_weights((C2, 3, 3, C1), 2, rng)
acc3 = conv2d_golden(x3, w3, stride=1, pad=1)
thr3 = thresholds_from_accumulators(acc3, 2)
g3 = ConvGeometry(H // 2, W // 2, C1, C2, 3, 3, 1, 1)
run3 = ConvKernel(ConvConfig(geometry=g3, bits=2, quant="hw")).run(
    w3, x3, thresholds=thr3)
assert np.array_equal(run3.output, thr3.quantize(acc3)), "conv2 mismatch"
account("conv2 3x3x16->16, 2-bit + pv.qnt.c", run3, 2, "matmul2")

# -- layer 4: global pooling + 8-bit classifier ----------------------------
run4 = PoolKernel(PoolConfig(H // 2, W // 2, C2, bits=2, op="max")).run(run3.output)
account("maxpool 2x2, pv.maxu.c", run4, 2, "matmul2")

features = run4.output.reshape(-1).astype(np.int32)  # 4x4x16 2-bit levels
wf = random_weights((CLASSES, features.size), 8, rng)
runf = LinearKernel(LinearConfig(features.size, CLASSES, 8)).run(
    wf, features, shift=4)
expected = requantize_shift(wf.astype(np.int64) @ features, 4, 8, signed=False)
assert np.array_equal(runf.output, expected), "classifier mismatch"
account(f"linear {features.size}->{CLASSES}, 8-bit", runf, 8, "matmul8")

# -- report ----------------------------------------------------------------
print(f"{'layer':<40s} {'cycles':>10s} {'energy [uJ]':>12s}")
print("-" * 64)
for name, cycles, energy in report:
    print(f"{name:<40s} {cycles:>10,} {energy:>12.3f}")
print("-" * 64)
ms = total_cycles / NOMINAL.freq_hz * 1e3
print(f"{'total':<40s} {total_cycles:>10,} {total_energy_uj:>12.3f}")
print(f"\ninference latency @ 250 MHz: {ms:.2f} ms, "
      f"energy: {total_energy_uj:.1f} uJ")
print(f"prediction: class {int(np.argmax(runf.output))}")
print("\nevery layer verified bit-exact against the golden integer model.")
