#!/usr/bin/env python3
"""Design-space exploration: staged static->simulated search + Pareto.

`repro.explore` re-derives the paper's machine choices from
measurements.  A declarative `SearchSpace` (cores x TCDM x L2 x
(bits, quant) points) expands into concrete TargetSpec variants; the
static cost model prices every point with certain [lo, hi] cycle
bounds and prunes configurations that provably cannot reach the
frontier; survivors are simulated cycle-exactly through the serving
layer; and the Pareto frontier over (cycles, energy, area, bits)
names the winning configurations.

This example runs the CI space both ways — exhaustive and staged —
to show the pruning-soundness contract (identical frontiers, fewer
simulations), then prints the paper-choice derivations.

Run:  python examples/design_space.py
"""

from repro.explore import DesignSpaceExplorer, named_space
from repro.serve import SimulationService

space = named_space("ci")
print(f"space '{space.name}': {space.size} candidates "
      f"(cores {space.cores}, tcdm {space.tcdm_kb} kB, "
      f"points {space.points})")

# one service -> one in-memory dedupe scope + one cache for both runs
service = SimulationService()

# --- exhaustive: simulate every feasible candidate ----------------------

full = DesignSpaceExplorer(space, service=service, prune=False).run()
print(f"\nexhaustive: {full.stats()['simulated']} simulated, "
      f"frontier = {sorted(full.frontier_labels())}")

# --- staged: static bounds first, prune the provably-dominated ----------

staged = DesignSpaceExplorer(space, service=service, prune=True).run(
    verify=True)
stats = staged.stats()
print(f"staged:     {stats['simulated']} simulated "
      f"({stats['pruned']} pruned statically, "
      f"prune ratio {stats['prune_ratio']:.0%})")

# the contract: pruning never changes the frontier
assert sorted(staged.frontier_labels()) == sorted(full.frontier_labels())
print("frontiers identical: pruning cost zero frontier points")

# verification re-ran every frontier point cached and uncached
assert staged.verification["ok"]
print(f"verified {len(staged.verification['points'])} frontier points "
      "bit-identical (warm cache vs fresh service)")

# --- the paper's design point, and why --------------------------------

assert "c8-t64k-l512k-4b-hw" in staged.frontier_labels()
d = staged.derivations
print(f"\nwhy 8 cores:  {d['cores']['speedup']:.2f}x over "
      f"{d['cores']['baseline_cores']} cores "
      f"({d['cores']['parallel_efficiency']:.0%} efficiency)")
print(f"why 4-bit:    {d['bits']['vs_8bit_speedup']:.2f}x over 8-bit")
print(f"why pv.qnt:   software staircase costs "
      f"{d['quant']['sw_over_hw_cycles']:.2f}x more cycles")
print(f"why 64 kB:    {d['memory']['statement']}")

print("\nfull report from the shell:")
print("  python -m repro explore --space paper --workers 4 --report r.json")
