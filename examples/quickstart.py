#!/usr/bin/env python3
"""Quickstart: assemble and run XpulpNN code on the simulated core.

Covers the three layers of the library in ~60 lines:

1. write assembly using the XpulpNN extensions (hardware loops,
   post-increment loads, sub-byte SIMD dot products, ``pv.qnt``);
2. run it on the cycle-approximate extended-RI5CY model;
3. read results and performance counters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cpu, assemble, disassemble_program
from repro.qnn import pack_words, random_threshold_table

# --- 1. a tiny kernel: dot product of 32 nibble pairs, then quantize ----
#
# a0 -> packed 4-bit weights (signed), a1 -> packed 4-bit activations
# (unsigned), a2 -> threshold tree, returns the 4-bit activation in a0.

SOURCE = """
    li      t0, 4                  # 4 words = 32 nibbles
    li      a4, 0                  # accumulator
    lp.setup 0, t0, mac_end        # zero-overhead hardware loop
    p.lw    a5, 4(a0!)             # weights word, post-increment
    p.lw    a6, 4(a1!)             # activations word
    pv.sdotusp.n a4, a6, a5        # acc += act (u4) . weight (s4)
mac_end:
    pv.qnt.n a0, a4, a2            # staircase-quantize two 16-bit halves
    andi    a0, a0, 0xf            # keep the first activation's code
    ebreak
"""

program = assemble(SOURCE, isa="xpulpnn")
print("== disassembly ==")
print(disassemble_program(program))

# --- 2. place data and run ----------------------------------------------

rng = np.random.default_rng(42)
weights = rng.integers(-8, 8, 32)
acts = rng.integers(0, 16, 32)
table = random_threshold_table(channels=1, bits=4, rng=rng)

cpu = Cpu(isa="xpulpnn")
WEIGHTS, ACTS, THRESHOLDS = 0x1000, 0x1100, 0x1200
cpu.mem.write_words(WEIGHTS, pack_words(weights, 4, signed=True))
cpu.mem.write_words(ACTS, pack_words(acts, 4, signed=False))
table.write_to_memory(cpu.mem, THRESHOLDS)

cpu.load_program(program)
cpu.set_args(WEIGHTS, ACTS, THRESHOLDS)
perf = cpu.run()

# --- 3. check against the golden model -----------------------------------

acc = int(weights @ acts)
expected = table.quantize(np.array([[acc]]))[0, 0]
print("\n== result ==")
print(f"dot product      : {acc}")
print(f"quantized (hw)   : {cpu.result()}  (golden: {expected})")
assert cpu.result() == expected

print("\n== performance counters ==")
print(f"instructions     : {perf.instructions}")
print(f"cycles           : {perf.cycles}")
print(f"IPC              : {perf.ipc:.2f}")
print(f"hw-loop backedges: {perf.hwloop_backedges}")
print("\n32 MACs + staircase quantization in "
      f"{perf.cycles} cycles — the 8-bit baseline would need 4x the dot "
      "products plus ~18 cycles of software quantization.")
