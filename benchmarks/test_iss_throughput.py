"""Simulator throughput benchmarks (host-side performance, not a paper
figure): how many simulated instructions per second the ISS sustains on
each kernel class.  Useful when sizing REPRO_FULL runs."""

import numpy as np
import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu

from conftest import record


def _loop_program(body_ops, iterations):
    b = KernelBuilder(isa="xpulpnn")
    b.li("t0", iterations)
    b.li("a1", 0x1000)
    b.li("a2", 0x2000)
    with b.hardware_loop(0, "t0"):
        body_ops(b)
    b.ebreak()
    return b.build()


def test_benchmark_alu_throughput(benchmark):
    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")

    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.instructions > 2000


def test_benchmark_simd_throughput(benchmark):
    def body(b):
        b.emit("pv.sdotusp.n", "a3", "a4", "a5")

    program = _loop_program(body, 2000)
    cpu = Cpu(isa="xpulpnn")
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["mul"] >= 2000


def test_benchmark_memory_throughput(benchmark):
    def body(b):
        b.emit("p.lw", "a3", 4, "a1", inc=True)
        b.emit("p.sw", "a3", 4, "a2", inc=True)
        b.emit("addi", "a1", "a1", -4)
        b.emit("addi", "a2", "a2", -4)

    program = _loop_program(body, 1000)
    cpu = Cpu(isa="xpulpnn")
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["load"] >= 1000


def test_benchmark_qnt_throughput(benchmark):
    cpu = Cpu(isa="xpulpnn")
    cpu.mem.write_i16(0x3000, list(range(16)))

    def body(b):
        b.emit("pv.qnt.n", "a3", "a4", "a5")

    b = KernelBuilder(isa="xpulpnn")
    b.li("t0", 500)
    b.li("a5", 0x3000)
    b.li("a4", 0)
    with b.hardware_loop(0, "t0"):
        body(b)
    b.ebreak()
    program = b.build()
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["qnt_n"] >= 500


def test_benchmark_alu_throughput_tracer_disabled(benchmark):
    """The disabled-tracer fast path: one ``is not None`` check per retire.

    Compare against ``test_benchmark_alu_throughput`` — the two should be
    within noise of each other (the acceptance bar is <2% overhead).
    """
    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")
    assert cpu.tracer is None
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.instructions > 2000


def test_benchmark_alu_throughput_span_tracer(benchmark):
    """Host-side cost of span tracing (the `repro trace` default)."""
    from repro.trace import EventTracer

    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")

    def run():
        cpu.tracer = EventTracer(program=program)
        try:
            return cpu.run_program(program)
        finally:
            cpu.tracer = None

    perf = benchmark(run)
    assert perf.instructions > 2000


def test_tracer_disabled_overhead_within_bound():
    """Wall-clock guard: an attached-then-detached tracer leaves no residue
    and the disabled path stays within 2% of a never-traced core.

    Timing comparisons on shared CI boxes are noisy, so this asserts the
    *structural* property (identical simulated timing, no tracer state left
    behind) and a generous wall-clock ratio over several repetitions.
    """
    import time

    from repro.trace import EventTracer

    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 5000)

    def measure(cpu):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            perf = cpu.run_program(program)
            best = min(best, time.perf_counter() - start)
        return best, perf

    bare_cpu = Cpu(isa="xpulpnn")
    traced_cpu = Cpu(isa="xpulpnn")
    traced_cpu.tracer = EventTracer(program=program)
    traced_cpu.run_program(program)
    traced_cpu.tracer = None
    assert traced_cpu._mem_tracer is None

    bare_time, bare_perf = measure(bare_cpu)
    detached_time, detached_perf = measure(traced_cpu)
    assert detached_perf.cycles == bare_perf.cycles
    # Generous bound: catches an accidentally hot disabled path (a dict
    # lookup or attribute chase per retire) without flaking on CI noise.
    assert detached_time < bare_time * 1.5


# ---------------------------------------------------------------------------
# Block-translation engine (docs/ENGINE.md)
#
# The ``*_block_engine`` variants mirror the interpreter benchmarks above
# with ``engine="block"`` and additionally assert cycle parity — the
# engine's speedup is only admissible because the simulated numbers are
# identical.  ``test_block_engine_conv4bit_speedup_floor`` is the
# acceptance bar: >= 10x simulated instructions/sec on the 4-bit conv,
# recorded as ``bench/*`` series into ``results/iss_throughput.json``
# (machine-dependent wall-clock numbers live outside the committed
# cycle-exact trajectory, like the ``serve/*`` series).
# ---------------------------------------------------------------------------


def _parity_run(program, benchmark):
    reference = Cpu(isa="xpulpnn").run_program(program)
    cpu = Cpu(isa="xpulpnn", engine="block")
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.snapshot() == reference.snapshot()
    return perf


def test_benchmark_alu_throughput_block_engine(benchmark):
    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    _parity_run(program, benchmark)


def test_benchmark_simd_throughput_block_engine(benchmark):
    def body(b):
        b.emit("pv.sdotusp.n", "a3", "a4", "a5")

    program = _loop_program(body, 2000)
    perf = _parity_run(program, benchmark)
    assert perf.by_class["mul"] >= 2000


def test_benchmark_memory_throughput_block_engine(benchmark):
    def body(b):
        b.emit("p.lw", "a3", 4, "a1", inc=True)
        b.emit("p.sw", "a3", 4, "a2", inc=True)
        b.emit("addi", "a1", "a1", -4)
        b.emit("addi", "a2", "a2", -4)

    program = _loop_program(body, 1000)
    perf = _parity_run(program, benchmark)
    assert perf.by_class["load"] >= 1000


def _conv4bit_setup():
    """The speedup-floor workload: the 4-bit conv at a heavier geometry
    (64 input/output channels) so fused dispatches dominate wall-clock."""
    from repro.kernels import ConvConfig, ConvKernel
    from repro.qnn import (
        ConvGeometry,
        conv2d_golden,
        random_activations,
        random_weights,
        thresholds_from_accumulators,
    )

    g = ConvGeometry(in_h=8, in_w=8, in_ch=64, out_ch=64,
                     kh=3, kw=3, stride=1, pad=1)
    rng = np.random.default_rng(0x51F5)
    w = random_weights((g.out_ch, g.kh, g.kw, g.in_ch), 4, rng)
    x = random_activations((g.in_h, g.in_w, g.in_ch), 4, rng)
    acc = conv2d_golden(x, w, stride=g.stride, pad=g.pad)
    table = thresholds_from_accumulators(acc, 4)

    def run(mode):
        import time

        from repro.soc import L2_SIZE
        from repro.soc.memory import Memory

        kernel = ConvKernel(ConvConfig(
            geometry=g, bits=4, isa="xpulpnn", quant="hw"))
        size = max(kernel.layout.end + 4096, L2_SIZE)
        cpu = Cpu(isa="xpulpnn", mem=Memory(size), engine=mode)
        start = time.perf_counter()
        result = kernel.run(w, x, thresholds=table, cpu=cpu)
        wall = time.perf_counter() - start
        return result, wall, cpu

    return run


def test_block_engine_conv4bit_speedup_floor(results_dir):
    import json

    from repro.engine.blocks import GLOBAL_CACHE
    from repro.eval.trajectory import write_trajectory

    GLOBAL_CACHE.clear()
    run = _conv4bit_setup()
    interp_result, interp_wall, _ = run("interp")
    run("block")                       # cold: pays one-time translation
    block_result, block_wall, cpu = run("block")

    assert block_result.perf.snapshot() == interp_result.perf.snapshot()
    assert (block_result.output == interp_result.output).all()

    instructions = interp_result.instructions
    interp_ips = instructions / interp_wall
    block_ips = instructions / block_wall
    speedup = block_ips / interp_ips
    stats = cpu.engine_stats

    write_trajectory(
        {"bench": {"conv_4bit": {
            "interp_sim_ips": round(interp_ips),
            "block_sim_ips": round(block_ips),
            "engine_speedup": round(speedup, 2),
        }}},
        str(results_dir / "iss_throughput.json"))
    (results_dir / "engine_stats.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n")
    record(results_dir, "iss_engine_speedup",
           f"conv_4bit ({instructions:,} instructions): "
           f"interp {interp_ips / 1e6:.2f} M ips, "
           f"block {block_ips / 1e6:.2f} M ips -> {speedup:.1f}x "
           f"({stats['fused_instructions'] / instructions:.0%} fused, "
           f"bar: >= 10x)")
    assert speedup >= 10.0, (
        f"block engine sustained only {speedup:.1f}x on conv_4bit")
