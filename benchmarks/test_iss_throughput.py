"""Simulator throughput benchmarks (host-side performance, not a paper
figure): how many simulated instructions per second the ISS sustains on
each kernel class.  Useful when sizing REPRO_FULL runs."""

import numpy as np
import pytest

from repro.asm import KernelBuilder
from repro.core import Cpu


def _loop_program(body_ops, iterations):
    b = KernelBuilder(isa="xpulpnn")
    b.li("t0", iterations)
    b.li("a1", 0x1000)
    b.li("a2", 0x2000)
    with b.hardware_loop(0, "t0"):
        body_ops(b)
    b.ebreak()
    return b.build()


def test_benchmark_alu_throughput(benchmark):
    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")

    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.instructions > 2000


def test_benchmark_simd_throughput(benchmark):
    def body(b):
        b.emit("pv.sdotusp.n", "a3", "a4", "a5")

    program = _loop_program(body, 2000)
    cpu = Cpu(isa="xpulpnn")
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["mul"] >= 2000


def test_benchmark_memory_throughput(benchmark):
    def body(b):
        b.emit("p.lw", "a3", 4, "a1", inc=True)
        b.emit("p.sw", "a3", 4, "a2", inc=True)
        b.emit("addi", "a1", "a1", -4)
        b.emit("addi", "a2", "a2", -4)

    program = _loop_program(body, 1000)
    cpu = Cpu(isa="xpulpnn")
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["load"] >= 1000


def test_benchmark_qnt_throughput(benchmark):
    cpu = Cpu(isa="xpulpnn")
    cpu.mem.write_i16(0x3000, list(range(16)))

    def body(b):
        b.emit("pv.qnt.n", "a3", "a4", "a5")

    b = KernelBuilder(isa="xpulpnn")
    b.li("t0", 500)
    b.li("a5", 0x3000)
    b.li("a4", 0)
    with b.hardware_loop(0, "t0"):
        body(b)
    b.ebreak()
    program = b.build()
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.by_class["qnt_n"] >= 500


def test_benchmark_alu_throughput_tracer_disabled(benchmark):
    """The disabled-tracer fast path: one ``is not None`` check per retire.

    Compare against ``test_benchmark_alu_throughput`` — the two should be
    within noise of each other (the acceptance bar is <2% overhead).
    """
    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")
    assert cpu.tracer is None
    perf = benchmark(lambda: cpu.run_program(program))
    assert perf.instructions > 2000


def test_benchmark_alu_throughput_span_tracer(benchmark):
    """Host-side cost of span tracing (the `repro trace` default)."""
    from repro.trace import EventTracer

    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 2000)
    cpu = Cpu(isa="xpulpnn")

    def run():
        cpu.tracer = EventTracer(program=program)
        try:
            return cpu.run_program(program)
        finally:
            cpu.tracer = None

    perf = benchmark(run)
    assert perf.instructions > 2000


def test_tracer_disabled_overhead_within_bound():
    """Wall-clock guard: an attached-then-detached tracer leaves no residue
    and the disabled path stays within 2% of a never-traced core.

    Timing comparisons on shared CI boxes are noisy, so this asserts the
    *structural* property (identical simulated timing, no tracer state left
    behind) and a generous wall-clock ratio over several repetitions.
    """
    import time

    from repro.trace import EventTracer

    program = _loop_program(lambda b: b.emit("add", "a3", "a4", "a5"), 5000)

    def measure(cpu):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            perf = cpu.run_program(program)
            best = min(best, time.perf_counter() - start)
        return best, perf

    bare_cpu = Cpu(isa="xpulpnn")
    traced_cpu = Cpu(isa="xpulpnn")
    traced_cpu.tracer = EventTracer(program=program)
    traced_cpu.run_program(program)
    traced_cpu.tracer = None
    assert traced_cpu._mem_tracer is None

    bare_time, bare_perf = measure(bare_cpu)
    detached_time, detached_perf = measure(traced_cpu)
    assert detached_perf.cycles == bare_perf.cycles
    # Generous bound: catches an accidentally hot disabled path (a dict
    # lookup or attribute chase per retire) without flaking on CI noise.
    assert detached_time < bare_time * 1.5
