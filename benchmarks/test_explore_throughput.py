"""Explore throughput (host-side performance, not a paper figure).

Two numbers size the autotuner:

* **staged vs full points/sec** — the end-to-end rate of the staged
  search (static prune + simulate survivors) against simulating every
  feasible candidate.  The acceptance bar is structural, not wall-clock:
  on the CI space static pruning must retire **>= 30%** of the feasible
  candidates before any simulation is spent;
* **frontier stability** — the staged frontier must equal the full
  frontier (pruning soundness) and match the committed baseline report
  in ``benchmarks/results/explore_frontier.json``.

Wall-clock series go to ``benchmarks/results/explore_throughput.json``
(machine-dependent, never committed into the cycle-exact
``trajectory.json`` baseline).
"""

import json
from pathlib import Path

from repro.explore import (
    DesignSpaceExplorer,
    named_space,
    validate_explore_report,
)
from repro.serve import SimulationService

from conftest import record

BASELINE = Path(__file__).parent / "results" / "explore_frontier.json"


def _write_series(results_dir, space, name, value):
    from repro.eval.trajectory import write_trajectory

    write_trajectory(
        {"explore": {space: {"stats": {name: round(value, 3)}}}},
        str(results_dir / "explore_throughput.json"))


def test_benchmark_staged_vs_full(results_dir):
    space = named_space("ci")
    full = DesignSpaceExplorer(
        space, service=SimulationService(), prune=False).run()
    staged = DesignSpaceExplorer(
        space, service=SimulationService(), prune=True).run()

    # Pruning soundness: the staged frontier is the full frontier.
    assert sorted(staged.frontier_labels()) == sorted(full.frontier_labels())
    # The acceptance bar: >= 30% of the feasible candidates never reach
    # the simulator on the CI space.
    ratio = staged.stage.prune_ratio
    assert ratio >= 0.30, f"prune ratio {ratio:.0%} below the 30% bar"

    full_pps = full.stats()["points_per_sec"]
    staged_pps = staged.stats()["points_per_sec"]
    simulations_saved = full.stats()["simulated"] - staged.stats()["simulated"]
    assert simulations_saved >= 1

    _write_series(results_dir, space.name, "staged_points_per_sec",
                  staged_pps)
    _write_series(results_dir, space.name, "full_points_per_sec", full_pps)
    record(results_dir, "explore_staged_vs_full", "\n".join([
        f"explore '{space.name}' space: {len(staged.stage.scores)} "
        f"candidates",
        f"  full:   {full.stats()['simulated']} simulated, "
        f"{full_pps:.2f} points/s",
        f"  staged: {staged.stats()['simulated']} simulated "
        f"({ratio:.0%} pruned statically), {staged_pps:.2f} points/s",
        f"  frontier ({len(staged.frontier_labels())} points, identical "
        f"staged vs full): {', '.join(sorted(staged.frontier_labels()))}",
    ]))


def test_frontier_matches_committed_baseline():
    doc = json.loads(BASELINE.read_text())
    validate_explore_report(doc)

    staged = DesignSpaceExplorer(
        named_space("ci"), service=SimulationService(), prune=True).run()
    assert sorted(doc["frontier"]) == sorted(staged.frontier_labels())
    fresh = {p["label"]: p["cycles"] for p in staged.points}
    for point in doc["points"]:
        assert fresh[point["label"]] == point["cycles"], point["label"]
