"""Fig. 6 — sub-byte kernel cycles and the pv.qnt quantization share.

Regenerates: per-kernel cycle bars (sw-quant vs pv.qnt variants), the
stacked quantization share, the 1.21x/1.16x whole-kernel speedups, and
the near-linear bitwidth scaling.
"""

import pytest

from repro.eval import fig6

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return fig6.run(geometry)


def test_fig6_report(result, results_dir):
    record(results_dir, "fig6_quantization", fig6.render(result))


def test_quant_share_shape(result):
    """pv.qnt pushes the quantization share down to ~4-12 % (paper: 4 %
    at 4-bit, 11 % at 2-bit) and 2-bit > 4-bit."""
    assert result.quant_share[(4, "hw")] < 0.12
    assert result.quant_share[(2, "hw")] < 0.18
    assert result.quant_share[(2, "hw")] > result.quant_share[(4, "hw")]


def test_whole_kernel_speedup(result):
    """Paper: 1.21x (4-bit) and 1.16x (2-bit)."""
    assert 1.05 <= result.speedup_hw_quant[4] <= 1.35
    assert 1.05 <= result.speedup_hw_quant[2] <= 1.35


def test_near_linear_scaling(result):
    assert result.scaling_vs_8bit[(4, "hw")] == pytest.approx(2.0, rel=0.25)
    assert result.scaling_vs_8bit[(2, "hw")] == pytest.approx(4.0, rel=0.35)


def test_benchmark_extended_4bit_kernel(benchmark, geometry):
    """Times one full 4-bit pv.qnt convolution layer on the ISS."""
    import numpy as np

    from repro.kernels import ConvConfig, ConvKernel
    from repro.qnn import (conv2d_golden, random_activations, random_weights,
                           thresholds_from_accumulators)

    rng = np.random.default_rng(1)
    g = geometry
    w = random_weights((g.out_ch, g.kh, g.kw, g.in_ch), 4, rng)
    x = random_activations((g.in_h, g.in_w, g.in_ch), 4, rng)
    thr = thresholds_from_accumulators(conv2d_golden(x, w, g.stride, g.pad), 4)
    kernel = ConvKernel(ConvConfig(geometry=g, bits=4, quant="hw"))

    run = benchmark.pedantic(
        lambda: kernel.run(w, x, thresholds=thr), rounds=1, iterations=1
    )
    assert run.cycles > 0
