"""Roofline utilization report (library extension, not a paper figure):
how close each generated kernel runs to its structural inner-loop peak."""

import pytest

from repro.eval import roofline

from conftest import record


@pytest.fixture(scope="module")
def points(suite, geometry):
    return roofline.run(geometry)


def test_roofline_report(points, results_dir):
    record(results_dir, "roofline_utilization", roofline.render(points))


def test_extended_kernels_utilize_inner_loop(points):
    assert points["8-bit (both cores)"].utilization > 0.7
    assert points["4-bit extended"].utilization > 0.6
    assert points["2-bit extended"].utilization > 0.5


def test_unit_peak_never_exceeded(points):
    for point in points.values():
        assert point.achieved < point.unit_peak


def test_benchmark_roofline(benchmark, geometry, suite):
    result = benchmark(lambda: roofline.run(geometry))
    assert len(result) == 5
