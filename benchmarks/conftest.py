"""Benchmark harness configuration.

Benchmarks default to the 1/8-scale layer (see
:mod:`repro.eval.workloads`); set ``REPRO_FULL=1`` to run the paper's
exact 16x16x32 / 64x3x3x32 layer (minutes of simulation).

Each table/figure benchmark renders the reproduced rows/series to stdout
and into ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro.eval import benchmark_geometry, conv_suite

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def geometry():
    return benchmark_geometry()


@pytest.fixture(scope="session")
def suite(geometry):
    """All verified kernel executions, shared across benchmark modules."""
    return conv_suite(geometry)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
