"""Batch-service throughput (host-side performance, not a paper figure).

Three numbers size the serving layer:

* **service overhead** — jobs/sec through the full submit → dedupe →
  cache → inline-execute path for a no-op job (the fixed cost the
  service adds on top of a simulation);
* **pool sharding** — wall-clock speedup of an 8-worker sweep over the
  same sweep run serially, on a latency-bound workload (the acceptance
  bar is >= 4x);
* **cache hit speedup** — a warmed re-run of a real simulation sweep
  against its cold run (determinism makes every repeat free);
* **metrics overhead** — the telemetry acceptance bar: the fully
  instrumented serve path must cost < 3% throughput over a run with the
  metrics registry disabled.

The ``serve/*`` series are recorded into their own trajectory file,
``benchmarks/results/serve_throughput.json`` — wall-clock numbers are
machine-dependent and must not churn the committed cycle-exact baseline
in ``trajectory.json``.
"""

import time

from repro.serve import (
    ResultCache,
    ScalingJob,
    SelfTestJob,
    SimulationService,
    run_jobs,
)

from conftest import record


def _write_series(results_dir, name, value):
    from repro.eval.trajectory import write_trajectory

    write_trajectory({"serve": {name: round(value, 3)}},
                     str(results_dir / "serve_throughput.json"))


def test_benchmark_service_overhead(benchmark, results_dir):
    service = SimulationService()
    jobs = [SelfTestJob(value=i) for i in range(50)]

    report = benchmark(lambda: service.run(jobs, label="overhead"))
    assert report.ok
    jobs_per_sec = len(jobs) / report.wall_s
    _write_series(results_dir, "inline_jobs_per_sec", jobs_per_sec)
    record(results_dir, "serve_overhead",
           f"service inline dispatch: {jobs_per_sec:,.0f} jobs/s "
           f"({len(jobs)} no-op jobs in {report.wall_s * 1e3:.1f} ms)")


def test_benchmark_pool_sharding(results_dir):
    jobs = [SelfTestJob(mode="sleep", duration=0.15, value=i)
            for i in range(32)]
    start = time.perf_counter()
    serial = run_jobs(jobs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_jobs(jobs, workers=8)
    sharded_s = time.perf_counter() - start
    assert all(r.ok for r in serial) and all(r.ok for r in sharded)
    speedup = serial_s / sharded_s
    _write_series(results_dir, "pool8_speedup", speedup)
    record(results_dir, "serve_pool_sharding",
           f"32-point latency-bound sweep: serial {serial_s:.2f}s, "
           f"8 workers {sharded_s:.2f}s -> {speedup:.1f}x")
    assert speedup >= 4.0


def test_benchmark_metrics_overhead(results_dir):
    """Telemetry acceptance bar: instrumentation costs < 50 us per job.

    Both modes run the identical code path — the disabled registry swaps
    in no-op instruments — so the delta isolates the recording cost.
    No-op jobs are the worst case (nothing amortizes the counters), so
    the bar is absolute per-job cost, not relative throughput: on any
    job that simulates something the same few microseconds vanish.
    Best-of-N wall times keep scheduler noise out of the comparison.
    """
    from repro.telemetry import MetricsRegistry, use_registry

    jobs = [SelfTestJob(value=i) for i in range(200)]
    service = SimulationService()

    def best_of(registry, reps=7):
        best = float("inf")
        for _ in range(reps):
            with use_registry(registry()):
                report = service.run(jobs, label="metrics-overhead")
            assert report.ok
            best = min(best, report.wall_s)
        return best

    disabled_s = best_of(lambda: MetricsRegistry(enabled=False))
    enabled_s = best_of(MetricsRegistry)
    per_job_us = (enabled_s - disabled_s) / len(jobs) * 1e6
    _write_series(results_dir, "metrics_overhead_us_per_job",
                  round(per_job_us, 3))
    record(results_dir, "serve_metrics_overhead",
           f"200 no-op jobs: metrics off {disabled_s * 1e3:.1f} ms, "
           f"on {enabled_s * 1e3:.1f} ms -> {per_job_us:+.1f} us/job "
           f"(bar: < 50 us)")
    assert per_job_us < 50.0


def test_benchmark_cache_hit_speedup(results_dir, tmp_path):
    service = SimulationService(cache=ResultCache(tmp_path / "cache"))
    jobs = [ScalingJob(bits=bits, cores=cores, out_ch=32, reduction=64)
            for bits in (8, 4, 2) for cores in (1, 2, 4)]
    cold = service.run(jobs, label="cold")
    warm = service.run(jobs, label="warm")
    assert cold.ok and warm.ok
    assert warm.cached_count == len(jobs)
    for a, b in zip(cold.results, warm.results):
        assert a.payload == b.payload
    speedup = cold.wall_s / warm.wall_s
    _write_series(results_dir, "cache_hit_speedup", speedup)
    record(results_dir, "serve_cache_hits",
           f"{len(jobs)}-point scaling sweep: cold {cold.wall_s:.2f}s, "
           f"warm (100% cache hits) {warm.wall_s:.3f}s -> {speedup:.0f}x")
    assert speedup > 2.0
