"""Fig. 9 — energy efficiency of the four platforms.

Regenerates the GMAC/s/W grid and the headline ratios (paper: 103x vs
STM32L4 and 354x vs STM32H7 at 2-bit; 279 GMAC/s/W peak).
"""

import pytest

from repro.eval import fig9

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return fig9.run(geometry)


def test_fig9_report(result, results_dir):
    record(results_dir, "fig9_efficiency_comparison", fig9.render(result))


def test_two_orders_of_magnitude_vs_stm32(result):
    """Paper: 103x (L4) and 354x (H7) on the 2-bit kernel."""
    assert result.gain_vs_stm32_2bit["STM32L4"] == pytest.approx(103, rel=0.3)
    assert result.gain_vs_stm32_2bit["STM32H7"] == pytest.approx(354, rel=0.3)


def test_peak_efficiency_near_paper(result):
    """Paper: 279 GMAC/s/W peak (at the 2-bit kernel)."""
    assert result.peak_gmacs_w == pytest.approx(279, rel=0.25)
    best = max((bits for bits in (8, 4, 2)),
               key=lambda b: result.points[(b, "xpulpnn")].gmacs_per_s_per_w)
    assert best == 2


def test_efficiency_hierarchy(result):
    for bits in (4, 2):
        values = [result.points[(bits, p)].gmacs_per_s_per_w
                  for p in ("xpulpnn", "ri5cy", "STM32L4", "STM32H7")]
        assert values == sorted(values, reverse=True)


def test_table1_band(result):
    """This-Work efficiency spans the 80-550 Gop/s/W band of Table I."""
    effs = [2 * result.points[(bits, "xpulpnn")].gmacs_per_s_per_w
            for bits in (8, 4, 2)]
    assert max(effs) > 300     # Gop/s/W
    assert min(effs) > 80


def test_benchmark_efficiency_computation(benchmark, suite):
    from repro.physical import efficiency, model_for

    point = suite[(2, "xpulpnn", "hw")]
    power = model_for("xpulpnn").evaluate(point.perf, 2, "matmul2").soc_total_w

    eff = benchmark(lambda: efficiency("x", point.macs, point.cycles, power))
    assert eff.gmacs_per_s_per_w > 100
