"""Fig. 7 — energy-efficiency gain of the extended core over RI5CY.

Regenerates: per-bitwidth GMAC/s/W of both cores and the gain series
(paper: 5.5x at 4-bit up to 9x at 2-bit, ~1x at 8-bit).
"""

import pytest

from repro.eval import fig7

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return fig7.run(geometry)


def test_fig7_report(result, results_dir):
    record(results_dir, "fig7_energy_vs_baseline", fig7.render(result))


def test_no_8bit_regression(result):
    """Paper: 'without reducing the efficiency for 8-bit QNN kernels'."""
    assert result.gain[8] == pytest.approx(1.0, abs=0.05)


def test_subbyte_gains(result):
    assert 4.0 <= result.gain[4] <= 7.0     # paper ~5.5x
    assert 7.0 <= result.gain[2] <= 12.0    # paper ~9x


def test_gain_grows_as_precision_drops(result):
    assert result.gain[2] > result.gain[4] > result.gain[8]


def test_benchmark_power_model(benchmark, suite):
    """Times the activity-based power evaluation (the cheap half of the
    figure; cycles come from the session-shared simulations)."""
    from repro.physical import model_for

    point = suite[(4, "xpulpnn", "hw")]
    model = model_for("xpulpnn")
    breakdown = benchmark(
        lambda: model.evaluate(point.perf, sub_byte_bits=4,
                               workload_class="matmul4")
    )
    assert 5.0 < breakdown.soc_total_mw < 7.0
