"""Fig. 8 — execution cycles: extended core vs RI5CY vs STM32L4/H7.

Regenerates the 4-platform x 3-bitwidth cycle grid and the headline
speedups (paper: 5.3x / 8.9x vs baseline RI5CY; one order of magnitude
vs the STM32s on sub-byte kernels).
"""

import pytest

from repro.eval import fig8

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return fig8.run(geometry)


def test_fig8_report(result, results_dir):
    record(results_dir, "fig8_cycles_comparison", fig8.render(result))


def test_speedup_vs_baseline_in_paper_zone(result):
    """Paper headline: 5.3x (4-bit) and 8.9x (2-bit)."""
    assert result.speedup_vs_ri5cy[4] == pytest.approx(5.3, rel=0.25)
    assert result.speedup_vs_ri5cy[2] == pytest.approx(8.9, rel=0.25)


def test_order_of_magnitude_vs_stm32(result):
    for bits in (4, 2):
        assert result.speedup_vs_stm32[(bits, "STM32L4")] >= 6
        assert result.speedup_vs_stm32[(bits, "STM32H7")] >= 5


def test_subbyte_gets_slower_on_stm32(result):
    """On the ARM cores sub-byte kernels cost MORE cycles than 8-bit —
    quantization without ISA support saves no time (paper §I)."""
    for platform in ("STM32L4", "STM32H7"):
        assert result.cycles[(4, platform)] > result.cycles[(8, platform)]
        assert result.cycles[(2, platform)] > result.cycles[(8, platform)]


def test_subbyte_gets_faster_on_extended_core(result):
    assert result.cycles[(2, "xpulpnn")] < result.cycles[(4, "xpulpnn")] \
        < result.cycles[(8, "xpulpnn")]


def test_benchmark_cmsis_model(benchmark, geometry):
    """Times the CMSIS-NN instruction-mix cycle model."""
    from repro.baselines import CmsisConvModel, STM32L476

    cycles = benchmark(lambda: CmsisConvModel(geometry, 2).cycles(STM32L476))
    assert cycles > geometry.macs  # sub-byte on M4: > 1 cycle/MAC
