"""Ablation benches for the design choices DESIGN.md calls out.

1. **Unpack style** (baseline sub-byte MatMul): reference extract/insert
   sequences vs hand-optimized shuffle2 interleaving — even the optimized
   variant stays far from native sub-byte SIMD, supporting the paper's
   case for ISA support rather than smarter software.
2. **Quantization path**: software tree vs ``pv.qnt`` at kernel level,
   plus the rejected combinatorial quantization-unit design point
   (latency vs critical-path tradeoff of §III-B2).
3. **Dot-product unit organization**: replicated per-width regions
   (shipped) vs a hypothetical shared-multiplier unit (rejected for
   timing) — area/cycle bookkeeping.
"""

import numpy as np
import pytest

from repro.core.units import QuantUnit
from repro.kernels import MatmulConfig, MatmulKernel
from repro.qnn import random_threshold_table

from conftest import record

K, CO = 96, 8


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)

    def make(bits):
        lo = -(1 << (bits - 1))
        return (
            rng.integers(lo, 1 << (bits - 1), (CO, K)).astype(np.int32),
            rng.integers(0, 1 << bits, K).astype(np.int32),
            rng.integers(0, 1 << bits, K).astype(np.int32),
        )

    return make


class TestUnpackStyleAblation:
    @pytest.fixture(scope="class")
    def cycles(self, data):
        out = {}
        for bits in (4, 2):
            w, x0, x1 = data(bits)
            for label, isa, style in (
                ("native", "xpulpnn", "extract"),
                ("extract", "ri5cy", "extract"),
                ("shuffle", "ri5cy", "shuffle"),
            ):
                kern = MatmulKernel(MatmulConfig(
                    reduction=K, out_ch=CO, bits=bits, isa=isa,
                    quant="none", unpack_style=style))
                run = kern.run(w, x0, x1)
                expected = np.stack([
                    x0.astype(np.int64) @ w.T, x1.astype(np.int64) @ w.T])
                assert np.array_equal(run.output, expected)
                out[(bits, label)] = run.cycles
        return out

    def test_report(self, cycles, results_dir):
        lines = ["Ablation: baseline unpack style (MatMul microkernel cycles)"]
        for bits in (4, 2):
            native = cycles[(bits, "native")]
            for label in ("native", "extract", "shuffle"):
                c = cycles[(bits, label)]
                lines.append(
                    f"  {bits}-bit {label:8s}: {c:6d} cycles "
                    f"({c / native:.2f}x native)")
        record(results_dir, "ablation_unpack_style", "\n".join(lines))

    def test_shuffle_beats_extract(self, cycles):
        for bits in (4, 2):
            assert cycles[(bits, "shuffle")] < cycles[(bits, "extract")]

    def test_even_optimized_unpack_far_from_native(self, cycles):
        """The core argument for XpulpNN: software widening cannot close
        the gap to native sub-byte SIMD."""
        assert cycles[(4, "shuffle")] > 1.8 * cycles[(4, "native")]
        assert cycles[(2, "shuffle")] > 2.5 * cycles[(2, "native")]

    def test_benchmark_native_matmul(self, benchmark, data):
        w, x0, x1 = data(4)
        kern = MatmulKernel(MatmulConfig(reduction=K, out_ch=CO, bits=4,
                                         quant="none"))
        run = benchmark.pedantic(lambda: kern.run(w, x0, x1),
                                 rounds=1, iterations=1)
        assert run.cycles > 0


class TestQuantPathAblation:
    @pytest.fixture(scope="class")
    def cycles(self, data):
        out = {}
        rng = np.random.default_rng(4)
        for bits in (4, 2):
            w, x0, x1 = data(bits)
            table = random_threshold_table(CO, bits, spread=500, rng=rng)
            for quant in ("hw", "sw"):
                kern = MatmulKernel(MatmulConfig(
                    reduction=K, out_ch=CO, bits=bits, quant=quant))
                out[(bits, quant)] = kern.run(w, x0, x1,
                                              thresholds=table).cycles
        return out

    def test_report(self, cycles, results_dir):
        lines = ["Ablation: quantization path (MatMul microkernel cycles)"]
        for bits in (4, 2):
            hw, sw = cycles[(bits, "hw")], cycles[(bits, "sw")]
            lines.append(f"  {bits}-bit: pv.qnt {hw}, sw tree {sw} "
                         f"-> {sw / hw:.2f}x")
        unit = QuantUnit(pipelined=True)
        comb = QuantUnit(pipelined=False)
        lines.append(
            "  quantization-unit design: pipelined "
            f"{unit.latency(4)}c/2 acts vs combinatorial "
            f"{comb.latency(4)}c/1 act at "
            f"{comb.COMBINATORIAL_CRITICAL_PATH_FACTOR:.1f}x critical path")
        record(results_dir, "ablation_quant_path", "\n".join(lines))

    def test_hw_quant_wins(self, cycles):
        for bits in (4, 2):
            assert cycles[(bits, "hw")] < cycles[(bits, "sw")]

    def test_pipelined_unit_higher_throughput_per_cycle(self):
        """2 activations / 9 cycles beats 1 / 5 cycles — and keeps the
        critical path, which is why the paper ships the pipelined unit."""
        pipelined = QuantUnit(pipelined=True)
        combinatorial = QuantUnit(pipelined=False)
        assert (2 / pipelined.latency(4)) > (1 / combinatorial.latency(4))
        assert combinatorial.COMBINATORIAL_CRITICAL_PATH_FACTOR > 1.5


class TestDotpUnitAblation:
    def test_replicated_regions_cost_area_not_cycles(self, results_dir):
        """The shipped design replicates multiplier regions (+19.9 % dotp
        area) to keep every width single-cycle; a shared-tree design
        would save area but lengthen the critical path (paper §III-B1)."""
        from repro.physical import AreaModel

        model = AreaModel()
        base = model.baseline().blocks["dotp_unit"]
        ext = model.extended(True).blocks["dotp_unit"]
        lines = [
            "Ablation: dot-product unit organization",
            f"  replicated regions: {ext:.1f} um^2 "
            f"(+{100 * (ext - base) / base:.1f}% area), 1-cycle at all widths",
            "  shared adder tree (rejected): ~0% area growth but the",
            "  4/2-bit paths would join the system critical path",
        ]
        record(results_dir, "ablation_dotp_unit", "\n".join(lines))
        assert ext > base


class TestBlockingAblation:
    """Register-blocking design space: 2x2 (the paper's description) vs
    4x2 (PULP-NN's 8-bit choice) MatMul inner loops."""

    @pytest.fixture(scope="class")
    def cycles(self, data):
        out = {}
        for bits in (8, 4, 2):
            w, x0, x1 = data(bits)
            for blocking in ("2x2", "4x2"):
                kern = MatmulKernel(MatmulConfig(
                    reduction=K, out_ch=CO, bits=bits, quant="none",
                    blocking=blocking))
                out[(bits, blocking)] = kern.run(w, x0, x1).cycles
        return out

    def test_report(self, cycles, results_dir):
        lines = ["Ablation: MatMul register blocking (cycles, raw accumulators)"]
        for bits in (8, 4, 2):
            c22, c42 = cycles[(bits, "2x2")], cycles[(bits, "4x2")]
            lines.append(f"  {bits}-bit: 2x2 {c22:6d}  4x2 {c42:6d}  "
                         f"-> {c22 / c42:.2f}x from deeper blocking")
        record(results_dir, "ablation_blocking", "\n".join(lines))

    def test_4x2_wins_at_every_width(self, cycles):
        for bits in (8, 4, 2):
            assert cycles[(bits, "4x2")] < cycles[(bits, "2x2")]
