"""Table III — area and power of baseline vs extended cores.

Regenerates both halves of the table from the models and checks the
paper's headline claims: 11.1 % area overhead, 5.9 % core power overhead
with power management (22.5 % without), 13.5 % PM savings, 1.8 %-class
SoC-level overhead on the 8-bit kernel.
"""

import pytest

from repro.eval import table3
from repro.physical import AreaModel

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return table3.run(geometry)


def test_table3_report(result, results_dir):
    record(results_dir, "table3_area_power", table3.render(result))


class TestArea:
    def test_total_overheads(self, result):
        assert result.area_rows["total"]["Ext_PM_overhead_%"] == pytest.approx(11.1, abs=0.1)
        assert result.area_rows["total"]["Ext_noPM_overhead_%"] == pytest.approx(8.59, abs=0.1)

    def test_dotp_unit_overhead(self, result):
        """Paper: 19.9 % with the two added multiplier regions."""
        assert result.area_rows["dotp_unit"]["Ext_PM_overhead_%"] == pytest.approx(19.9, abs=0.1)

    def test_core_area_headline(self):
        assert AreaModel().core_area_mm2() == pytest.approx(0.022, abs=0.001)


class TestPower:
    def test_core_power_overhead(self, result):
        """Paper: 5.9 % with PM, 22.5 % without."""
        assert result.core_overhead_pm_pct == pytest.approx(5.9, abs=2.0)
        assert result.core_overhead_nopm_pct == pytest.approx(22.5, abs=5.0)

    def test_pm_savings(self, result):
        assert result.pm_savings_pct == pytest.approx(13.5, abs=3.0)

    def test_soc_level_overhead_small(self, result):
        """Paper: extended SoC costs only ~1.8 % more on the 8-bit kernel."""
        base = result.soc_power[("matmul8", "ri5cy")]
        ext = result.soc_power[("matmul8", "ext-pm")]
        overhead = 100 * (ext - base) / base
        assert overhead == pytest.approx(1.8, abs=1.5)

    def test_4bit_matmul_below_8bit(self, result):
        """Paper's notable measurement: 5.71 mW (4-bit) < 6.04 mW (8-bit)."""
        assert result.soc_power[("matmul4", "ext-pm")] < \
            result.soc_power[("matmul8", "ext-pm")]

    def test_nopm_subbyte_power_explodes(self, result):
        """Without operand isolation sub-byte kernels cost ~8-9 mW."""
        assert result.soc_power[("matmul4", "ext-nopm")] == pytest.approx(8.14, rel=0.05)
        assert result.soc_power[("matmul2", "ext-nopm")] == pytest.approx(8.99, rel=0.05)


def test_benchmark_area_model(benchmark):
    rows = benchmark(lambda: AreaModel().table3_area())
    assert rows["total"]["Ext_PM_overhead_%"] > 10
