"""Table I — QNN embedded platform landscape with the measured This-Work row."""

import pytest

from repro.eval import table1

from conftest import record


@pytest.fixture(scope="module")
def result(suite, geometry):
    return table1.run(geometry)


def test_table1_report(result, results_dir):
    record(results_dir, "table1_platforms", table1.render(result))


def test_this_work_performance_band(result):
    """Paper band: 1-5 Gop/s."""
    lo, hi = result.gops_range
    assert 0.5 <= lo <= 2.0
    assert 2.0 <= hi <= 6.0


def test_this_work_efficiency_band(result):
    """Paper band: 80-550 Gop/s/W."""
    lo, hi = result.eff_range
    assert lo >= 80
    assert 300 <= hi <= 700


def test_power_stays_in_mcu_envelope(result):
    for _, _, mw in result.this_work.values():
        assert mw < 100  # paper's 1-100 mW column


def test_efficiency_improves_with_quantization(result):
    assert result.this_work[2][1] > result.this_work[4][1] > result.this_work[8][1]


def test_benchmark_table_run(benchmark, geometry, suite):
    result = benchmark(lambda: table1.run(geometry))
    assert result.this_work
